"""Paradigm planner: the §5.1.3 analysis as a capacity-planning tool.

Given a model configuration and a cluster shape, prints per-MoE-block:
the gain ratio R, the paradigm Janus would select, the cross-node traffic
under both paradigms, and the per-GPU memory estimate with OOM warnings —
everything a user would want to know before launching a training job.

Run:  python examples/paradigm_planner.py
"""

from repro.analysis import format_table
from repro.config import moe_bert, moe_gpt, moe_transformer_xl, pr_moe_transformer_xl
from repro.core import (
    estimate_data_centric,
    estimate_expert_centric,
    profile_model,
)
from repro.units import GIB


def plan(config, num_machines, workers_per_machine=8):
    world = num_machines * workers_per_machine
    print(f"\n=== {config.name} on {num_machines}x{workers_per_machine} GPUs "
          f"(B={config.batch_size}, S={config.seq_len}, k={config.top_k}, "
          f"H={config.hidden_dim}) ===")

    rows = []
    for profile in profile_model(config, num_machines, workers_per_machine):
        rows.append(
            [
                profile.block_index,
                profile.num_experts,
                profile.experts_per_worker,
                f"{profile.ratio:.2f}",
                profile.paradigm.value,
                f"{profile.expert_centric_bytes / 1e9:.2f}",
                f"{profile.data_centric_bytes / 1e9:.2f}",
            ]
        )
    print(format_table(
        ["Block", "#Experts", "E", "R", "Paradigm", "EC GB/mach", "DC GB/mach"],
        rows,
    ))

    for label, estimate in (
        ("expert-centric", estimate_expert_centric(config, world)),
        ("data-centric", estimate_data_centric(config, world)),
    ):
        verdict = "OOM on 80GB A100!" if estimate.total > 80 * GIB else "fits"
        print(f"memory/{label}: {estimate.total / GIB:6.1f} GiB  ({verdict})")


def sweep_heatmap():
    """Where does data-centric win?  R over a (B, S) grid (Eq. 1)."""
    from repro.analysis import r_grid, render_r_heatmap

    batches = [8, 32, 128, 512]
    seqs = [64, 256, 1024, 4096]
    grid = r_grid(batches, seqs, top_k=2, num_machines=4,
                  hidden_dim=768, experts_per_worker=1)
    print("\n=== paradigm map for H=768, k=2, E=1, 4 machines ===")
    print(render_r_heatmap(grid, batches, seqs))


def main():
    plan(moe_bert(32), num_machines=4)
    plan(moe_gpt(32), num_machines=4)
    plan(moe_transformer_xl(32), num_machines=4)
    # The mixed-R model from §7.5: Janus splits paradigms per block.
    plan(pr_moe_transformer_xl(1), num_machines=2)
    # The §7.4 OOM case: long sequences blow up the All-to-All buffers.
    plan(moe_bert(32).scaled(seq_len=512, top_k=4), num_machines=4)
    sweep_heatmap()


if __name__ == "__main__":
    main()
