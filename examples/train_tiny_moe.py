"""Train a tiny MoE language model end to end under both paradigms.

Uses the full distributed emulation: a 4-worker cluster (2 machines x 2
GPUs) trains a 3-block MoE transformer on synthetic token data, once with
expert-centric All-to-All and once with data-centric expert pulling, with
identical initial weights.  The two loss curves must coincide — data-centric
training is numerically the same training run (§3.2) — while the traffic
logs differ.

Run:  python examples/train_tiny_moe.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.models import MoETransformer
from repro.runtime import DistributedMoETransformer, RankLayout
from repro.tensorlib import Adam
from repro.workloads import target_batches, token_batches

STEPS = 6


def make_config():
    return ModelConfig(
        name="tiny-moe",
        batch_size=4,
        seq_len=8,
        top_k=2,
        hidden_dim=32,
        num_blocks=3,
        experts_per_block={1: 4},
        num_heads=4,
        vocab_size=64,
        causal=True,
    )


def train(paradigm: str, config, layout, reference, data):
    model = DistributedMoETransformer(
        config, layout,
        paradigm_for_block={1: paradigm},
        rng=np.random.default_rng(0),
    )
    model.load_from_reference(reference)
    optimizer = Adam(model.parameters(), lr=3e-3)
    losses = []
    for tokens, targets in data:
        optimizer.zero_grad()
        loss = model.loss(tokens, targets)
        loss.backward()
        model.finish_backward()
        optimizer.step()
        losses.append(loss.item())
    return losses, model.comm_log


def main():
    config = make_config()
    layout = RankLayout(num_machines=2, workers_per_machine=2)
    reference = MoETransformer(config, rng=np.random.default_rng(7))

    rng = np.random.default_rng(123)
    data = [
        (
            token_batches(config, layout.world_size, rng=rng),
            target_batches(config, layout.world_size, rng=rng),
        )
        for _ in range(STEPS)
    ]

    ec_losses, ec_log = train("expert-centric", config, layout, reference, data)
    dc_losses, dc_log = train("data-centric", config, layout, reference, data)

    print(f"{'step':>4}  {'expert-centric':>15}  {'data-centric':>13}  {'diff':>9}")
    for step, (a, b) in enumerate(zip(ec_losses, dc_losses)):
        print(f"{step:>4}  {a:>15.6f}  {b:>13.6f}  {abs(a - b):>9.2e}")

    assert all(abs(a - b) < 1e-8 for a, b in zip(ec_losses, dc_losses))
    assert dc_losses[-1] < dc_losses[0], "loss should decrease"

    print(f"\ncross-machine bytes over {STEPS} steps:")
    print(f"  expert-centric: {ec_log.cross_machine_bytes() / 1e6:8.2f} MB")
    print(f"  data-centric:   {dc_log.cross_machine_bytes() / 1e6:8.2f} MB")
    print("\nidentical training trajectories, different wire bills.")


if __name__ == "__main__":
    main()
