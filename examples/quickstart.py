"""Quickstart: the two MoE communication paradigms are equivalent.

Builds one MoE expert layer sharded over an emulated 2-machine x 2-GPU
cluster, runs the same batch through the expert-centric (All-to-All) and
data-centric (expert-pulling) executors, and shows that

* the outputs match exactly,
* the gradients on every expert match exactly, and
* the data-centric paradigm moves far fewer cross-machine bytes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.runtime import DataCentricMoE, ExpertCentricMoE, RankLayout
from repro.tensorlib import Tensor

HIDDEN = 32
NUM_EXPERTS = 8
TOP_K = 2
TOKENS_PER_WORKER = 512


def loss_of(outputs):
    total = None
    for out in outputs:
        term = (out * out).sum()
        total = term if total is None else total + term
    return total


def main():
    layout = RankLayout(num_machines=2, workers_per_machine=2)
    print(f"cluster: {layout.num_machines} machines x "
          f"{layout.workers_per_machine} GPUs")

    expert_centric = ExpertCentricMoE(
        HIDDEN, NUM_EXPERTS, TOP_K, layout, rng=np.random.default_rng(1)
    )
    data_centric = DataCentricMoE(
        HIDDEN, NUM_EXPERTS, TOP_K, layout, rng=np.random.default_rng(2)
    )
    data_centric.import_state(expert_centric.export_state())

    rng = np.random.default_rng(42)
    batches = [
        rng.standard_normal((TOKENS_PER_WORKER, HIDDEN))
        for _ in range(layout.world_size)
    ]

    ec_out = expert_centric.run([Tensor(b) for b in batches])
    loss_of(ec_out).backward()
    expert_centric.finish_backward()

    dc_out = data_centric.run([Tensor(b) for b in batches])
    loss_of(dc_out).backward()
    data_centric.finish_backward()

    worst_output = max(
        float(np.abs(a.numpy() - b.numpy()).max())
        for a, b in zip(ec_out, dc_out)
    )
    worst_grad = max(
        float(np.abs(pa.grad - pb.grad).max())
        for ea, eb in zip(expert_centric.experts, data_centric.experts)
        for pa, pb in zip(ea.parameters(), eb.parameters())
    )
    print(f"max |output difference|:   {worst_output:.2e}")
    print(f"max |gradient difference|: {worst_grad:.2e}")

    ec_bytes = expert_centric.comm_log.cross_machine_bytes()
    dc_bytes = data_centric.comm_log.cross_machine_bytes()
    print(f"cross-machine traffic, expert-centric: {ec_bytes / 1e6:8.2f} MB")
    print(f"cross-machine traffic, data-centric:   {dc_bytes / 1e6:8.2f} MB")
    print(f"traffic reduction: {ec_bytes / dc_bytes:.1f}x")

    assert worst_output < 1e-9 and worst_grad < 1e-8
    print("\nsame numbers, fewer bytes — the Janus premise.")


if __name__ == "__main__":
    main()
