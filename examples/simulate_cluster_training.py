"""Simulate MoE training on the paper's 32-A100 cluster.

Runs one training iteration of MoE-GPT (Table 1, 32 experts) through the
timed engines — expert-centric baseline, then data-centric Janus with the
optimizations stacked one by one — and prints the Fig. 12-style ablation
plus a Fig. 13-style forward timeline showing prefetch hiding the expert
pulls behind dense compute.

Run:  python examples/simulate_cluster_training.py
"""

from repro.analysis import format_speedup_bars, format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import (
    JanusFeatures,
    build_workload,
    data_centric_engine,
    expert_centric_engine,
)


def main():
    config = moe_gpt(32)
    cluster = Cluster(num_machines=4)
    workload = build_workload(config, cluster)
    print(f"model: {config.name}  cluster: 4 machines x 8 A100  "
          f"tokens/worker: {config.tokens_per_worker}")

    baseline = expert_centric_engine(
        config, cluster, workload=workload
    ).run_iteration()
    print(f"\nexpert-centric baseline: {baseline.seconds * 1e3:.1f} ms/iter "
          f"({baseline.all_to_all_share:.0%} in All-to-All, "
          f"{baseline.cross_node_gb_per_machine:.2f} GB/machine cross-node)")

    variants = [
        ("data-centric", JanusFeatures(topology_aware=False, prefetch=False)),
        ("+ topology-aware", JanusFeatures(topology_aware=True, prefetch=False)),
        ("+ prefetch", JanusFeatures(topology_aware=True, prefetch=True)),
    ]
    labels, speedups = [], []
    final = None
    for label, features in variants:
        result = data_centric_engine(
            config, cluster, workload=workload, features=features
        ).run_iteration()
        labels.append(label)
        speedups.append(baseline.seconds / result.seconds)
        final = result
    print("\n" + format_speedup_bars(
        labels, speedups, title="ablation (speedup over expert-centric):"
    ))
    print(f"\nJanus cross-node traffic: "
          f"{final.cross_node_gb_per_machine:.2f} GB/machine "
          f"({baseline.cross_node_gb_per_machine / final.cross_node_gb_per_machine:.1f}x reduction)")

    completions = final.trace.block_completions(worker=0)
    arrivals = [e["time"] for e in final.trace.expert_arrivals(worker=0)]
    rows = [
        [block, f"{time * 1e3:6.2f}"]
        for block, time in sorted(completions.items())
    ]
    print("\n" + format_table(
        ["Block", "done (ms)"], rows,
        title="forward timeline, worker 0 (block 10 is the MoE block):",
    ))
    hidden = sum(1 for t in arrivals if t <= completions[9])
    print(f"expert pulls finished before the MoE block: "
          f"{hidden}/{len(arrivals)} — prefetch hides the fetch time.")

    from repro.trace import render_timeline

    print("\nworker-0 activity timeline (D=dense, E=experts, *=events):")
    print(render_timeline(final.trace, lanes=["compute.dense", "compute.expert"],
                          width=76, worker=0))


if __name__ == "__main__":
    main()
