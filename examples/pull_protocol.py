"""The pull protocol under the hood (paper §6).

Shows the substrate Janus builds its data-centric communication from: a
socket control plane carrying pull requests and an RDMA data plane carrying
expert payloads.  One machine's GPUs act as pull servers; a remote machine
pulls four experts, first sequentially (fine-grained, as the Janus Task
Queue issues them) and then all at once (to see the NIC being shared).

Run:  python examples/pull_protocol.py
"""

from repro.cluster import Cluster, Device
from repro.comm import PullTransport
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment

EXPERT_BYTES = 18.9e6  # one H=768 fp32 expert


def main():
    cluster = Cluster(num_machines=2)
    env = Environment()
    fabric = Fabric(env, cluster)
    transport = PullTransport(fabric)

    # Machine 1's first four GPUs each serve one expert.
    servers = [Device.gpu(1, gpu) for gpu in range(4)]
    for device in servers:
        transport.serve(device)
    requester = Device.gpu(0, 0)

    print("sequential fine-grained pulls (one outstanding, like the "
          "Intra-Node Scheduler):")
    start = env.now
    last = start

    def sequential():
        nonlocal last
        for expert, server in enumerate(servers):
            done = transport.pull(requester, server, EXPERT_BYTES, key=expert)
            yield done
            now = env.now
            print(f"  expert {expert} from {server}: "
                  f"arrived at {now * 1e3:6.2f} ms "
                  f"(+{(now - last) * 1e3:.2f} ms)")
            last = now

    env.run(until=env.process(sequential()))
    sequential_time = env.now - start

    print("\nconcurrent pulls (all four at once):")
    start = env.now
    pulls = [
        transport.pull(requester, server, EXPERT_BYTES, key=f"c{expert}")
        for expert, server in enumerate(servers)
    ]

    def concurrent():
        yield AllOf(env, pulls)

    env.run(until=env.process(concurrent()))
    concurrent_time = env.now - start
    print(f"  all four arrived after {concurrent_time * 1e3:.2f} ms "
          f"(sequential took {sequential_time * 1e3:.2f} ms)")
    print(f"\ncross-machine bytes moved: "
          f"{fabric.total_cross_machine_bytes() / 1e6:.1f} MB")
    print("requester-side NIC is the bottleneck either way — which is why "
          "Janus overlaps pulls with expert compute instead of racing them.")


if __name__ == "__main__":
    main()
