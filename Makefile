# Janus reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test lint bench bench-check bench-write bench-runtime \
	bench-runtime-check bench-runtime-write bench-schedules \
	bench-schedules-check bench-schedules-write bench-control \
	bench-control-check bench-control-write bench-serving \
	bench-serving-check bench-serving-write bench-scale \
	bench-scale-check bench-scale-write figs profile \
	baseline baseline-write coverage chaos reports examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

# Wall-clock benchmark of the simulator itself (host time, not simulated
# time); snapshot + history live in benchmarks/BENCH_speed.json.
bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench

bench-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --quick --check

bench-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --write

# Wall-clock benchmark of the numerical runtime (trainer steps through the
# sorted-dispatch executors); snapshot + history live in
# benchmarks/BENCH_runtime.json.  float64 only — float32 captures
# (bench --suite runtime --dtype float32) are experiments, never gates.
bench-runtime:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite runtime

bench-runtime-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite runtime --quick --check

bench-runtime-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite runtime --write

# Task-graph schedule benchmark (mixed-R MoE-GPT: micro-batching, grad
# all-reduce, auto).  The check gates on calibration-rescaled wall medians
# AND the simulated-time schedule wins; snapshot lives in
# benchmarks/BENCH_schedules.json.
bench-schedules:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite schedules

bench-schedules-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite schedules --quick --check

bench-schedules-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite schedules --write

# Adaptive-control benchmark (drifting workload, controller vs every
# static paradigm).  The check gates on calibration-rescaled wall medians
# AND the structural control win — adaptive must beat every static in
# simulated time; snapshot lives in benchmarks/BENCH_control.json.
bench-control:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite control

bench-control-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite control --quick --check

bench-control-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite control --write

# Request-level serving benchmark (seeded arrival traces, unified vs
# disaggregated prefill/decode).  The check gates on calibration-rescaled
# wall medians AND the structural serving win — disaggregated p99 TPOT
# must beat unified on the skewed trace; snapshot lives in
# benchmarks/BENCH_serving.json.
bench-serving:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite serving

bench-serving-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite serving --quick --check

bench-serving-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite serving --write

# Weak-scaling benchmark (MoE-GPT expert-centric, 8 -> 128 machines).
# The check gates on calibration-rescaled wall medians AND two structural
# laws: per-event cost may grow at most 1.3x from the smallest to the
# largest fleet, and the 128-machine iteration must stay under the
# (rescaled) 10 s budget; snapshot lives in benchmarks/BENCH_scale.json.
bench-scale:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite scale

bench-scale-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite scale --quick --check

bench-scale-write:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --suite scale --write

# cProfile the hottest Fig. 14 config (top 25 by cumulative time).
profile:
	PYTHONPATH=src $(PYTHON) -m repro.cli simulate \
		--model moe-gpt --paradigm data-centric --profile

# pytest-benchmark figure battery (simulated-time comparisons).
figs:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf-regression gate: fresh metric capture vs benchmarks/BENCH_metrics.json.
baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py --check

baseline-write:
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py --write

# Line coverage with a hard 100% floor on the metrics subsystem
# (requires pytest-cov; CI installs it).
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q \
		--cov=repro --cov-report=term --cov-report=xml
	PYTHONPATH=src $(PYTHON) -m coverage report \
		--include='src/repro/metrics/*' --fail-under=100

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_chaos_resilience.py \
		--benchmark-only -q
	@cat benchmarks/reports/chaos_resilience.txt

reports: figs
	@cat benchmarks/reports/*.txt

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/paradigm_planner.py
	$(PYTHON) examples/train_tiny_moe.py
	$(PYTHON) examples/simulate_cluster_training.py

clean:
	rm -rf benchmarks/reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
