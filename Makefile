# Janus reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test lint bench baseline baseline-write coverage chaos \
	reports examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf-regression gate: fresh metric capture vs benchmarks/BENCH_metrics.json.
baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py --check

baseline-write:
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py --write

# Line coverage with a hard 100% floor on the metrics subsystem
# (requires pytest-cov; CI installs it).
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q \
		--cov=repro --cov-report=term --cov-report=xml
	PYTHONPATH=src $(PYTHON) -m coverage report \
		--include='src/repro/metrics/*' --fail-under=100

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_chaos_resilience.py \
		--benchmark-only -q
	@cat benchmarks/reports/chaos_resilience.txt

reports: bench
	@cat benchmarks/reports/*.txt

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/paradigm_planner.py
	$(PYTHON) examples/train_tiny_moe.py
	$(PYTHON) examples/simulate_cluster_training.py

clean:
	rm -rf benchmarks/reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
