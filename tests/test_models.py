"""Tests for the functional model zoo: attention, gate, MoE layer, model."""

import numpy as np
import pytest

from repro.models import (
    Expert,
    MoELayer,
    MoETransformer,
    MultiHeadAttention,
    TopKGate,
    TransformerBlock,
)
from repro.models.flops import (
    attention_flops,
    dense_ffn_flops,
    expert_flops_per_token,
    gate_flops,
)
from repro.tensorlib import Tensor

RNG = np.random.default_rng(3)


from tests.conftest import tiny_model_config as tiny_config  # noqa: E402


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(16, 4, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadAttention(8, 2, causal=True, rng=RNG)
        x = RNG.standard_normal((1, 6, 8))
        base = attn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0  # change only the last position
        out = attn(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_non_causal_attends_everywhere(self):
        attn = MultiHeadAttention(8, 2, causal=False, rng=RNG)
        x = RNG.standard_normal((1, 4, 8))
        base = attn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 3] += 10.0
        out = attn(Tensor(perturbed)).numpy()
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_gradients_flow(self):
        attn = MultiHeadAttention(8, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None

    def test_bad_hidden_dim_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 4)
        attn = MultiHeadAttention(8, 2, rng=RNG)
        with pytest.raises(ValueError):
            attn(Tensor(RNG.standard_normal((1, 3, 16))))


class TestGate:
    def test_topk_selection_matches_numpy(self):
        gate = TopKGate(8, 6, 2, rng=RNG)
        tokens = Tensor(RNG.standard_normal((10, 8)))
        decision = gate(tokens)
        probs = decision.probs.numpy()
        for i in range(10):
            top = set(np.argsort(-probs[i])[:2])
            assert set(decision.expert_indices[i]) == top

    def test_combine_weights_rows_sum_to_one(self):
        gate = TopKGate(8, 6, 3, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((7, 8))))
        np.testing.assert_allclose(
            decision.combine_weights.numpy().sum(axis=1), np.ones(7)
        )

    def test_top1_weights_are_all_one(self):
        gate = TopKGate(8, 4, 1, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((5, 8))))
        np.testing.assert_allclose(decision.combine_weights.numpy(), 1.0)

    def test_tokens_per_expert_histogram(self):
        gate = TopKGate(8, 4, 2, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((20, 8))))
        hist = decision.tokens_per_expert(4)
        assert hist.sum() == 40  # 20 tokens x k=2 slots
        assert hist.shape == (4,)

    def test_dispatch_plan_segments_consistent(self):
        gate = TopKGate(8, 4, 2, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((15, 8))))
        plan = decision.dispatch_plan()
        total = sum(plan.segment(e)[0].size for e in range(4))
        assert total == 30

    def test_aux_loss_is_scalar_and_at_least_one(self):
        # E * sum f_e P_e >= 1 with equality at perfect balance.
        gate = TopKGate(8, 4, 2, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((50, 8))))
        assert decision.aux_loss.size == 1
        assert decision.aux_loss.item() >= 0.99

    def test_gate_is_differentiable(self):
        gate = TopKGate(8, 4, 2, rng=RNG)
        decision = gate(Tensor(RNG.standard_normal((5, 8))))
        decision.combine_weights.sum().backward()
        assert gate.proj.weight.grad is not None

    def test_bad_topk_rejected(self):
        with pytest.raises(ValueError):
            TopKGate(8, 4, 5)
        with pytest.raises(ValueError):
            TopKGate(8, 4, 0)

    def test_bad_token_shape_rejected(self):
        gate = TopKGate(8, 4, 2, rng=RNG)
        with pytest.raises(ValueError):
            gate(Tensor(RNG.standard_normal((5, 7))))


class TestExpert:
    def test_weight_export_import_round_trip(self):
        src = Expert(8, rng=RNG)
        dst = Expert(8, rng=np.random.default_rng(77))
        dst.import_weights(src.export_weights())
        x = Tensor(RNG.standard_normal((3, 8)))
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy())

    def test_collect_gradients_zero_when_unused(self):
        expert = Expert(8, rng=RNG)
        grads = expert.collect_gradients()
        assert all(np.all(g == 0) for g in grads.values())

    def test_apply_gradients_accumulates(self):
        expert = Expert(8, rng=RNG)
        ones = {name: np.ones_like(p.data) for name, p in expert.named_parameters()}
        expert.apply_gradients(ones)
        expert.apply_gradients(ones)
        for _, param in expert.named_parameters():
            np.testing.assert_allclose(param.grad, 2.0)

    def test_apply_gradients_validates_keys(self):
        expert = Expert(8, rng=RNG)
        with pytest.raises(KeyError):
            expert.apply_gradients({"bogus": np.zeros(1)})


class TestMoELayer:
    def test_output_shape(self):
        layer = MoELayer(16, 4, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 5, 16)))
        assert layer(x).shape == (2, 5, 16)

    def test_single_expert_topk1_equals_plain_ffn(self):
        layer = MoELayer(8, 1, 1, rng=RNG)
        x = Tensor(RNG.standard_normal((1, 4, 8)))
        expected = layer.experts[0](x.reshape(4, 8)).numpy()
        np.testing.assert_allclose(layer(x).numpy().reshape(4, 8), expected)

    def test_all_experts_receive_gradients_when_used(self):
        layer = MoELayer(8, 2, 2, rng=RNG)  # top-2 of 2: all experts used
        x = Tensor(RNG.standard_normal((2, 6, 8)), requires_grad=True)
        layer(x).sum().backward()
        for expert in layer.experts:
            assert expert.fc1.weight.grad is not None

    def test_decision_recorded(self):
        layer = MoELayer(8, 4, 2, rng=RNG)
        layer(Tensor(RNG.standard_normal((1, 3, 8))))
        assert layer.last_decision is not None
        assert layer.last_decision.num_tokens == 3


class TestTransformer:
    def test_dense_block_shape_and_grads(self):
        block = TransformerBlock(16, 4, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 5, 16)), requires_grad=True)
        out = block(x)
        assert out.shape == (2, 5, 16)
        out.sum().backward()
        assert x.grad is not None

    def test_model_forward_logits_shape(self):
        config = tiny_config()
        model = MoETransformer(config, rng=RNG)
        tokens = RNG.integers(0, config.vocab_size, size=(2, 6))
        logits = model(tokens)
        assert logits.shape == (2, 6, config.vocab_size)

    def test_model_block_layout_follows_config(self):
        config = tiny_config()
        model = MoETransformer(config, rng=RNG)
        from repro.models import MoEBlock

        kinds = [isinstance(b, MoEBlock) for b in model.blocks]
        assert kinds == [False, True, False]

    def test_training_step_decreases_loss(self):
        from repro.tensorlib import Adam

        config = tiny_config()
        model = MoETransformer(config, rng=RNG)
        tokens = RNG.integers(0, config.vocab_size, size=(2, 6))
        targets = RNG.integers(0, config.vocab_size, size=(2, 6))
        optimizer = Adam(model.parameters(), lr=1e-2)
        first = None
        for _ in range(8):
            optimizer.zero_grad()
            loss = model.loss(tokens, targets)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        final = model.loss(tokens, targets).item()
        assert final < first

    def test_moe_blocks_accessor(self):
        model = MoETransformer(tiny_config(), rng=RNG)
        assert len(model.moe_blocks()) == 1


class TestFlops:
    def test_attention_flops_positive_and_quadratic_in_seq(self):
        short = attention_flops(1, 128, 64)
        long = attention_flops(1, 256, 64)
        assert long > 2 * short  # superlinear due to the S^2 terms

    def test_ffn_flops_formula(self):
        assert dense_ffn_flops(2, 3, 4, mult=4) == 2 * 2 * 2 * 3 * 4 * 16

    def test_expert_flops_per_token(self):
        assert expert_flops_per_token(256) == 4 * 256 * 4 * 256

    def test_gate_flops_scales_with_experts(self):
        assert gate_flops(1, 10, 8, 32) == 2 * gate_flops(1, 10, 8, 16)
