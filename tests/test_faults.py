"""Tests for the fault-injection subsystem and resilient scheduling.

Covers the fault-plan grammar, mid-flight link rescaling, the injector's
determinism, and the engine-level guarantees: bit-identical timings with
faults disabled, graceful (bounded, hang-free) degradation with them on,
credit-discipline preservation, and the between-iteration paradigm
degradation policy.
"""

import pytest

from repro.cluster import Cluster, LinkId
from repro.comm import PullFailedError
from repro.config import moe_gpt
from repro.core import build_workload, engine_for
from repro.faults import (
    ComputeSlowdown,
    DegradationPolicy,
    FaultInjector,
    FaultPlan,
    LinkFault,
    MessageLoss,
    ResilienceConfig,
    ServerOutage,
)
from repro.netsim import Fabric
from repro.simkit import Environment
from repro.trace import render_timeline


# Pre-PR golden timings for moe_gpt(16) on Cluster(2) with the default
# workload: the no-fault acceptance bar (bit-identical, not approximate).
GOLDEN_SECONDS = {
    "expert-centric": 0.10544364660053329,
    "data-centric": 0.07532739188053336,
    "pipelined-ec": 0.09161975125333331,
    "unified": 0.07532739188053336,
}


@pytest.fixture(scope="module")
def setup():
    config = moe_gpt(16)
    cluster = Cluster(2)
    workload = build_workload(config, cluster)
    return config, cluster, workload


def run_one(setup, mode, **kwargs):
    config, cluster, workload = setup
    engine = engine_for(mode, config, cluster, workload=workload, **kwargs)
    return engine.run_iteration()


class TestFaultPlanParse:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7;loss=pull-request+grad-push*0.1;"
            "link=nic.0*0.25@0.005:0.015;slow=0*0.5;outage=1:pause@0.002:0.004"
        )
        assert plan.seed == 7
        loss, link, slow, outage = plan.faults
        assert loss == MessageLoss(
            kinds=("pull-request", "grad-push"), rate=0.1
        )
        assert link == LinkFault("nic.0", 0.25, start=0.005, end=0.015)
        assert slow == ComputeSlowdown(machine=0, speed=0.5)
        assert outage == ServerOutage(
            machine=1, mode="pause", start=0.002, end=0.004
        )

    def test_empty_and_default_windows(self):
        plan = FaultPlan.parse("loss=pull-request*0.2")
        assert plan.seed == 0
        (loss,) = plan.faults
        assert loss.start == 0.0 and loss.end == float("inf")
        assert not FaultPlan.parse("")
        assert plan

    @pytest.mark.parametrize("spec", [
        "bogus",
        "frob=1*2",
        "loss=pull-request",          # no magnitude
        "loss=fetch-external*0.1",    # not a lossable kind
        "loss=pull-request*1.5",      # rate out of range
        "link=nic*0",                 # factor must be positive
        "link=nic*0.5@0.01:0.005",    # empty window
        "slow=x*0.5",                 # machine must be an int
        "outage=0:flaky",             # unknown mode
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_link_selector_matching(self):
        nic_any = LinkFault("nic", 0.5)
        assert nic_any.matches(LinkId("nic", 0, 0, "out"))
        assert nic_any.matches(LinkId("nic", 3, 1, "in"))
        assert not nic_any.matches(LinkId("nvlink", 0, 0, "out"))
        scoped = LinkFault("nic.1", 0.5)
        assert scoped.matches(LinkId("nic", 1, 0, "out"))
        assert not scoped.matches(LinkId("nic", 0, 0, "out"))
        prefix = LinkFault("pcie", 0.5)
        assert prefix.matches(LinkId("pcie_up", 2, 0, "out"))
        assert prefix.matches(LinkId("pcie_gpu", 2, 1, "in"))
        assert LinkFault("*", 0.5).matches(LinkId("nvlink", 0, 0, "out"))


class TestSetCapacity:
    def test_mid_flight_rescale_timing(self):
        """100 B over a 100 B/s link, halved at t=0.5: 50 B moved at the
        old rate, the rest at 50 B/s -> completion at t=1.5."""
        env = Environment()
        from repro.netsim.fluid import FluidNetwork

        network = FluidNetwork(env)
        network.add_link("l", 100.0)
        flow = network.transfer(["l"], 100.0)

        def chaos():
            yield env.timeout(0.5)
            network.set_capacity("l", 50.0)

        env.process(chaos(), daemon=True)
        env.run(until=flow.done)
        assert env.now == pytest.approx(1.5)
        assert network.capacity("l") == 50.0

    def test_rejects_non_positive(self):
        env = Environment()
        from repro.netsim.fluid import FluidNetwork

        network = FluidNetwork(env)
        network.add_link("l", 100.0)
        with pytest.raises(ValueError):
            network.set_capacity("l", 0.0)


class TestComputeSlowdown:
    def test_piecewise_duration_across_window(self):
        env = Environment()
        fabric = Fabric(env, Cluster(1))
        plan = FaultPlan(faults=(ComputeSlowdown(0, 0.5, start=1.0, end=2.0),))
        injector = FaultInjector(plan, fabric)
        # Entirely before the window: nominal.
        assert injector.compute_duration(0, 0.5, 0.0) == pytest.approx(0.5)
        # Entirely inside: doubled.
        assert injector.compute_duration(0, 0.4, 1.1) == pytest.approx(0.8)
        # Straddling the start: 0.5s nominal + 0.5s of work at half speed.
        assert injector.compute_duration(0, 1.0, 0.5) == pytest.approx(1.5)
        # Straddling the end: 1s of slow work covers 0.5 units, rest nominal.
        assert injector.compute_duration(0, 1.0, 1.0) == pytest.approx(1.5)
        # Other machines unaffected.
        assert injector.compute_duration(1, 1.0, 1.0) == 1.0


class TestNoFaultGoldens:
    @pytest.mark.parametrize("mode", sorted(GOLDEN_SECONDS))
    def test_bit_identical_without_faults(self, setup, mode):
        assert run_one(setup, mode).seconds == GOLDEN_SECONDS[mode]

    @pytest.mark.parametrize("mode", ["data-centric", "unified"])
    def test_resilience_alone_does_not_change_timing(self, setup, mode):
        """Arming timeouts/retries with no injected faults must reproduce
        the golden timeline: every pull completes before its timer."""
        result = run_one(setup, mode, resilience=ResilienceConfig())
        assert result.seconds == GOLDEN_SECONDS[mode]
        assert result.fault_stats.dropped_messages == 0
        assert result.fault_stats.retries == 0
        assert result.fault_stats.stale_fallbacks == 0


class TestEngineUnderFaults:
    def test_total_pull_loss_degrades_gracefully(self, setup):
        plan = FaultPlan.parse("seed=1;loss=pull-request*1.0")
        result = run_one(setup, "data-centric", fault_plan=plan)
        stats = result.fault_stats
        # Every external fetch exhausted its retries and fell back stale.
        assert stats.stale_fallbacks > 0
        assert stats.dropped_messages > 0
        # Bounded slowdown, not a hang: well under 2x the healthy time.
        assert result.seconds < 2 * GOLDEN_SECONDS["data-centric"]
        # Fallback and drop events are on the fault timeline lane.
        assert result.trace.spans_of("fault.fallback")
        assert result.trace.spans_of("fault.drop")
        assert result.trace.events_of("fault.fallback")

    def test_same_plan_and_seed_reproduce_identical_timelines(self, setup):
        plan = FaultPlan.parse("seed=7;loss=pull-request*0.5")
        a = run_one(setup, "data-centric", fault_plan=plan)
        b = run_one(setup, "data-centric", fault_plan=plan)
        assert a.seconds == b.seconds
        assert a.fault_stats.dropped_messages == b.fault_stats.dropped_messages
        assert a.fault_stats.retries == b.fault_stats.retries
        assert [s.start for s in a.trace.spans_of("fault.")] == [
            s.start for s in b.trace.spans_of("fault.")
        ]
        different_seed = FaultPlan.parse("seed=8;loss=pull-request*0.5")
        c = run_one(setup, "data-centric", fault_plan=different_seed)
        assert (
            c.fault_stats.dropped_messages
            != a.fault_stats.dropped_messages
            or c.seconds != a.seconds
        )

    def test_expert_centric_immune_to_pull_loss(self, setup):
        plan = FaultPlan.parse("seed=1;loss=pull-request*1.0")
        result = run_one(setup, "expert-centric", fault_plan=plan)
        assert result.seconds == GOLDEN_SECONDS["expert-centric"]
        assert result.fault_stats.dropped_messages == 0

    def test_credits_all_released_under_faults(self, setup):
        plan = FaultPlan.parse("seed=3;loss=pull-request*1.0")
        result = run_one(setup, "data-centric", fault_plan=plan)
        credit_size = result.features.credit_size
        assert set(result.credit_levels.values()) == {credit_size}
        assert all(level >= 0 for level in result.credit_min_levels.values())

    def test_compute_slowdown_stretches_iteration(self, setup):
        plan = FaultPlan.parse("slow=1*0.5")
        result = run_one(setup, "data-centric", fault_plan=plan)
        assert result.seconds > GOLDEN_SECONDS["data-centric"]

    def test_link_degradation_window_stretches_iteration(self, setup):
        plan = FaultPlan.parse("link=nic*0.05@0.0:0.05")
        result = run_one(setup, "data-centric", fault_plan=plan)
        assert result.seconds > GOLDEN_SECONDS["data-centric"]
        assert result.trace.spans_of("fault.link")

    def test_server_outage_window_recovers(self, setup):
        plan = FaultPlan.parse("outage=1@0.0:0.01")
        result = run_one(setup, "data-centric", fault_plan=plan)
        stats = result.fault_stats
        assert stats.dropped_messages > 0
        assert stats.retries > 0
        assert result.seconds < 2 * GOLDEN_SECONDS["data-centric"]

    def test_on_failure_raise_surfaces_pull_failure(self, setup):
        plan = FaultPlan.parse("seed=1;loss=pull-request*1.0")
        with pytest.raises(PullFailedError):
            run_one(
                setup, "data-centric", fault_plan=plan,
                resilience=ResilienceConfig(on_failure="raise"),
            )

    def test_fault_lane_renders_in_timeline(self, setup):
        plan = FaultPlan.parse("seed=1;loss=pull-request*1.0")
        result = run_one(setup, "data-centric", fault_plan=plan)
        art = render_timeline(result.trace, lanes=["compute.dense", "fault"])
        fault_row = next(
            line for line in art.splitlines() if line.startswith("fault")
        )
        assert "!" in fault_row


class TestDegradationPolicy:
    def test_persistent_fallbacks_flip_block_to_expert_centric(self, setup):
        plan = FaultPlan.parse("seed=2;loss=pull-request*1.0")
        config, cluster, workload = setup
        engine = engine_for(
            "unified", config, cluster, workload=workload,
            fault_plan=plan, degradation=DegradationPolicy(),
        )
        first, second = engine.run(2)
        assert first.fault_stats.stale_fallbacks > 0
        assert first.fault_stats.degraded_blocks
        # Every degraded block runs expert-centric from iteration 2 on.
        for block in first.fault_stats.degraded_blocks:
            assert second.strategies[block] == "expert-centric"
        # Expert-centric needs no cross-machine pulls: no more fallbacks.
        degraded = set(first.fault_stats.degraded_blocks)
        assert not (
            set(second.fault_stats.fallbacks_by_block) & degraded
        )
        assert first.trace.events_of("fault.degrade")

    def test_decide_thresholds(self):
        from repro.faults import FaultStats

        policy = DegradationPolicy(degrade_after_fallbacks=3)
        stats = FaultStats(fallbacks_by_block={1: 2, 3: 5})
        assert policy.decide(stats) == {3: "expert-centric"}

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(degrade_after_fallbacks=0)
        with pytest.raises(ValueError):
            ResilienceConfig(pull_timeout=0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(on_failure="shrug")
