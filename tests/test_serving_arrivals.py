"""Property battery for the seeded request-trace generator.

The serving goldens and the bench reproducibility gate both lean on one
fact: a :class:`TraceSpec` evaluates to the same bits everywhere.  This
battery drives the generator across all trace shapes with hypothesis and
checks the invariants the simulator depends on — reproducibility (in- and
cross-process), ordered non-negative arrivals, bounded lengths, and a
realized rate that matches the configured one.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import TRACE_KINDS, TraceSpec, expert_rank, generate_trace

# One spec per trace shape, reused by the non-hypothesis tests.
SHAPES = {
    "poisson": TraceSpec("poisson", rate=500.0, requests=4000, seed=3),
    "diurnal": TraceSpec(
        "diurnal", rate=500.0, requests=4000, seed=3,
        period=2.0, amplitude=0.9,
    ),
    "bursty": TraceSpec(
        "bursty", rate=500.0, requests=4000, seed=3, burst=5.0, duty=0.1,
    ),
}

trace_specs = st.builds(
    TraceSpec,
    kind=st.sampled_from(TRACE_KINDS),
    rate=st.floats(min_value=50.0, max_value=5000.0),
    requests=st.integers(min_value=1, max_value=3000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    prompt_mean=st.floats(min_value=1.0, max_value=512.0),
    output_mean=st.floats(min_value=1.0, max_value=128.0),
    skew=st.floats(min_value=0.0, max_value=3.0),
    period=st.floats(min_value=0.5, max_value=16.0),
    amplitude=st.floats(min_value=0.0, max_value=1.0),
    burst=st.floats(min_value=1.0, max_value=8.0),
    duty=st.floats(min_value=0.05, max_value=0.95),
)


class TestGeneratorProperties:
    @given(spec=trace_specs)
    @settings(max_examples=40, deadline=None)
    def test_seeded_traces_are_reproducible(self, spec):
        first = generate_trace(spec)
        second = spec.generate()
        assert first.digest() == second.digest()
        np.testing.assert_array_equal(first.arrival_s, second.arrival_s)
        np.testing.assert_array_equal(
            first.prompt_tokens, second.prompt_tokens
        )
        np.testing.assert_array_equal(
            first.output_tokens, second.output_tokens
        )
        np.testing.assert_array_equal(first.affinity, second.affinity)

    @given(spec=trace_specs)
    @settings(max_examples=40, deadline=None)
    def test_arrivals_sorted_and_nonnegative(self, spec):
        trace = generate_trace(spec)
        assert len(trace) == spec.requests
        assert trace.arrival_s[0] >= 0.0
        assert (np.diff(trace.arrival_s) >= 0.0).all()

    @given(spec=trace_specs)
    @settings(max_examples=40, deadline=None)
    def test_lengths_bounded_and_affinity_uniform(self, spec):
        trace = generate_trace(spec)
        assert (trace.prompt_tokens >= 1).all()
        assert trace.prompt_tokens.max() <= max(1, int(16 * spec.prompt_mean))
        assert (trace.output_tokens >= 1).all()
        assert trace.output_tokens.max() <= max(1, int(16 * spec.output_mean))
        assert (trace.affinity >= 0.0).all() and (trace.affinity < 1.0).all()
        assert trace.total_prompt_tokens == trace.prompt_tokens.sum()
        assert trace.total_output_tokens == trace.output_tokens.sum()

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_realized_rate_matches_configured(self, kind):
        """Long-run mean arrival rate tracks ``spec.rate`` for every shape.

        4000 requests put the relative sampling error near
        1/sqrt(4000) ~ 1.6%; a 10% band is comfortably above that while
        still catching a mis-scaled thinning envelope (a wrong calm-rate
        or peak would be off by tens of percent).
        """
        spec = SHAPES[kind]
        trace = generate_trace(spec)
        assert trace.offered_rate == pytest.approx(spec.rate, rel=0.10)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_mean_lengths_match_configured(self, kind):
        trace = generate_trace(SHAPES[kind])
        assert trace.prompt_tokens.mean() == pytest.approx(128.0, rel=0.10)
        assert trace.output_tokens.mean() == pytest.approx(32.0, rel=0.10)


class TestCrossProcess:
    def test_digest_is_identical_in_a_fresh_process(self):
        """Bit-reproducibility across process boundaries, not just reruns."""
        spec = "poisson;rate=1000;requests=2000;seed=7;skew=1.2"
        local = generate_trace(TraceSpec.parse(spec)).digest()
        src = Path(__file__).resolve().parent.parent / "src"
        remote = subprocess.run(
            [
                sys.executable, "-c",
                "from repro.serving import TraceSpec, generate_trace; "
                f"print(generate_trace(TraceSpec.parse({spec!r})).digest())",
            ],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        assert remote == local


class TestRateFunction:
    def test_poisson_rate_is_flat(self):
        spec = SHAPES["poisson"]
        times = np.linspace(0.0, 10.0, 101)
        np.testing.assert_array_equal(
            spec.rate_at(times), np.full(101, spec.rate)
        )
        assert spec.peak_rate == spec.rate

    def test_diurnal_rate_swings_around_mean(self):
        spec = SHAPES["diurnal"]
        times = np.linspace(0.0, 4 * spec.period, 4001)
        rates = spec.rate_at(times)
        assert rates.min() >= spec.rate * (1 - spec.amplitude) - 1e-9
        assert rates.max() <= spec.peak_rate + 1e-9
        assert rates.mean() == pytest.approx(spec.rate, rel=0.01)

    def test_bursty_duty_cycle_preserves_mean(self):
        spec = SHAPES["bursty"]
        times = np.linspace(0.0, spec.period, 10001)[:-1]
        rates = spec.rate_at(times)
        levels = np.unique(rates)
        assert levels == pytest.approx(
            [spec._calm_rate, spec.burst * spec._calm_rate]
        )
        assert rates.mean() == pytest.approx(spec.rate, rel=0.01)
        assert spec.peak_rate == pytest.approx(spec.burst * spec._calm_rate)


class TestSpecParsing:
    def test_parse_roundtrip(self):
        spec = TraceSpec.parse(
            "bursty;rate=1500;requests=100;seed=9;burst=3;duty=0.25;"
            "prompt_mean=64;output_mean=8;skew=1.1"
        )
        assert spec == TraceSpec(
            "bursty", rate=1500.0, requests=100, seed=9, burst=3.0,
            duty=0.25, prompt_mean=64.0, output_mean=8.0, skew=1.1,
        )

    def test_parse_bare_kind_and_empty_clauses(self):
        assert TraceSpec.parse("diurnal;;rate=10") == TraceSpec(
            "diurnal", rate=10.0
        )
        assert TraceSpec.parse("") == TraceSpec()

    @pytest.mark.parametrize("text", [
        "warp", "poisson;tempo=3", "poisson;rate=fast", "poisson;rate",
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            TraceSpec.parse(text)

    @pytest.mark.parametrize("overrides", [
        dict(kind="weekly"), dict(rate=0.0), dict(requests=0),
        dict(prompt_mean=0.5), dict(output_mean=0.0), dict(skew=-1.0),
        dict(period=0.0), dict(amplitude=1.5), dict(burst=0.5),
        dict(duty=0.0), dict(duty=1.0),
    ])
    def test_spec_validation(self, overrides):
        with pytest.raises(ValueError):
            TraceSpec(**overrides)


class TestExpertRank:
    @given(
        skew=st.floats(min_value=0.0, max_value=4.0),
        num_experts=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_ranks_stay_in_range(self, skew, num_experts, seed):
        affinity = np.random.default_rng(seed).random(256)
        ranks = expert_rank(affinity, num_experts, skew)
        assert ranks.shape == affinity.shape
        assert ranks.min() >= 0
        assert ranks.max() < num_experts

    def test_zero_skew_is_uniform(self):
        affinity = (np.arange(64) + 0.5) / 64.0
        ranks = expert_rank(affinity, 8, 0.0)
        counts = np.bincount(ranks, minlength=8)
        np.testing.assert_array_equal(counts, np.full(8, 8))

    def test_skew_concentrates_on_low_ranks(self):
        affinity = np.random.default_rng(0).random(20_000)
        flat = (expert_rank(affinity, 16, 0.0) == 0).mean()
        skewed = (expert_rank(affinity, 16, 1.2) == 0).mean()
        sharper = (expert_rank(affinity, 16, 2.0) == 0).mean()
        assert flat < skewed < sharper

    def test_affinity_of_one_edge_maps_to_last_rank(self):
        ranks = expert_rank(np.array([0.0, 1.0 - 1e-12]), 4, 1.5)
        assert ranks[0] == 0
        assert ranks[1] == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            expert_rank(np.array([0.5]), 0, 1.0)
        with pytest.raises(ValueError):
            expert_rank(np.array([0.5]), 4, -0.5)
