"""Coalescing equivalence battery.

Flow coalescing collapses concurrent flows sharing an interned path
group into one macro-flow row of the water-filling solve, with a
per-member byte ledger (tombstoned retirement).  The acceptance bar is
*exact* equivalence, not approximate: under any interleaving of
arrivals, departures and mid-flight capacity rescales, the coalesced
network must hand every flow the same IEEE-754 rate, finish it at the
same simulated time, and account the same per-link bytes as the
uncoalesced solver.  The same bar applies to the compiled water-filling
kernel against the pure-python filling loop.
"""

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import FluidNetwork
from repro.netsim import _waterfill
from repro.simkit import Environment


@st.composite
def schedules(draw):
    """Random link tables plus arrival/rescale schedules.

    Paths are drawn from a small pool so several flows routinely share a
    path group — the case coalescing actually batches.
    """
    num_links = draw(st.integers(min_value=2, max_value=5))
    links = [
        (f"l{i}", draw(st.floats(min_value=1.0, max_value=500.0)))
        for i in range(num_links)
    ]
    paths = st.lists(
        st.integers(min_value=0, max_value=num_links - 1),
        min_size=1,
        max_size=2,
        unique=True,
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("arrive"),
                    paths,
                    st.floats(min_value=1.0, max_value=1000.0),
                ),
                st.tuples(
                    st.just("rescale"),
                    st.integers(min_value=0, max_value=num_links - 1),
                    st.floats(min_value=1.0, max_value=500.0),
                ),
            ),
            min_size=1,
            max_size=14,
        )
    )
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0),
            min_size=len(ops),
            max_size=len(ops),
        )
    )
    return links, ops, gaps


def _settle(env):
    env.run(until=env.now)


def _run_schedule(schedule, coalesce):
    """Replay one schedule; return (rate log, finish times, link bytes).

    The rate log snapshots every active flow's rate after each operation
    settles, keyed by arrival order, so a divergence is caught at the
    instant it appears rather than washed out by completions.
    """
    links, ops, gaps = schedule
    env = Environment()
    net = FluidNetwork(env, coalesce=coalesce)
    for link_id, bandwidth in links:
        net.add_link(link_id, bandwidth)
    flows = []
    rate_log = []
    for (op, *payload), gap in zip(ops, gaps):
        if gap > 0:
            until = env.now + gap
            if net._n:
                until = min(until, env.peek())
            env.run(until=until)
        if op == "arrive":
            indices, size = payload
            flows.append(
                net.transfer(tuple(f"l{i}" for i in indices), size)
            )
        else:
            index, bandwidth = payload
            net.set_capacity(f"l{index}", bandwidth)
        _settle(env)
        rate_log.append([flow.rate for flow in flows])
    while net.active_flows:
        env.run(until=env.peek())
        _settle(env)
    finish_times = [flow.completed_at for flow in flows]
    link_bytes = {link_id: net.link_bytes[link_id] for link_id, _ in links}
    return rate_log, finish_times, link_bytes


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_coalesced_equals_uncoalesced_exactly(schedule):
    coalesced = _run_schedule(schedule, coalesce=True)
    plain = _run_schedule(schedule, coalesce=False)
    # Exact float equality on every rate at every instant, every finish
    # time, and every link's byte counter — not approx.
    assert coalesced == plain


@contextmanager
def _python_solver():
    """Force the pure-python filling loops for the duration."""
    original = _waterfill.kernel
    _waterfill.kernel = lambda: None
    try:
        yield
    finally:
        _waterfill.kernel = original


@settings(max_examples=40, deadline=None)
@given(schedules())
def test_compiled_kernel_equals_python_solver_exactly(schedule):
    if _waterfill.kernel() is None:
        return  # no C compiler on this host; the python path is the only one
    compiled = _run_schedule(schedule, coalesce=True)
    with _python_solver():
        plain = _run_schedule(schedule, coalesce=True)
    assert compiled == plain


class TestSetCapacityRescale:
    """Coalescing must respect mid-flight ``set_capacity`` rescales."""

    def _shared_group_network(self, coalesce):
        env = Environment()
        net = FluidNetwork(env, coalesce=coalesce)
        net.add_link("wire", 100.0)
        # Three flows in ONE path group: the group's macro-row carries
        # multiplicity 3 through the rescale.
        flows = [net.transfer(("wire",), 300.0) for _ in range(3)]
        _settle(env)
        return env, net, flows

    def test_rescale_rerates_a_coalesced_group(self):
        env, net, flows = self._shared_group_network(coalesce=True)
        assert [flow.rate for flow in flows] == [100.0 / 3] * 3
        env.run(until=1.0)
        net.set_capacity("wire", 30.0)
        _settle(env)
        assert [flow.rate for flow in flows] == [10.0] * 3
        while net.active_flows:
            env.run(until=env.peek())
            _settle(env)
        # 300 bytes each: 100/3 moved in the first second, the rest at
        # 10 B/s after the rescale.
        for flow in flows:
            assert flow.completed_at == 1.0 + (300.0 - 100.0 / 3) / 10.0

    def test_rescale_matches_uncoalesced_exactly(self):
        outcomes = []
        for coalesce in (True, False):
            env, net, flows = self._shared_group_network(coalesce)
            env.run(until=1.0)
            net.set_capacity("wire", 30.0)
            _settle(env)
            rates_after = [flow.rate for flow in flows]
            while net.active_flows:
                env.run(until=env.peek())
                _settle(env)
            outcomes.append(
                (
                    rates_after,
                    [flow.completed_at for flow in flows],
                    net.link_bytes["wire"],
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_rescale_epoch_invalidates_solve_memo(self):
        # Same group signature before and after the rescale: only the
        # capacity epoch distinguishes the cache keys.
        env, net, flows = self._shared_group_network(coalesce=True)
        before = flows[0].rate
        net.set_capacity("wire", 60.0)
        _settle(env)
        after = flows[0].rate
        assert before == 100.0 / 3
        assert after == 20.0
