"""Unit tests for the cluster hardware and topology model."""

import pytest

from repro.cluster import (
    Cluster,
    Device,
    LinkId,
    LinkSpec,
    MachineSpec,
    a100_machine_spec,
)
from repro.units import gbps, gbytes_per_s


class TestMachineSpec:
    def test_default_matches_paper_testbed(self):
        spec = a100_machine_spec()
        assert spec.num_gpus == 8
        assert spec.num_pcie_switches == 4
        assert spec.num_nics == 4
        assert spec.nvlink.bandwidth == gbytes_per_s(600)
        assert spec.pcie.bandwidth == gbytes_per_s(64)
        assert spec.nic.bandwidth == gbps(200)

    def test_pcie_switch_assignment_pairs_gpus(self):
        spec = a100_machine_spec()
        assert [spec.pcie_switch_of(g) for g in range(8)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]

    def test_nic_assignment_pairs_gpus(self):
        spec = a100_machine_spec()
        assert [spec.nic_of(g) for g in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_pcie_peer_is_the_other_gpu_under_the_switch(self):
        spec = a100_machine_spec()
        assert spec.pcie_peer_of(0) == 1
        assert spec.pcie_peer_of(1) == 0
        assert spec.pcie_peer_of(6) == 7

    def test_rank_bounds_checked(self):
        spec = a100_machine_spec()
        with pytest.raises(ValueError):
            spec.nic_of(8)
        with pytest.raises(ValueError):
            spec.pcie_switch_of(-1)

    def test_indivisible_gpu_count_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(num_gpus=7)

    def test_link_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1, latency=-1)


class TestDevice:
    def test_factories_and_str(self):
        gpu = Device.gpu(1, 3)
        host = Device.host(2)
        assert str(gpu) == "gpu[1.3]"
        assert str(host) == "host[2]"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Device("tpu", 0, 0)


class TestClusterRanks:
    def test_world_size(self):
        cluster = Cluster(4)
        assert cluster.world_size == 32

    def test_rank_round_trip(self):
        cluster = Cluster(4)
        for machine in range(4):
            for local in range(8):
                rank = cluster.global_rank(machine, local)
                assert cluster.machine_of(rank) == machine
                assert cluster.local_rank_of(rank) == local

    def test_gpu_device_lookup(self):
        cluster = Cluster(2)
        assert cluster.gpu_device(9) == Device.gpu(1, 1)

    def test_gpus_enumeration(self):
        cluster = Cluster(2)
        gpus = list(cluster.gpus())
        assert len(gpus) == 16
        assert gpus[0] == Device.gpu(0, 0)
        assert gpus[-1] == Device.gpu(1, 7)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)
        cluster = Cluster(1)
        with pytest.raises(ValueError):
            cluster.machine_of(8)


class TestRouting:
    def test_local_copy_has_empty_path(self):
        cluster = Cluster(1)
        gpu = Device.gpu(0, 0)
        assert cluster.route(gpu, gpu) == []

    def test_intra_machine_gpu_to_gpu_uses_nvlink_ports(self):
        cluster = Cluster(1)
        path = cluster.route(Device.gpu(0, 2), Device.gpu(0, 5))
        assert path == [
            LinkId("nvlink", 0, 2, "out"),
            LinkId("nvlink", 0, 5, "in"),
        ]

    def test_gpu_to_host_goes_through_its_pcie_switch(self):
        cluster = Cluster(1)
        path = cluster.route(Device.gpu(0, 5), Device.host(0))
        assert path == [
            LinkId("pcie_gpu", 0, 5, "out"),
            LinkId("pcie_up", 0, 2, "out"),
        ]

    def test_host_to_gpu_reverses_pcie_direction(self):
        cluster = Cluster(1)
        path = cluster.route(Device.host(0), Device.gpu(0, 5))
        assert path == [
            LinkId("pcie_up", 0, 2, "in"),
            LinkId("pcie_gpu", 0, 5, "in"),
        ]

    def test_cross_machine_gpu_route_uses_pair_nics(self):
        cluster = Cluster(2)
        path = cluster.route(Device.gpu(0, 6), Device.gpu(1, 1))
        assert path == [
            LinkId("nic", 0, 3, "out"),
            LinkId("nic", 1, 0, "in"),
        ]

    def test_cross_machine_host_route_defaults_to_nic0(self):
        cluster = Cluster(2)
        path = cluster.route(Device.host(0), Device.host(1))
        assert path == [
            LinkId("nic", 0, 0, "out"),
            LinkId("nic", 1, 0, "in"),
        ]

    def test_nic_override(self):
        cluster = Cluster(2)
        path = cluster.route(Device.host(0), Device.host(1), nic_index=2)
        assert path == [
            LinkId("nic", 0, 2, "out"),
            LinkId("nic", 1, 2, "in"),
        ]

    def test_nic_override_out_of_range_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError):
            cluster.route(Device.host(0), Device.host(1), nic_index=4)

    def test_link_enumeration_counts(self):
        cluster = Cluster(2)
        links = list(cluster.iter_links())
        # Per machine: 8 GPUs x 2 dirs x (nvlink + pcie_gpu) = 32,
        # 4 pcie_up x 2 = 8, 4 nics x 2 = 8 -> 48; two machines -> 96.
        assert len(links) == 96
        ids = [link_id for link_id, _, _ in links]
        assert len(set(ids)) == len(ids)

    def test_link_ids_validate_fields(self):
        with pytest.raises(ValueError):
            LinkId("wifi", 0, 0, "out")
        with pytest.raises(ValueError):
            LinkId("nic", 0, 0, "sideways")
