"""Property test: sorted dispatch == the naive per-expert nonzero path.

The vectorized executors route every worker's tokens with one stable
argsort (:class:`repro.models.DispatchPlan`), one gather, and one weighted
scatter-add.  These tests pin that rewrite to a naive reference that
re-implements the pre-vectorization dataflow — a per-expert
``np.nonzero(expert_indices == expert)`` scan with one gather/scatter pair
per (worker, expert) — built as subclasses that override only ``run()``,
so both paths share the gate, the canonical experts, and the data-centric
cache attribution.

Checked per random (tokens, top_k, experts, capacity_factor, cluster
shape) draw: forward outputs, every parameter gradient, the exact CommLog
record list, and the pulled-replica census.  Tolerances are ~1e-12: the
sorted combine adds each token's expert contributions in slot order where
the naive path adds them in expert order, so the results differ only by
float64 summation re-association.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import DispatchPlan, TopKGate
from repro.runtime import (
    CommLog,
    DataCentricMoE,
    ExpertCentricMoE,
    RankLayout,
)
from repro.tensorlib import Tensor

HIDDEN = 8


def naive_slots(decision, expert_id):
    """The pre-vectorization per-expert scan (row-major order)."""
    return np.nonzero(decision.expert_indices == expert_id)


class NaiveExpertCentric(ExpertCentricMoE):
    """Pre-vectorization All-to-All dataflow; everything else inherited."""

    def run(self, worker_tokens):
        decisions = self._route_all(worker_tokens)
        self._run_start_index = len(self.comm_log.records)
        self._backward_done = False
        world = self.layout.world_size
        outputs = [None] * world
        for expert_id, expert in enumerate(self.experts):
            owner = self.placement.owner(expert_id)
            pieces = []
            meta = []
            for rank, (tokens, decision) in enumerate(
                zip(worker_tokens, decisions)
            ):
                token_ids, slot_ids = naive_slots(decision, expert_id)
                if token_ids.size == 0:
                    continue
                if rank != owner:
                    self.comm_log.record(
                        "dispatch", rank, owner,
                        token_ids.size * self.token_bytes,
                    )
                pieces.append(tokens.gather_rows(token_ids))
                meta.append((rank, token_ids, slot_ids))
            if not pieces:
                continue
            batch = (
                Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
            )
            expert_out = expert(batch)
            offset = 0
            for rank, token_ids, slot_ids in meta:
                count = token_ids.size
                piece = expert_out[offset:offset + count]
                offset += count
                if rank != owner:
                    self.comm_log.record(
                        "combine", owner, rank, count * self.token_bytes
                    )
                contribution = self._weighted_scatter(
                    worker_tokens[rank].shape[0], token_ids, slot_ids,
                    piece, decisions[rank],
                )
                if outputs[rank] is None:
                    outputs[rank] = contribution
                else:
                    outputs[rank] = outputs[rank] + contribution
        for rank, tokens in enumerate(worker_tokens):
            if outputs[rank] is None:
                outputs[rank] = tokens * 0.0
        return outputs


class NaiveDataCentric(DataCentricMoE):
    """Pre-vectorization pull dataflow; shares the new ``_fetch`` (replica
    pooling and cache-hit attribution), so the comparison isolates the
    dispatch arithmetic."""

    def run(self, worker_tokens):
        decisions = self._route_all(worker_tokens)
        self._backward_done = False
        self._machine_experts = {}
        self._replicas = {}
        self._fill_rank = {}
        self._served_rank = {}
        outputs = []
        for rank, (tokens, decision) in enumerate(
            zip(worker_tokens, decisions)
        ):
            num_tokens = tokens.shape[0]
            output = None
            for expert_id in range(self.num_experts):
                token_ids, slot_ids = naive_slots(decision, expert_id)
                if token_ids.size == 0:
                    continue
                expert = self._fetch(expert_id, rank)
                expert_out = expert(tokens.gather_rows(token_ids))
                contribution = self._weighted_scatter(
                    num_tokens, token_ids, slot_ids, expert_out, decision
                )
                output = (
                    contribution if output is None else output + contribution
                )
            outputs.append(output if output is not None else tokens * 0.0)
        return outputs


CONFIGS = st.tuples(
    st.integers(min_value=1, max_value=10),        # tokens per worker
    st.sampled_from([1, 2, 4]),                    # top_k
    st.sampled_from([4, 8]),                       # num_experts
    st.sampled_from([None, 0.5, 1.0, 1.5]),        # capacity_factor
    st.sampled_from([(1, 2), (2, 1), (2, 2)]),     # (machines, workers)
    st.integers(min_value=0, max_value=2**31 - 1),  # data seed
)


def build_pair(naive_cls, fast_cls, num_experts, top_k, layout,
               capacity_factor, seed):
    """Two state-identical executors of the same paradigm."""
    pair = []
    for cls in (naive_cls, fast_cls):
        executor = cls(
            HIDDEN, num_experts, top_k, layout,
            comm_log=CommLog(layout), rng=np.random.default_rng(seed),
        )
        executor.gate = TopKGate(
            HIDDEN, num_experts, top_k,
            rng=np.random.default_rng(seed),
            capacity_factor=capacity_factor,
        )
        pair.append(executor)
    pair[1].import_state(pair[0].export_state())
    return pair


def run_and_grads(executor, worker_tokens):
    outputs = executor.run(worker_tokens)
    loss = None
    for out in outputs:
        term = (out * out).sum()
        loss = term if loss is None else loss + term
    loss.backward()
    executor.finish_backward()
    grads = [
        None if param.grad is None else np.array(param.grad)
        for param in executor.parameters()
    ]
    return [out.data for out in outputs], grads


def assert_paths_equivalent(naive_cls, fast_cls, config):
    tokens_per_worker, top_k, num_experts, capacity_factor, shape, seed = (
        config
    )
    layout = RankLayout(*shape)
    if num_experts % layout.world_size:
        num_experts = layout.world_size * max(
            1, num_experts // layout.world_size
        )
    top_k = min(top_k, num_experts)
    naive, fast = build_pair(
        naive_cls, fast_cls, num_experts, top_k, layout, capacity_factor,
        seed,
    )
    rng = np.random.default_rng(seed)
    data = [
        rng.standard_normal((tokens_per_worker, HIDDEN))
        for _ in range(layout.world_size)
    ]
    naive_out, naive_grads = run_and_grads(
        naive, [Tensor(batch) for batch in data]
    )
    fast_out, fast_grads = run_and_grads(
        fast, [Tensor(batch) for batch in data]
    )
    for expected, actual in zip(naive_out, fast_out):
        np.testing.assert_allclose(actual, expected, rtol=1e-11, atol=1e-12)
    for expected, actual in zip(naive_grads, fast_grads):
        if expected is None or actual is None:
            # An expert no token routed to has no gradient on either path.
            assert expected is None and actual is None
            continue
        np.testing.assert_allclose(actual, expected, rtol=1e-11, atol=1e-12)
    # Traffic must be *identical*, record for record: same kinds, same
    # endpoints, same byte counts, in the same order.
    assert fast.comm_log.records == naive.comm_log.records


class TestSortedDispatchEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(config=CONFIGS)
    def test_expert_centric_matches_naive(self, config):
        assert_paths_equivalent(NaiveExpertCentric, ExpertCentricMoE, config)

    @settings(max_examples=25, deadline=None)
    @given(config=CONFIGS)
    def test_data_centric_matches_naive(self, config):
        assert_paths_equivalent(NaiveDataCentric, DataCentricMoE, config)

    @settings(max_examples=15, deadline=None)
    @given(config=CONFIGS)
    def test_data_centric_pull_census_matches(self, config):
        """Same census of pulled replicas on both paths."""
        tokens_per_worker, top_k, num_experts, capacity_factor, shape, seed \
            = config
        layout = RankLayout(*shape)
        if num_experts % layout.world_size:
            num_experts = layout.world_size * max(
                1, num_experts // layout.world_size
            )
        top_k = min(top_k, num_experts)
        naive, fast = build_pair(
            NaiveDataCentric, DataCentricMoE, num_experts, top_k, layout,
            capacity_factor, seed,
        )
        rng = np.random.default_rng(seed)
        data = [
            rng.standard_normal((tokens_per_worker, HIDDEN))
            for _ in range(layout.world_size)
        ]
        run_and_grads(naive, [Tensor(batch) for batch in data])
        run_and_grads(fast, [Tensor(batch) for batch in data])
        assert fast.pulled_expert_count() == naive.pulled_expert_count()


class TestDispatchPlanSegments:
    @settings(max_examples=40, deadline=None)
    @given(
        num_tokens=st.integers(min_value=0, max_value=20),
        top_k=st.integers(min_value=1, max_value=4),
        num_experts=st.integers(min_value=1, max_value=8),
        drop_rate=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_segments_equal_nonzero_scan(
        self, num_tokens, top_k, num_experts, drop_rate, seed
    ):
        """Every expert segment reproduces the np.nonzero pairs exactly —
        same token ids, same slot ids, same (row-major) order — including
        capacity-dropped (-1) slots."""
        rng = np.random.default_rng(seed)
        expert_indices = rng.integers(
            0, num_experts, size=(num_tokens, top_k)
        )
        dropped = rng.random((num_tokens, top_k)) < drop_rate
        expert_indices[dropped] = -1
        plan = DispatchPlan(expert_indices, num_experts)
        total = 0
        for expert_id in range(num_experts):
            token_ids, slot_ids = np.nonzero(expert_indices == expert_id)
            plan_tokens, plan_slots = plan.segment(expert_id)
            np.testing.assert_array_equal(plan_tokens, token_ids)
            np.testing.assert_array_equal(plan_slots, slot_ids)
            assert plan.count(expert_id) == token_ids.size
            total += token_ids.size
        assert plan.total_routed == total
        present = {
            expert_id
            for expert_id in range(num_experts)
            if plan.count(expert_id)
        }
        assert set(plan.experts_present().tolist()) == present
