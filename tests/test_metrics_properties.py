"""Property-based tests on the metrics subsystem and its invariants.

Two layers: pure registry/histogram properties driven by hypothesis, and
engine-level invariants (cache accounting, credit discipline, busy-time
bounds, Chrome-trace well-formedness) checked across a seeded sweep of
paradigms and workload shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import engine_for
from repro.metrics import (
    Histogram,
    MetricsRegistry,
    build_run_report,
    chrome_trace,
    comm_busy_time,
    compute_busy_time,
    overlap_efficiency,
)
from repro.trace import TraceRecorder

from tests.conftest import small_cluster, small_config

MODES = ("expert-centric", "data-centric", "unified", "pipelined-ec")


def run_instrumented(mode, seed=0, imbalance=0.3, **config_overrides):
    registry = MetricsRegistry()
    trace = TraceRecorder()
    config = small_config(**config_overrides)
    engine = engine_for(
        mode, config, small_cluster(),
        rng=np.random.default_rng(seed), imbalance=imbalance,
        metrics=registry, trace=trace,
    )
    result = engine.run_iteration()
    return registry, trace, result


class TestHistogramProperties:
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=60)
    def test_bucket_counts_partition_observations(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        assert sum(hist.bucket_counts) == hist.count == len(values)
        assert hist.min == min(values)
        assert hist.max == max(values)
        assert hist.total == pytest.approx(sum(values))

    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=40)
    def test_mean_within_min_max(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        assert hist.min - 1e-12 <= hist.mean <= hist.max + 1e-12


class TestRegistryProperties:
    @given(increments=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.floats(min_value=0.0, max_value=1e3, allow_nan=False)),
        max_size=50,
    ))
    @settings(max_examples=50)
    def test_total_equals_sum_of_label_series(self, increments):
        registry = MetricsRegistry()
        expected = {}
        for label, value in increments:
            registry.inc("counter", value, kind=label)
            expected[label] = expected.get(label, 0.0) + value
        assert registry.total("counter") == pytest.approx(
            sum(expected.values())
        )
        for label, value in expected.items():
            assert registry.counter("counter", kind=label) == pytest.approx(
                value
            )


class TestEngineInvariants:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_cache_hits_plus_misses_equals_requests(self, mode, seed):
        registry, _, _ = run_instrumented(mode, seed=seed)
        requests = registry.total("cache.requests")
        hits = registry.total("cache.hits")
        misses = registry.total("cache.misses")
        assert hits + misses == requests
        # Fault-free: every miss is served by exactly one cross-machine
        # fill, and nothing else fills the cache.
        assert misses == registry.total("cache.fills")
        assert misses == registry.total("fetch.issued")

    @pytest.mark.parametrize("mode", MODES)
    def test_credit_occupancy_never_exceeds_capacity(self, mode):
        registry, _, result = run_instrumented(mode)
        capacity = result.features.credit_size
        for rank, min_level in result.credit_min_levels.items():
            assert 0 <= min_level <= capacity
            occupancy = registry.gauge(
                "credit.max_occupancy", rank=rank, iteration=0
            )
            assert 0 <= occupancy <= capacity
            assert occupancy == capacity - min_level

    @pytest.mark.parametrize("mode", MODES)
    def test_worker_busy_time_bounded_by_makespan(self, mode):
        _, trace, result = run_instrumented(mode)
        workers = {
            span.worker for span in trace.spans if span.worker is not None
        }
        assert workers  # the traced worker recorded something
        for worker in workers:
            busy = trace.worker_busy_time(worker, iteration=0)
            assert 0 <= busy <= result.seconds + 1e-12

    @pytest.mark.parametrize("mode", MODES)
    def test_derived_kpis_are_normalized(self, mode):
        _, trace, result = run_instrumented(mode)
        efficiency = overlap_efficiency(trace, iteration=0)
        assert 0.0 <= efficiency <= 1.0 + 1e-9
        assert comm_busy_time(trace, 0) <= result.seconds + 1e-12
        assert compute_busy_time(trace, 0) <= result.seconds + 1e-12

    def test_histogram_latencies_are_non_negative(self):
        registry, _, result = run_instrumented("data-centric")
        for name in registry.histogram_names():
            for key in (
                (), (("kind", "internal"),), (("kind", "pcie"),),
                (("kind", "peer"),), (("kind", "backward"),),
            ):
                hist = registry.histogram(name, **dict(key))
                if hist is None:
                    continue
                assert hist.min >= 0.0
                assert hist.max <= result.seconds


REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}
VALID_PHASES = {"X", "i", "C", "M"}


class TestChromeTraceWellFormed:
    @pytest.mark.parametrize("mode", MODES)
    def test_events_have_required_keys_and_sane_values(self, mode):
        registry, trace, result = run_instrumented(mode)
        document = chrome_trace(trace, registry)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        makespan_us = result.seconds * 1e6
        for event in events:
            assert REQUIRED_EVENT_KEYS <= set(event)
            assert event["ph"] in VALID_PHASES
            assert event["ts"] >= 0
            assert event["ts"] <= makespan_us + 1e-6
            assert event["pid"] == 0
            assert event["tid"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] + event["dur"] <= makespan_us + 1e-6
            if event["ph"] == "i":
                assert event["s"] in {"g", "p", "t"}

    def test_thread_metadata_covers_every_span_lane(self):
        _, trace, _ = run_instrumented("data-centric")
        document = chrome_trace(trace)
        events = document["traceEvents"]
        named_tids = {
            event["tid"] for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        used_tids = {
            event["tid"] for event in events if event["ph"] != "M"
        }
        assert used_tids <= named_tids

    def test_counter_events_carry_registry_totals(self):
        registry, trace, _ = run_instrumented("data-centric")
        document = chrome_trace(trace, registry)
        counter_events = {
            event["name"]: event for event in document["traceEvents"]
            if event["ph"] == "C"
        }
        assert "pull.issued" in counter_events
        args = counter_events["pull.issued"]["args"]
        assert sum(args.values()) == registry.total("pull.issued")

    def test_json_serializable(self):
        import json

        registry, trace, _ = run_instrumented("unified")
        document = chrome_trace(trace, registry)
        assert json.loads(json.dumps(document)) == document


class TestRunReportProperties:
    def test_report_is_consistent_with_results(self):
        registry = MetricsRegistry()
        trace = TraceRecorder()
        engine = engine_for(
            "unified", small_config(), small_cluster(),
            rng=np.random.default_rng(0), imbalance=0.3,
            metrics=registry, trace=trace,
        )
        results = engine.run(3)
        report = build_run_report(results, registry, paradigm="unified")
        assert report["schema"].startswith("janus-repro/run-report/")
        assert len(report["iterations"]) == 3
        assert report["makespan_seconds"] == pytest.approx(
            sum(result.seconds for result in results)
        )
        for summary, result in zip(report["iterations"], results):
            assert summary["seconds"] == result.seconds
            assert summary["all_to_all_share"] <= 1.0
        assert report["run"] == {"paradigm": "unified"}
        assert "metrics" in report
