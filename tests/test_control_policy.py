"""Unit tests of the adaptive control plane's decision layer.

Covers the drift generators (:mod:`repro.workloads.drift` and the
:class:`~repro.models.DriftingGate`), the CLI parse grammars, the
measured-load cost model, and the :class:`~repro.control.ControlPolicy`
state machine: hysteresis (oscillating sub-deadband load must not flap),
probation-based recovery with exponential backoff, the fault arm's legacy
one-way ratchet, and the replication watermarks/budget.
"""

import numpy as np
import pytest

from repro.control import (
    BlockLoadSignals,
    ControlConfig,
    ControlPolicy,
    ControlSignals,
    CostModel,
)
from repro.faults import DegradationPolicy
from repro.faults.injector import FaultStats
from repro.models import DriftingGate, TopKGate
from repro.tensorlib import Tensor
from repro.workloads import DRIFT_KINDS, DriftSpec, drift_weights

BLOCK = 10


# -- helpers ---------------------------------------------------------------


def make_sig(
    machine_imbalance=1.0,
    share=None,
    bottleneck=100,
    max_rank=300,
    num_experts=8,
):
    """A hand-built BlockLoadSignals for an 8-expert, 2-machine block."""
    if share is None:
        share = np.full(num_experts, 1.0 / num_experts)
    external = {
        0: frozenset(range(num_experts // 2, num_experts)),
        1: frozenset(range(num_experts // 2)),
    }
    return BlockLoadSignals(
        block=BLOCK,
        num_experts=num_experts,
        experts_per_worker=2,
        tokens_total=4096,
        expert_share=np.asarray(share, dtype=float),
        rank_imbalance=1.0,
        machine_imbalance=machine_imbalance,
        max_rank_recv=max_rank,
        a2a_bottleneck_tokens=bottleneck,
        external_demand=external,
        external_counts={m: len(s) for m, s in external.items()},
        active_experts_per_rank=float(num_experts),
    )


def make_signals(sig, strategy="microbatch-ec", iteration=1, fault_stats=None):
    return ControlSignals(
        iteration=iteration,
        seconds=0.01,
        strategies={sig.block: strategy},
        blocks={sig.block: sig},
        fault_stats=fault_stats,
    )


# Magnitudes chosen so skewed All-to-All bottlenecks dominate the EC
# family while the data-centric estimate barely moves.
COSTS = CostModel(
    token_bytes=2048.0,
    expert_bytes=4e6,
    expert_flops=1e7,
    gpu_flops=1e13,
    nic_bandwidth=1e10,
    kernel_overhead=1e-5,
    micro_batches=4,
    ec_pipeline_chunks=4,
)

BALANCED = make_sig(machine_imbalance=1.0, bottleneck=100, max_rank=300)
SKEWED = make_sig(machine_imbalance=1.9, bottleneck=40000, max_rank=3000)


# -- drift generators ------------------------------------------------------


class TestDriftSpec:
    def test_parse_full_grammar(self):
        spec = DriftSpec.parse("flip;skew=1.5;period=2;seed=7")
        assert spec.kind == "flip"
        assert spec.skew == 1.5
        assert spec.period == 2
        assert spec.seed == 7

    def test_parse_defaults_to_static(self):
        assert DriftSpec.parse("").kind == "static"

    @pytest.mark.parametrize("text", [
        "nonsense",                # bare word that is not a kind
        "flip;bogus=3",            # unknown field
        "flip;period=two",         # bad literal
        "kind=spiral",             # unknown kind (validation)
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            DriftSpec.parse(text)

    @pytest.mark.parametrize("kind", DRIFT_KINDS)
    def test_weights_are_a_distribution(self, kind):
        spec = DriftSpec(kind=kind, skew=1.3, seed=3)
        for iteration in (0, 1, 5):
            weights = spec.weights(16, iteration, block_index=BLOCK)
            assert weights.shape == (16,)
            assert np.all(weights > 0)
            assert weights.sum() == pytest.approx(1.0)

    def test_weights_deterministic(self):
        spec = DriftSpec(kind="walk", step=0.3, seed=11)
        first = drift_weights(spec, 32, 4, BLOCK)
        again = drift_weights(spec, 32, 4, BLOCK)
        np.testing.assert_array_equal(first, again)

    def test_flip_starts_at_low_skew_pole(self):
        spec = DriftSpec(kind="flip", skew=1.5, low_skew=0.0, period=2)
        assert spec.skew_at(0) == 0.0
        assert spec.skew_at(1) == 0.0
        assert spec.skew_at(2) == 1.5
        assert spec.skew_at(4) == 0.0

    def test_rotate_shifts_hot_identity_keeps_values(self):
        spec = DriftSpec(kind="rotate", skew=2.0, period=1, shift=1, seed=5)
        before = spec.weights(16, 0, BLOCK)
        after = spec.weights(16, 1, BLOCK)
        # Same popularity values, assigned to different experts.
        np.testing.assert_allclose(np.sort(before), np.sort(after))
        assert int(before.argmax()) != int(after.argmax())

    def test_walk_with_zero_step_is_static(self):
        still = DriftSpec(kind="walk", skew=1.2, step=0.0, seed=2)
        static = DriftSpec(kind="static", skew=1.2, seed=2)
        np.testing.assert_allclose(
            still.weights(16, 7, BLOCK), static.weights(16, 7, BLOCK)
        )


class TestDriftingGate:
    HIDDEN, EXPERTS, TOKENS = 8, 4, 256

    def _tokens(self):
        rng = np.random.default_rng(0)
        return Tensor(rng.standard_normal((self.TOKENS, self.HIDDEN)))

    def test_zero_bias_strength_matches_plain_gate(self):
        plain = TopKGate(self.HIDDEN, self.EXPERTS, 1,
                         rng=np.random.default_rng(1))
        drifting = DriftingGate(self.HIDDEN, self.EXPERTS, 1,
                                rng=np.random.default_rng(1),
                                bias_strength=0.0)
        tokens = self._tokens()
        np.testing.assert_array_equal(
            plain.forward(tokens).expert_indices,
            drifting.forward(tokens).expert_indices,
        )

    def test_strong_bias_tracks_drifting_hotspot(self):
        gate = DriftingGate(
            self.HIDDEN, self.EXPERTS, 1,
            rng=np.random.default_rng(1),
            drift=DriftSpec(kind="rotate", skew=3.0, period=1, seed=9),
            bias_strength=50.0,
        )
        tokens = self._tokens()
        seen = []
        for iteration in range(3):
            gate.advance(iteration)
            decision = gate.forward(tokens)
            histogram = decision.tokens_per_expert(self.EXPERTS)
            assert int(histogram.argmax()) == int(gate.popularity().argmax())
            seen.append(int(histogram.argmax()))
        assert len(set(seen)) > 1        # the hotspot actually moved

    def test_advance_defaults_to_next_iteration(self):
        gate = DriftingGate(self.HIDDEN, self.EXPERTS, 1)
        assert gate.advance() == 1
        assert gate.advance(5) == 5
        with pytest.raises(ValueError):
            gate.advance(-1)


# -- config grammar --------------------------------------------------------


class TestControlConfig:
    def test_parse_bare_adaptive_is_defaults(self):
        assert ControlConfig.parse("adaptive") == ControlConfig()

    def test_parse_fields_and_flags(self):
        spec = ControlConfig.parse(
            "adaptive;deviation=0.3;patience=2;replicas=off;"
            "load_strategy=data-centric;recover_after_clean=1"
        )
        assert spec.deviation == 0.3
        assert spec.patience == 2
        assert spec.adapt_replicas is False
        assert spec.adapt_load is True
        assert spec.recover_after_clean == 1

    @pytest.mark.parametrize("text", [
        "bogus_field=1",
        "load=maybe",
        "deviation=fast",
        "patience",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ControlConfig.parse(text)

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(patience=0)
        with pytest.raises(ValueError):
            ControlConfig(hot_factor=0.5)
        with pytest.raises(ValueError):
            ControlConfig(evict_factor=5.0, hot_factor=4.0)

    def test_calm_deviation_defaults_to_half_deadband(self):
        assert ControlConfig(deviation=0.4).calm_deviation == 0.2
        assert ControlConfig(recover_deviation=0.05).calm_deviation == 0.05


# -- cost model ------------------------------------------------------------


class TestCostModel:
    def test_skew_inflates_ec_family_not_dc(self):
        for strategy in ("expert-centric", "microbatch-ec", "pipelined-ec"):
            assert COSTS.estimate(SKEWED, strategy) > 2 * COSTS.estimate(
                BALANCED, strategy
            )
        # DC pays fetch sets + mean compute; skew leaves both untouched.
        assert COSTS.estimate(SKEWED, "data-centric") == pytest.approx(
            COSTS.estimate(BALANCED, "data-centric")
        )

    def test_overlap_beats_plain_ec(self):
        assert COSTS.estimate(SKEWED, "microbatch-ec") < COSTS.estimate(
            SKEWED, "expert-centric"
        )

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            COSTS.estimate(BALANCED, "quantum")


# -- the policy state machine ----------------------------------------------


def calm_policy(**overrides):
    config = ControlConfig(**{
        "deviation": 0.25, "patience": 1, "cooldown": 0,
        "recover_after_clean": 1, "probation": 2, "hysteresis": 0.1,
        "adapt_replicas": False, **overrides,
    })
    return ControlPolicy(config=config)


class TestLoadArm:
    def test_static_signals_are_structurally_inert(self):
        policy = calm_policy()
        for iteration in range(4):
            decision = policy.decide(
                make_signals(BALANCED, iteration=iteration), COSTS
            )
            assert decision.empty

    def test_sub_deadband_oscillation_never_flaps(self):
        policy = calm_policy()
        wobble = make_sig(machine_imbalance=1.2, bottleneck=200)
        for iteration in range(8):
            sig = BALANCED if iteration % 2 == 0 else wobble
            decision = policy.decide(
                make_signals(sig, iteration=iteration), COSTS
            )
            assert decision.empty
        assert policy.state_of(BLOCK).mode == "normal"

    def test_switch_recover_and_probation_backoff(self):
        policy = calm_policy()
        # Reference capture on a balanced iteration.
        assert policy.decide(make_signals(BALANCED, iteration=0), COSTS).empty

        # Sustained drift with a clear cost win: switch to data-centric.
        decision = policy.decide(make_signals(SKEWED, iteration=1), COSTS)
        assert decision.strategies == {BLOCK: "data-centric"}
        assert decision.causes == {BLOCK: "load"}

        # Calm again: one calm observation earns recovery (to the
        # preferred strategy recorded at attach time), entering probation.
        decision = policy.decide(
            make_signals(BALANCED, "data-centric", iteration=2), COSTS
        )
        assert decision.strategies == {BLOCK: "microbatch-ec"}
        assert decision.causes == {BLOCK: "recover"}
        assert policy.state_of(BLOCK).mode == "probation"

        # Re-degrading during probation doubles the clean-streak target.
        decision = policy.decide(make_signals(SKEWED, iteration=3), COSTS)
        assert decision.causes == {BLOCK: "load"}
        assert policy.state_of(BLOCK).backoff == 2

        # Now one calm iteration is no longer enough...
        assert policy.decide(
            make_signals(BALANCED, "data-centric", iteration=4), COSTS
        ).empty
        # ...two are.
        decision = policy.decide(
            make_signals(BALANCED, "data-centric", iteration=5), COSTS
        )
        assert decision.causes == {BLOCK: "recover"}

    def test_no_switch_without_cost_win(self):
        policy = calm_policy()
        policy.decide(make_signals(BALANCED, iteration=0), COSTS)
        # Imbalance grew past the deadband but the All-to-All bottleneck
        # did not: the cost model sees no win, so no switch.
        drifted = make_sig(machine_imbalance=1.9, bottleneck=100)
        assert policy.decide(make_signals(drifted, iteration=1), COSTS).empty

    def test_adapt_load_off_disables_switching(self):
        policy = calm_policy(adapt_load=False)
        policy.decide(make_signals(BALANCED, iteration=0), COSTS)
        assert policy.decide(make_signals(SKEWED, iteration=1), COSTS).empty


class TestFaultArm:
    def _faulted(self, sig, strategy, iteration):
        stats = FaultStats()
        stats.count_fallback(BLOCK)
        stats.dropped_messages = 3
        return make_signals(sig, strategy, iteration, fault_stats=stats)

    def _clean(self, sig, strategy, iteration):
        return make_signals(
            sig, strategy, iteration, fault_stats=FaultStats()
        )

    def test_legacy_one_way_ratchet(self):
        policy = ControlPolicy(
            config=ControlConfig(adapt_load=False, adapt_replicas=False),
            degradation=DegradationPolicy(),
        )
        decision = policy.decide(self._faulted(BALANCED, "data-centric", 0))
        assert decision.strategies == {BLOCK: "expert-centric"}
        assert decision.causes == {BLOCK: "fault"}
        # No recover_after_clean: clean iterations never un-degrade.
        for iteration in range(1, 5):
            assert policy.decide(
                self._clean(BALANCED, "expert-centric", iteration)
            ).empty

    def test_probation_recovery_after_clean_streak(self):
        policy = ControlPolicy(
            config=ControlConfig(adapt_load=False, adapt_replicas=False),
            degradation=DegradationPolicy(recover_after_clean=2),
        )
        assert policy.decide(
            self._faulted(BALANCED, "data-centric", 0)
        ).causes == {BLOCK: "fault"}
        # Streak must reach 2 clean iterations before the trial return.
        assert policy.decide(self._clean(BALANCED, "expert-centric", 1)).empty
        decision = policy.decide(self._clean(BALANCED, "expert-centric", 2))
        assert decision.strategies == {BLOCK: "data-centric"}
        assert decision.causes == {BLOCK: "recover"}
        assert policy.state_of(BLOCK).mode == "probation"

        # Re-faulting during probation doubles the streak target.
        assert policy.decide(
            self._faulted(BALANCED, "data-centric", 3)
        ).causes == {BLOCK: "fault"}
        assert policy.state_of(BLOCK).backoff == 2
        # The doubled target now needs 4 clean iterations, not 2.
        for iteration in (4, 5, 6):
            assert policy.decide(
                self._clean(BALANCED, "expert-centric", iteration)
            ).empty
        decision = policy.decide(self._clean(BALANCED, "expert-centric", 7))
        assert decision.causes == {BLOCK: "recover"}

    def test_dirty_iteration_resets_the_streak(self):
        policy = ControlPolicy(
            config=ControlConfig(adapt_load=False, adapt_replicas=False),
            degradation=DegradationPolicy(recover_after_clean=2),
        )
        policy.decide(self._faulted(BALANCED, "data-centric", 0))
        policy.decide(self._clean(BALANCED, "expert-centric", 1))
        # A dropped message anywhere resets the clean streak, without
        # re-triggering degradation (no per-block fallbacks).
        stats = FaultStats()
        stats.dropped_messages = 1
        policy.decide(
            make_signals(BALANCED, "expert-centric", 2, fault_stats=stats)
        )
        assert policy.decide(self._clean(BALANCED, "expert-centric", 3)).empty
        assert policy.decide(
            self._clean(BALANCED, "expert-centric", 4)
        ).causes == {BLOCK: "recover"}


class TestReplicationArm:
    def _policy(self, **overrides):
        config = ControlConfig(**{
            "deviation": 0.25, "adapt_load": False,
            "hot_factor": 4.0, "evict_factor": 2.0, "max_replicas": 16,
            **overrides,
        })
        return ControlPolicy(config=config)

    @staticmethod
    def _share(hot_share):
        share = np.full(8, (1.0 - hot_share) / 7.0)
        share[0] = hot_share
        return share

    def test_hot_expert_replicates_then_evicts(self):
        policy = self._policy()
        # Reference share is uniform.
        assert policy.decide(
            make_signals(BALANCED, "data-centric", 0), COSTS
        ).empty

        # Expert 0 takes 60% of tokens (> hot watermark 4/8) and the share
        # drift exceeds the deadband: replicate on the machine that fetches
        # it (machine 1 — machine 0 owns experts 0-3).
        hot = make_sig(share=self._share(0.6))
        decision = policy.decide(make_signals(hot, "data-centric", 1), COSTS)
        assert decision.replicate == [(BLOCK, 0, 1)]
        assert decision.replicas == {BLOCK: {0: (1,)}}

        # Cooling to 30% stays above the evict watermark (2/8): keep it.
        warm = make_sig(share=self._share(0.30))
        decision = policy.decide(make_signals(warm, "data-centric", 2), COSTS)
        assert decision.evict == [] and decision.replicate == []
        assert decision.replicas == {BLOCK: {0: (1,)}}

        # Fully cooled below the watermark: evict.
        cold = make_sig(share=self._share(0.10))
        decision = policy.decide(make_signals(cold, "data-centric", 3), COSTS)
        assert decision.evict == [(BLOCK, 0, 1)]
        assert decision.replicas == {}

    def test_non_replicable_strategy_gets_no_replicas(self):
        policy = self._policy()
        policy.decide(make_signals(BALANCED, "microbatch-ec", 0), COSTS)
        hot = make_sig(share=self._share(0.6))
        decision = policy.decide(
            make_signals(hot, "microbatch-ec", 1), COSTS
        )
        assert decision.replicate == []

    def test_budget_caps_entries(self):
        policy = self._policy(max_replicas=0)
        policy.decide(make_signals(BALANCED, "data-centric", 0), COSTS)
        hot = make_sig(share=self._share(0.6))
        decision = policy.decide(make_signals(hot, "data-centric", 1), COSTS)
        assert decision.replicate == []

    def test_adapt_replicas_off(self):
        policy = self._policy(adapt_replicas=False)
        policy.decide(make_signals(BALANCED, "data-centric", 0), COSTS)
        hot = make_sig(share=self._share(0.6))
        decision = policy.decide(make_signals(hot, "data-centric", 1), COSTS)
        assert decision.replicate == [] and decision.replicas == {}
