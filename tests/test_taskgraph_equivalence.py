"""Property test: the task-graph scheduler is bit-identical to legacy.

For every built-in paradigm and a randomized sweep of model/cluster
shapes, running the same seeded iteration under ``scheduler="taskgraph"``
and ``scheduler="legacy"`` must produce *exactly* equal simulated seconds,
NIC egress bytes, and simulation-kernel counters (events processed and
processes started) — the graph adds structure, not events.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import strategy_engine
from repro.metrics import MetricsRegistry

from tests.conftest import small_cluster, small_config

PARADIGMS = ("expert-centric", "data-centric", "pipelined-ec")


def _run(paradigm, scheduler, machines, experts_per_worker, batch,
         imbalance, seed):
    experts = machines * 2 * experts_per_worker  # world size = machines * 2
    config = small_config(
        batch_size=batch, experts_per_block={1: experts, 3: experts}
    )
    registry = MetricsRegistry()
    engine = strategy_engine(
        paradigm, config, small_cluster(machines, 2),
        rng=np.random.default_rng(seed), imbalance=imbalance,
        metrics=registry, scheduler=scheduler,
    )
    result = engine.run_iteration()
    return (
        result.seconds,
        tuple(float(b) for b in result.nic_egress_bytes),
        registry.gauge("sim.events_processed", iteration=0),
        registry.gauge("sim.processes_started", iteration=0),
    )


class TestTaskGraphBitEquivalence:
    @given(
        paradigm=st.sampled_from(PARADIGMS),
        machines=st.integers(2, 3),
        experts_per_worker=st.integers(1, 2),
        batch=st.sampled_from([8, 16]),
        imbalance=st.sampled_from([0.0, 0.3, 0.6]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_schedulers_agree_exactly(
        self, paradigm, machines, experts_per_worker, batch, imbalance, seed
    ):
        args = (machines, experts_per_worker, batch, imbalance, seed)
        legacy = _run(paradigm, "legacy", *args)
        graphed = _run(paradigm, "taskgraph", *args)
        assert graphed == legacy  # exact: seconds, bytes, kernel counters

    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_forward_only_agrees_exactly(self, paradigm):
        config = small_config()
        results = []
        for scheduler in ("legacy", "taskgraph"):
            engine = strategy_engine(
                paradigm, config, small_cluster(),
                rng=np.random.default_rng(0), imbalance=0.3,
                scheduler=scheduler,
            )
            result = engine.run_iteration(forward_only=True)
            results.append(
                (result.seconds, tuple(map(float, result.nic_egress_bytes)))
            )
        assert results[0] == results[1]
