"""Tests for model configurations (Table 1 and §7.5)."""

import pytest

from repro.config import (
    ModelConfig,
    moe_bert,
    moe_gpt,
    moe_transformer_xl,
    pr_moe_transformer_xl,
)


class TestTable1Configs:
    def test_moe_bert_matches_table1(self):
        config = moe_bert(32)
        assert config.batch_size == 256
        assert config.seq_len == 128
        assert config.top_k == 2
        assert config.hidden_dim == 768
        assert config.num_blocks == 12
        assert config.num_moe_blocks == 4
        assert all(config.num_experts(i) == 32 for i in config.moe_block_indices)
        assert not config.causal

    def test_moe_bert_blocks_are_2_5_8_11(self):
        # Paper §7.1: the 2nd, 5th, 8th and 11th blocks are MoE blocks.
        assert moe_bert().moe_block_indices == (1, 4, 7, 10)

    def test_moe_gpt_matches_table1(self):
        config = moe_gpt(16)
        assert (config.batch_size, config.seq_len, config.top_k) == (256, 64, 4)
        assert config.hidden_dim == 768
        assert config.moe_block_indices == (10,)
        assert config.num_experts(10) == 16
        assert config.causal

    def test_moe_transformer_xl_matches_table1(self):
        config = moe_transformer_xl(32)
        assert (config.batch_size, config.seq_len, config.top_k) == (64, 512, 2)
        assert config.hidden_dim == 256
        assert config.num_moe_blocks == 12
        assert config.causal

    def test_tokens_per_worker_is_bsk(self):
        config = moe_bert()
        assert config.tokens_per_worker == 256 * 128 * 2

    def test_expert_param_count_is_8h_squared(self):
        config = moe_transformer_xl()
        assert config.expert_param_count == 8 * 256 * 256


class TestPRMoE:
    def test_scale1_layout(self):
        config = pr_moe_transformer_xl(1)
        experts = [config.num_experts(i) for i in config.moe_block_indices]
        assert experts == [16, 16, 64, 64]
        assert config.batch_size == 32

    def test_scale2_layout(self):
        config = pr_moe_transformer_xl(2)
        experts = [config.num_experts(i) for i in config.moe_block_indices]
        assert experts == [32, 32, 128, 128]
        assert config.batch_size == 64

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            pr_moe_transformer_xl(3)

    def test_experts_per_worker_varies_by_block(self):
        config = pr_moe_transformer_xl(1)
        indices = config.moe_block_indices
        assert config.experts_per_worker(indices[0], 16) == 1
        assert config.experts_per_worker(indices[-1], 16) == 4


class TestValidation:
    def test_uneven_expert_split_rejected(self):
        config = moe_bert(32)
        with pytest.raises(ValueError):
            config.experts_per_worker(1, 24)

    def test_topk_exceeding_experts_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", batch_size=1, seq_len=1, top_k=4,
                hidden_dim=8, num_blocks=1, experts_per_block={0: 2},
            )

    def test_moe_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", batch_size=1, seq_len=1, top_k=1,
                hidden_dim=8, num_blocks=2, experts_per_block={5: 4},
            )

    def test_hidden_not_divisible_by_heads_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", batch_size=1, seq_len=1, top_k=1,
                hidden_dim=10, num_blocks=1, num_heads=4,
            )

    def test_with_experts_resizes_every_block(self):
        config = moe_bert(32).with_experts(16)
        assert all(config.num_experts(i) == 16 for i in config.moe_block_indices)

    def test_scaled_overrides(self):
        config = moe_bert().scaled(batch_size=64, seq_len=512)
        assert config.batch_size == 64
        assert config.seq_len == 512
        assert config.hidden_dim == 768
