"""Golden pins and invariants for the request-level serving simulator.

The golden class pins exact latencies of a small fixed-seed run on both
topologies — any change to the cost model, the admission loops or the KV
streaming shows up as a bit difference here before it shows up as a bench
regression.  The invariant classes check the facts every topology must
satisfy on any trace: every admitted request completes, token counts are
conserved end to end, and reruns are bit-identical.
"""

import pytest

from repro.metrics import MetricsRegistry, build_run_report, serving_breakdown
from repro.serving import (
    ServingConfig,
    ServingSimulator,
    TraceSpec,
    build_serving_report,
    format_serving_summary,
    generate_trace,
    simulate_serving,
)
from repro.trace import TraceRecorder

from tests.conftest import small_cluster, small_config

GOLDEN_SPEC = TraceSpec.parse(
    "poisson;rate=200;requests=64;seed=5;prompt_mean=16;output_mean=8;"
    "skew=1.0"
)
GOLDEN_SERVING = dict(max_batch=8, prefill_batch=2)

# Exact percentiles (ms) and latency digests of the golden run, per
# topology.  Regenerate deliberately with
# ``python -m pytest tests/test_serving_sim.py -k golden --tb=long`` and
# eyeball the diff; these bits are the serving cost model's identity.
GOLDEN = {
    "unified": dict(
        ttft_p50_ms=0.19210363733334138,
        ttft_p99_ms=0.3169161496573599,
        tpot_p50_ms=0.19200754488888916,
        tpot_p99_ms=0.21836389952790178,
        makespan_s=0.275394444160275,
        digest="e74159e7e94cd38f695f3dc327dbf8bf"
               "9a9a7fe6876e0932f2b871fb447b164f",
    ),
    "disaggregated": dict(
        ttft_p50_ms=0.19210363733334138,
        ttft_p99_ms=0.34240101605009665,
        tpot_p50_ms=0.19200767644444375,
        tpot_p99_ms=0.3320977389312318,
        makespan_s=0.275394444160275,
        digest="9676a35d3168006a64c78fc4e6cdb280"
               "9a3111f707c5b55519440afe715091d8",
    ),
}


def run_small(topology, registry=None, recorder=None, requests=64, **knobs):
    spec = (
        GOLDEN_SPEC if requests == 64
        else TraceSpec.parse(
            f"poisson;rate=200;requests={requests};seed=5;prompt_mean=16;"
            "output_mean=8;skew=1.0"
        )
    )
    serving = ServingConfig(
        topology=topology, **{**GOLDEN_SERVING, **knobs}
    )
    return simulate_serving(
        small_config(), small_cluster(), generate_trace(spec), serving,
        metrics=registry, recorder=recorder,
    )


class TestGolden:
    @pytest.mark.parametrize("topology", ("unified", "disaggregated"))
    def test_latencies_pinned(self, topology):
        result = run_small(topology)
        summary = result.summary()
        golden = GOLDEN[topology]
        for key in ("ttft_p50_ms", "ttft_p99_ms",
                    "tpot_p50_ms", "tpot_p99_ms", "makespan_s"):
            assert summary[key] == pytest.approx(golden[key], rel=1e-12), key
        assert result.digest() == golden["digest"]
        assert summary["slo_attainment"] == 1.0

    def test_disaggregation_trades_tail_for_isolation_at_low_load(self):
        # At this tiny load the unified fleet wins (twice the prefill
        # capacity, no KV hop); the disaggregated win only appears under
        # pressure — that ordering is the bench suite's structural gate.
        assert (
            GOLDEN["unified"]["tpot_p99_ms"]
            < GOLDEN["disaggregated"]["tpot_p99_ms"]
        )


class TestInvariants:
    @pytest.mark.parametrize("topology", ("unified", "disaggregated"))
    def test_every_admitted_request_completes(self, topology):
        registry = MetricsRegistry()
        result = run_small(topology, registry, requests=200)
        assert (result.first_token_s >= result.trace.arrival_s).all()
        assert (result.complete_s >= result.first_token_s).all()
        assert registry.counter("serve.requests", kind="offered") == 200
        assert registry.counter("serve.requests", kind="prefilled") == 200
        assert registry.counter("serve.requests", kind="completed") == 200

    @pytest.mark.parametrize("topology", ("unified", "disaggregated"))
    def test_token_counts_conserved(self, topology):
        registry = MetricsRegistry()
        result = run_small(topology, registry, requests=200)
        trace = result.trace
        decode_tokens = int((trace.output_tokens - 1).sum())
        assert registry.counter(
            "serve.tokens", phase="prefill"
        ) == trace.total_prompt_tokens
        assert registry.counter(
            "serve.tokens", phase="decode"
        ) == decode_tokens
        # Every decode token is either pinned (stays local) or missed
        # (crosses the wire); unified workers never pin.
        assert result.pinned_tokens + result.missed_tokens == decode_tokens
        if topology == "unified":
            assert result.pinned_tokens == 0
        else:
            assert result.pinned_tokens > 0

    @pytest.mark.parametrize("topology", ("unified", "disaggregated"))
    def test_reruns_are_bit_identical(self, topology):
        assert run_small(topology).digest() == run_small(topology).digest()

    def test_kv_traffic_only_when_disaggregated(self):
        unified = MetricsRegistry()
        disagg = MetricsRegistry()
        run_small("unified", unified)
        result = run_small("disaggregated", disagg)
        assert unified.counter("serve.bytes", kind="kv") == 0
        kv = disagg.counter("serve.bytes", kind="kv")
        # Streamed KV: every prefilled token's cache crosses to a decoder.
        sim = ServingSimulator(
            small_config(), small_cluster(), result.trace,
            ServingConfig(topology="disaggregated", **GOLDEN_SERVING),
        )
        decode_needed = result.trace.output_tokens > 1
        expected = (
            result.trace.prompt_tokens[decode_needed].sum()
            * sim.kv_bytes_per_token
        )
        assert kv == pytest.approx(expected)
        assert result.nic_egress_bytes.shape == (2,)
        assert result.nic_egress_bytes.sum() > 0

    def test_span_budget_caps_trace_growth(self):
        recorder = TraceRecorder()
        run_small("disaggregated", recorder=recorder, span_budget=16)
        spans = list(recorder.spans)
        kinds = {span.kind for span in spans}
        assert kinds <= {"serve.prefill", "serve.decode", "serve.kv"}
        for kind in kinds:
            assert sum(s.kind == kind for s in spans) <= 16

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(topology="sharded")
        with pytest.raises(ValueError):
            ServingConfig(prefillers=0)
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(pin_fraction=1.5)
        with pytest.raises(ValueError):
            ServingConfig(decode_paradigm="quantum")
        with pytest.raises(ValueError):
            ServingConfig(ttft_slo_s=0.0)
        with pytest.raises(ValueError):
            ServingConfig(span_budget=-1)
        with pytest.raises(ValueError):
            # All machines prefilling leaves no decoder.
            ServingSimulator(
                small_config(), small_cluster(),
                generate_trace(GOLDEN_SPEC),
                ServingConfig(topology="disaggregated", prefillers=2),
            )
        with pytest.raises(ValueError):
            # No MoE blocks: nothing to serve.
            ServingSimulator(
                small_config(experts_per_block={}), small_cluster(),
                generate_trace(GOLDEN_SPEC),
            )


class TestReports:
    def test_serving_breakdown_sections(self):
        registry = MetricsRegistry()
        result = run_small("disaggregated", registry, requests=100)
        breakdown = serving_breakdown(registry)
        assert set(breakdown) == {
            "requests", "steps", "tokens", "bytes", "histograms"
        }
        assert breakdown["requests"]["offered"] == 100
        assert breakdown["requests"]["completed"] == 100
        assert breakdown["tokens"]["prefill"] == (
            result.trace.total_prompt_tokens
        )
        # One prefiller and one decoder: intra-pool paradigm traffic has
        # no peers ((n-1)/n = 0), so only the KV handoff hits the wire.
        assert set(breakdown["bytes"]) == {"kv"}
        unified = MetricsRegistry()
        run_small("unified", unified, requests=100)
        assert set(serving_breakdown(unified)["bytes"]) == {
            "decode", "prefill"
        }
        ttft = breakdown["histograms"]["ttft_s"]["all"]
        assert ttft["count"] == 100
        assert 0 < ttft["min"] <= ttft["mean"] <= ttft["max"]
        batch = breakdown["histograms"]["batch"]["phase=decode"]
        assert batch["max"] <= GOLDEN_SERVING["max_batch"]

    def test_serving_breakdown_empty_without_serving(self):
        assert serving_breakdown(MetricsRegistry()) == {}

    def test_run_report_embeds_serving_section(self):
        registry = MetricsRegistry()
        run_small("unified", registry)
        report = build_run_report([], registry, model="small")
        assert report["serving"]["requests"]["completed"] == 64

    def test_build_serving_report(self):
        registry = MetricsRegistry()
        results = [
            run_small("unified"),
            run_small("disaggregated", registry),
        ]
        report = build_serving_report(
            results, registry, model="small", machines=2
        )
        assert report["schema"] == "janus-repro/serve-report/v1"
        assert report["run"] == {"machines": 2, "model": "small"}
        assert set(report["topologies"]) == {"unified", "disaggregated"}
        for topology, entry in report["topologies"].items():
            assert entry["digest"] == GOLDEN[topology]["digest"]
        assert "serve.requests" in report["metrics"]["counters"]
        bare = build_serving_report(results)
        assert "metrics" not in bare

    def test_format_serving_summary(self):
        text = format_serving_summary(
            [run_small("unified"), run_small("disaggregated")],
            title="golden",
        )
        assert text.startswith("golden")
        assert "unified" in text and "disaggregated" in text
        assert "expert-centric" in text  # the paradigm-choice lines
