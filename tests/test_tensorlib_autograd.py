"""Autograd correctness tests, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.tensorlib import Tensor, no_grad
from repro.tensorlib.gradcheck import gradcheck

RNG = np.random.default_rng(7)


def make(shape, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)


class TestForward:
    def test_add_broadcasts(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        out = a + b
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data[0], [1, 2, 3])

    def test_matmul_shapes(self):
        a = make((4, 5))
        b = make((5, 6))
        assert (a @ b).shape == (4, 6)

    def test_scalar_ops(self):
        x = Tensor([2.0], requires_grad=True)
        y = 3 * x + 1
        assert y.item() == pytest.approx(7.0)

    def test_detach_stops_gradients(self):
        x = make((3,))
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = make((3,))
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = make((3,))
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_untracked_tensor_raises(self):
        x = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            x.sum().backward()


class TestBackward:
    def test_add_grad(self):
        x = make((4,))
        y = make((4,))
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))
        np.testing.assert_allclose(y.grad, np.ones(4))

    def test_broadcast_add_grad_reduces(self):
        x = make((2, 3))
        b = make((3,))
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_grad(self):
        x = Tensor([3.0], requires_grad=True)
        y = Tensor([5.0], requires_grad=True)
        (x * y).sum().backward()
        assert x.grad[0] == pytest.approx(5.0)
        assert y.grad[0] == pytest.approx(3.0)

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # dy/dx = 2x = 4
        y.sum().backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_matmul_gradcheck(self):
        a = make((3, 4), 0.5)
        b = make((4, 2), 0.5)
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_batched_matmul_gradcheck(self):
        a = make((2, 3, 4), 0.5)
        b = make((2, 4, 2), 0.5)
        gradcheck(lambda t: ((t[0] @ t[1]) ** 2).sum(), [a, b])

    def test_pow_gradcheck(self):
        x = Tensor(RNG.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        gradcheck(lambda t: (t[0] ** 3).sum(), [x])

    def test_div_gradcheck(self):
        x = make((4,), 1.0)
        y = Tensor(RNG.uniform(1.0, 2.0, size=(4,)), requires_grad=True)
        gradcheck(lambda t: (t[0] / t[1]).sum(), [x, y])

    def test_exp_log_gradcheck(self):
        x = Tensor(RNG.uniform(0.5, 1.5, size=(6,)), requires_grad=True)
        gradcheck(lambda t: (t[0].exp().log() * t[0]).sum(), [x])

    def test_relu_gradcheck(self):
        x = Tensor(RNG.uniform(0.1, 1.0, size=(6,)) * np.array([1, -1, 1, -1, 1, -1]),
                   requires_grad=True)
        gradcheck(lambda t: (t[0].relu() * 2).sum(), [x])

    def test_tanh_gradcheck(self):
        x = make((5,), 0.7)
        gradcheck(lambda t: t[0].tanh().sum(), [x])

    def test_gelu_gradcheck(self):
        x = make((5,), 0.7)
        gradcheck(lambda t: t[0].gelu().sum(), [x])

    def test_sum_axis_gradcheck(self):
        x = make((3, 4))
        gradcheck(lambda t: (t[0].sum(axis=1) ** 2).sum(), [x])

    def test_mean_gradcheck(self):
        x = make((3, 4))
        gradcheck(lambda t: (t[0].mean(axis=0) ** 2).sum(), [x])

    def test_max_gradcheck(self):
        # Distinct values avoid the subgradient tie case.
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]),
                   requires_grad=True)
        gradcheck(lambda t: t[0].max(axis=1).sum(), [x])

    def test_reshape_transpose_gradcheck(self):
        x = make((2, 6))
        gradcheck(
            lambda t: (t[0].reshape(3, 4).transpose(1, 0) ** 2).sum(), [x]
        )

    def test_getitem_gradcheck(self):
        x = make((5, 3))
        index = np.array([0, 2, 2, 4])
        gradcheck(lambda t: (t[0][index] ** 2).sum(), [x])

    def test_gather_scatter_roundtrip_grad(self):
        x = make((6, 3))
        index = np.array([1, 3, 3, 5])
        gathered = x.gather_rows(index)
        scattered = Tensor.scatter_rows(6, index, gathered)
        scattered.sum().backward()
        # Rows 1 and 5 used once, row 3 twice, rows 0/2/4 unused.
        expected = np.zeros((6, 3))
        expected[1] = 1
        expected[3] = 2
        expected[5] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_concat_gradcheck(self):
        a = make((2, 3))
        b = make((4, 3))
        gradcheck(
            lambda t: (Tensor.concat([t[0], t[1]], axis=0) ** 2).sum(), [a, b]
        )

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.sum().backward()
        assert x.grad[0] == pytest.approx(1.0)
