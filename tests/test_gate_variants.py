"""Tests for gate extensions: noisy top-k and capacity-factor dropping."""

import numpy as np
import pytest

from repro.models import MoELayer, TopKGate
from repro.tensorlib import Tensor

RNG = np.random.default_rng(5)


def tokens(n=40, hidden=8):
    return Tensor(RNG.standard_normal((n, hidden)))


class TestNoisyGate:
    def test_noise_changes_routing_sometimes(self):
        clean = TopKGate(8, 8, 2, rng=np.random.default_rng(1))
        noisy = TopKGate(8, 8, 2, rng=np.random.default_rng(1), noise_std=0.5)
        batch = tokens(200)
        clean_decision = clean(batch)
        noisy_decision = noisy(batch)
        assert not np.array_equal(
            clean_decision.expert_indices, noisy_decision.expert_indices
        )

    def test_noise_is_reproducible_per_gate_state(self):
        a = TopKGate(8, 4, 2, rng=np.random.default_rng(1), noise_std=0.3)
        b = TopKGate(8, 4, 2, rng=np.random.default_rng(1), noise_std=0.3)
        batch = tokens(50)
        np.testing.assert_array_equal(
            a(batch).expert_indices, b(batch).expert_indices
        )

    def test_zero_noise_matches_clean_gate(self):
        a = TopKGate(8, 4, 2, rng=np.random.default_rng(1), noise_std=0.0)
        b = TopKGate(8, 4, 2, rng=np.random.default_rng(1))
        batch = tokens(50)
        np.testing.assert_array_equal(
            a(batch).expert_indices, b(batch).expert_indices
        )

    def test_noise_does_not_affect_combine_weight_graph(self):
        gate = TopKGate(8, 4, 2, rng=np.random.default_rng(1), noise_std=0.5)
        decision = gate(tokens(20))
        decision.combine_weights.sum().backward()
        assert gate.proj.weight.grad is not None

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            TopKGate(8, 4, 2, noise_std=-0.1)


class TestCapacityFactor:
    def test_capacity_formula(self):
        gate = TopKGate(8, 4, 2, capacity_factor=1.0)
        # N=40 tokens, k=2 -> 80 slots over 4 experts = 20 each.
        assert gate.expert_capacity(40) == 20
        assert TopKGate(8, 4, 2).expert_capacity(40) is None

    def test_no_expert_exceeds_capacity(self):
        gate = TopKGate(8, 8, 2, rng=np.random.default_rng(1),
                        capacity_factor=1.0)
        decision = gate(tokens(100))
        capacity = gate.expert_capacity(100)
        assert decision.tokens_per_expert(8).max() <= capacity

    def test_tight_capacity_drops_slots(self):
        gate = TopKGate(8, 8, 2, rng=np.random.default_rng(1),
                        capacity_factor=0.5)
        decision = gate(tokens(200))
        assert decision.dropped_slots > 0
        capacity = gate.expert_capacity(200)
        assert decision.tokens_per_expert(8).max() <= capacity

    def test_generous_capacity_drops_nothing(self):
        gate = TopKGate(8, 8, 2, rng=np.random.default_rng(1),
                        capacity_factor=8.0)
        decision = gate(tokens(100))
        assert decision.dropped_slots == 0

    def test_earlier_tokens_win_slots(self):
        """Admission is by token order (GShard position-in-expert): the
        kept slots for each expert are a prefix of the slots that wanted
        it."""
        capped = TopKGate(8, 2, 1, rng=np.random.default_rng(1),
                          capacity_factor=0.5)
        uncapped = TopKGate(8, 2, 1, rng=np.random.default_rng(1))
        uncapped.load_state_dict(capped.state_dict())
        batch = tokens(40)
        kept = capped(batch).expert_indices.reshape(-1)
        wanted = uncapped(batch).expert_indices.reshape(-1)
        capacity = capped.expert_capacity(40)
        for expert in range(2):
            want_positions = np.flatnonzero(wanted == expert)
            kept_positions = np.flatnonzero(kept == expert)
            np.testing.assert_array_equal(
                kept_positions, want_positions[:capacity]
            )

    def test_surviving_weights_renormalized(self):
        gate = TopKGate(8, 8, 2, rng=np.random.default_rng(1),
                        capacity_factor=0.5)
        decision = gate(tokens(200))
        weights = decision.combine_weights.numpy()
        mask = decision.expert_indices >= 0
        # Dropped slots carry zero weight.
        assert np.allclose(weights[~mask], 0.0)
        # Rows with at least one survivor sum to 1.
        alive_rows = mask.any(axis=1)
        np.testing.assert_allclose(
            weights[alive_rows].sum(axis=1), 1.0, atol=1e-9
        )

    def test_moe_layer_works_with_dropping(self):
        layer = MoELayer(8, 4, 2, rng=np.random.default_rng(1))
        layer.gate.capacity_factor = 0.6
        x = Tensor(RNG.standard_normal((2, 30, 8)), requires_grad=True)
        out = layer(x)
        assert out.shape == (2, 30, 8)
        out.sum().backward()
        assert x.grad is not None
        assert layer.last_decision.dropped_slots > 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TopKGate(8, 4, 2, capacity_factor=0)
