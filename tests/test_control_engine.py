"""Integration tests of the control plane against the timed engines.

The headline property (hypothesis-driven): with drift off and faults off,
attaching a controller is *bit-identical* to not attaching one — same
simulated seconds, same event counts, same NIC byte totals.  The rest
covers the drift trajectory's determinism, replica-sync accounting, the
``recover_after_clean`` auto-wrap, the adaptive switch end-to-end, and the
CLI flags.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.control import ControlConfig, Controller, ControlPolicy
from repro.core import JanusFeatures, build_workload, engine_for
from repro.faults import DegradationPolicy
from repro.metrics import MetricsRegistry
from repro.workloads import DriftSpec, apply_drift


def _run(mode, *, experts=16, iterations=2, controller=None, **kwargs):
    config = moe_gpt(experts)
    cluster = Cluster(2)
    engine = engine_for(
        mode, config, cluster, controller=controller, check_memory=False,
        **kwargs,
    )
    return engine, engine.run(iterations)


def _fingerprint(results):
    return [
        (
            round(result.seconds, 15),
            result.sim_events,
            tuple(result.nic_egress_bytes),
            tuple(sorted(result.strategies.items())),
        )
        for result in results
    ]


class TestBitIdentity:
    @settings(max_examples=4, deadline=None)
    @given(
        mode=st.sampled_from(["unified", "data-centric", "microbatch-ec"]),
        iterations=st.integers(min_value=1, max_value=2),
    )
    def test_idle_controller_is_bit_identical(self, mode, iterations):
        """Drift off + faults off => the controller must not perturb the
        simulation in any observable way."""
        _, bare = _run(mode, iterations=iterations)
        controller = Controller(policy=ControlPolicy())
        _, controlled = _run(
            mode, iterations=iterations, controller=controller
        )
        assert _fingerprint(bare) == _fingerprint(controlled)
        assert controller.switch_count == 0
        assert all(decision.empty for decision in controller.decisions)

    def test_static_drift_without_skew_still_redraws_routing(self):
        """A zero-skew drift spec keeps popularity uniform but re-draws the
        multinomial routing, so it is *not* expected to be bit-identical —
        only deterministic."""
        drift = DriftSpec(kind="static", skew=0.0, seed=3)
        _, first = _run("unified", controller=Controller(drift=drift))
        _, second = _run("unified", controller=Controller(drift=drift))
        assert _fingerprint(first) == _fingerprint(second)


class TestDriftTrajectory:
    def test_apply_drift_is_call_order_independent(self):
        config = moe_gpt(16)
        cluster = Cluster(2)
        spec = DriftSpec(kind="rotate", skew=1.5, period=1, seed=4)

        stepped = build_workload(config, cluster)
        for iteration in range(4):
            apply_drift(stepped, spec, iteration)

        jumped = build_workload(config, cluster)
        apply_drift(jumped, spec, 3)

        for mine, theirs in zip(stepped.moe_blocks(), jumped.moe_blocks()):
            np.testing.assert_array_equal(mine.routing, theirs.routing)

    def test_drift_preserves_token_totals(self):
        config = moe_gpt(16)
        workload = build_workload(config, Cluster(2))
        before = [block.routing.sum(axis=1).copy()
                  for block in workload.moe_blocks()]
        apply_drift(workload, DriftSpec(kind="flip", skew=1.6, period=1), 1)
        for block, totals in zip(workload.moe_blocks(), before):
            # Every worker still routes its full token budget.
            np.testing.assert_array_equal(block.routing.sum(axis=1), totals)

    def test_skew_moves_machine_imbalance(self):
        config = moe_gpt(16)
        workload = build_workload(config, Cluster(2))
        balanced = [block.routing.copy() for block in workload.moe_blocks()]
        apply_drift(workload, DriftSpec(kind="static", skew=1.6, seed=5), 0)
        changed = any(
            not np.array_equal(block.routing, keep)
            for block, keep in zip(workload.moe_blocks(), balanced)
        )
        assert changed


class TestReplicaSync:
    def test_replica_sync_pays_bytes_and_is_metered(self):
        config = moe_gpt(16)
        cluster = Cluster(2)
        registry = MetricsRegistry()
        engine = engine_for(
            "data-centric", config, cluster, metrics=registry,
            check_memory=False,
        )
        # Expert 0 lives on machine 0; replicate it onto machine 1.
        engine.replicas = {10: {0: (1,)}}
        result = engine.run_iteration()
        assert result.seconds > 0
        synced = registry.series("control.replica_syncs")
        assert sum(synced.values()) == 1
        assert dict(next(iter(synced)))["machine"] == 1
        # The background refresh occupies a traced comm lane.
        assert result.trace.busy_union("comm.replica") > 0

    def test_replica_on_home_machine_is_skipped(self):
        engine = engine_for(
            "data-centric", moe_gpt(16), Cluster(2),
            metrics=(registry := MetricsRegistry()), check_memory=False,
        )
        engine.replicas = {10: {0: (0,)}}       # machine 0 already owns it
        engine.run_iteration()
        assert registry.series("control.replica_syncs") == {}


class TestAutoWrap:
    def test_recover_after_clean_wraps_a_controller(self):
        engine = engine_for(
            "unified", moe_gpt(16), Cluster(2),
            degradation=DegradationPolicy(recover_after_clean=2),
            check_memory=False,
        )
        assert engine.controller is not None
        policy = engine.controller.policy
        assert policy.degradation.recover_after_clean == 2
        # The wrap is fault-arm only: no load/replica adaptation sneaks in.
        assert policy.config.adapt_load is False
        assert policy.config.adapt_replicas is False

    def test_legacy_degradation_stays_unwrapped(self):
        engine = engine_for(
            "unified", moe_gpt(16), Cluster(2),
            degradation=DegradationPolicy(), check_memory=False,
        )
        assert engine.controller is None


class TestAdaptiveEndToEnd:
    def test_load_switch_fires_under_flip_drift(self):
        """On the crossover shape the controller must leave the static
        schedule for data-centric when the skewed phase arrives (the
        BENCH_control structural win, in miniature)."""
        config = moe_gpt(32).scaled(batch_size=64)
        cluster = Cluster(2)
        controller = Controller(
            policy=ControlPolicy(
                config=ControlConfig(recover_after_clean=1)
            ),
            drift=DriftSpec(kind="flip", skew=1.5, period=2, seed=7),
        )
        engine = engine_for(
            "auto", config, cluster, threshold=1.5, controller=controller,
            features=JanusFeatures(micro_batches=4, grad_allreduce="overlap"),
            check_memory=False,
        )
        results = engine.run(4)
        causes = [
            cause
            for decision in controller.decisions
            for cause in decision.causes.values()
        ]
        assert "load" in causes
        # Iterations 2-3 (the skewed phase) ran data-centric.
        assert results[2].strategies[10] == "data-centric"
        assert results[0].strategies[10] == "microbatch-ec"


class TestCli:
    def test_simulate_with_drift_and_control(self, capsys):
        rc = main([
            "simulate", "--machines", "2", "--experts", "16",
            "--paradigm", "unified", "--iterations", "2",
            "--drift", "flip;skew=1.5;period=1;seed=3",
            "--control", "adaptive;replicas=off",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "over 2 iterations" in out
        assert "control:" in out

    def test_simulate_rejects_bad_specs(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--drift", "spiral"])
        with pytest.raises(SystemExit):
            main(["simulate", "--control", "bogus=1"])

    def test_inference_excludes_iterations(self, capsys):
        rc = main([
            "simulate", "--machines", "2", "--experts", "16",
            "--inference", "--iterations", "3",
        ])
        assert rc == 2
