"""Tests for the explicit task-graph scheduler (repro.core.taskgraph).

Structural validator, lane executor, DOT/JSON export, the engine's
``build_graph`` entry point, and the new schedules (micro-batched
expert-centric lanes, serial/overlapped gradient all-reduce) that only the
task graph can express.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    GraphValidationError,
    JanusFeatures,
    Lane,
    ResourceClaim,
    Task,
    TaskGraph,
    TaskKind,
    engine_for,
    run_lane,
    strategy_engine,
    strategy_names,
)
from repro.simkit import Environment

from tests.conftest import small_cluster, small_config


def _task(name, **kw):
    kw.setdefault("kind", TaskKind.GATE)
    return Task(name, **kw)


class TestTaskBasics:
    def test_kind_coerced_from_string(self):
        assert _task("t", kind="expert-compute").kind is TaskKind.EXPERT_COMPUTE

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            _task("t", priority=0)

    def test_bad_claim_mode_rejected(self):
        with pytest.raises(ValueError):
            ResourceClaim("gpu.0.stream", mode="hold")

    def test_bad_lane_role_rejected(self):
        with pytest.raises(ValueError):
            Lane("l", role="driver")

    def test_describe_is_json_ready(self):
        task = _task(
            "t", kind="a2a-chunk", waits=("a",), signals=("b",),
            claims=(ResourceClaim("nic.0"),), worker=1, block=2,
        )
        desc = task.describe()
        assert desc["kind"] == "a2a-chunk"
        assert desc["claims"] == [{"resource": "nic.0", "mode": "scoped"}]
        assert desc["waits"] == ["a"] and desc["signals"] == ["b"]


class TestValidator:
    def _graph(self):
        return TaskGraph()

    def test_valid_chain_returns_topo_order(self):
        graph = self._graph()
        graph.lane("a").add(_task("first", signals=("x",)))
        graph.lane("b").add(_task("second", waits=("x",), signals=("y",)))
        graph.declare_outputs("y")
        assert graph.validate() == ["first", "second"]

    def test_duplicate_task_names_rejected(self):
        graph = self._graph()
        graph.lane("a").add(_task("same"), _task("same"))
        with pytest.raises(GraphValidationError, match="duplicate"):
            graph.validate()

    def test_multiply_signaled_label_rejected(self):
        graph = self._graph()
        graph.lane("a").add(
            _task("one", signals=("x",)), _task("two", signals=("x",))
        )
        graph.lane("b").add(_task("sink", waits=("x",)))
        with pytest.raises(GraphValidationError, match="signaled by both"):
            graph.validate()

    def test_orphan_wait_rejected_unless_declared_input(self):
        graph = self._graph()
        graph.lane("a").add(_task("sink", waits=("ghost",)))
        with pytest.raises(GraphValidationError, match="never signaled"):
            graph.validate()
        graph.declare_inputs("ghost")
        graph.validate()

    def test_dangling_signal_rejected_unless_declared_output(self):
        graph = self._graph()
        graph.lane("a").add(_task("src", signals=("loose",)))
        with pytest.raises(GraphValidationError, match="never waited"):
            graph.validate()
        graph.declare_outputs("loose")
        graph.validate()

    def test_cross_lane_cycle_rejected(self):
        graph = self._graph()
        graph.lane("a").add(
            _task("a1", waits=("from-b",)), _task("a2", signals=("from-a",))
        )
        graph.lane("b").add(
            _task("b1", waits=("from-a",)), _task("b2", signals=("from-b",))
        )
        with pytest.raises(GraphValidationError, match="cycle"):
            graph.validate()

    def test_release_without_acquire_rejected(self):
        graph = self._graph()
        graph.lane("a").add(
            _task("t", claims=(ResourceClaim("link", mode="release"),))
        )
        with pytest.raises(GraphValidationError, match="without a prior"):
            graph.validate()

    def test_leaked_acquire_rejected(self):
        graph = self._graph()
        graph.lane("a").add(
            _task("t", claims=(ResourceClaim("link", mode="acquire"),))
        )
        with pytest.raises(GraphValidationError, match="never releases"):
            graph.validate()

    def test_balanced_acquire_release_ok(self):
        graph = self._graph()
        graph.lane("a").add(
            _task("open", claims=(ResourceClaim("link", mode="acquire"),)),
            _task("close", claims=(ResourceClaim("link", mode="release"),)),
        )
        graph.validate()

    def test_unbound_label_without_env_raises(self):
        graph = self._graph()
        with pytest.raises(GraphValidationError, match="unbound"):
            graph.event("nowhere")


class TestExecutor:
    def test_lanes_synchronize_through_labels(self):
        env = Environment()
        graph = TaskGraph(env)
        order = []

        def timed(duration, tag):
            def body():
                order.append((tag, env.now))
                yield env.timeout(duration)
            return body

        producer = graph.lane("producer")
        producer.add(Task("produce", TaskKind.DENSE_COMPUTE,
                          body=timed(2.0, "produce"), signals=("ready",)))
        consumer = graph.lane("consumer")
        consumer.add(
            Task("consume", TaskKind.EXPERT_COMPUTE, waits=("ready",),
                 body=timed(1.0, "consume"), signals=("done",)),
            Task("finish", TaskKind.GATE, waits=("done", "ready")),
        )
        graph.declare_outputs("done")
        for lane in graph.lanes:
            env.process(run_lane(graph, lane), name=lane.name)
        env.run()
        assert order == [("produce", 0.0), ("consume", 2.0)]
        assert env.now == 3.0

    def test_observer_books_only_traced_bodies(self):
        env = Environment()
        graph = TaskGraph(env)
        seen = []

        def body():
            yield env.timeout(1.5)

        lane = graph.lane("w")
        lane.add(
            Task("worked", TaskKind.EXPERT_COMPUTE, body=body),
            Task("silent", TaskKind.GATE, body=lambda: None, traced=False),
            Task("bodyless", TaskKind.GATE),
        )
        env.process(run_lane(
            graph, lane, observer=lambda t, s, e: seen.append((t.name, s, e))
        ))
        env.run()
        assert seen == [("worked", 0.0, 1.5)]


class TestExport:
    def _graph(self):
        graph = TaskGraph()
        graph.lane("lane-a", role="worker", worker=0).add(
            _task('quo"ted', kind="dense-compute", signals=("x",))
        )
        graph.lane("lane-b", role="collector").add(_task("sink", waits=("x",)))
        return graph

    def test_to_json_structure(self):
        doc = self._graph().to_json()
        assert doc["schema"] == "janus-repro/taskgraph/v1"
        assert doc["num_tasks"] == 2
        assert [lane["role"] for lane in doc["lanes"]] == [
            "worker", "collector"
        ]
        assert ['quo"ted', "sink"] in doc["edges"]

    def test_to_dot_escapes_and_clusters(self):
        dot = self._graph().to_dot()
        assert "subgraph cluster_0" in dot
        assert 'quo\\"ted' in dot  # quotes escaped for graphviz
        assert "t0 -> t1;" in dot


def _engine(mode, **kwargs):
    return engine_for(
        mode, small_config(), small_cluster(),
        rng=np.random.default_rng(0), imbalance=0.3, **kwargs,
    )


class TestEngineGraphs:
    @pytest.mark.parametrize("mode", sorted(strategy_names()) + ["unified"])
    def test_builtin_paradigm_graphs_validate(self, mode):
        graph = _engine(mode).build_graph()
        graph.validate()
        kinds = {task.kind for task in graph.tasks()}
        assert TaskKind.DENSE_COMPUTE in kinds

    def test_forward_only_graph_has_no_collectors(self):
        graph = _engine("expert-centric").build_graph(forward_only=True)
        graph.validate()
        assert not [l for l in graph.lanes if l.role == "collector"]

    def test_microbatch_graph_has_lane_per_micro_batch(self):
        features = JanusFeatures(micro_batches=3)
        engine = _engine("microbatch-ec", features=features)
        graph = engine.build_graph()
        graph.validate()
        workers = [l for l in graph.lanes if l.role == "worker"]
        assert len(workers) == 3 * engine.workload.world_size

    def test_mixed_micro_and_rendezvous_graph_validates(self):
        """A micro-batched engine with a non-micro-capable block builds the
        full-batch rendezvous (gather on lane 0, release to siblings); the
        graph must still be a clean DAG with no orphan signals."""
        engine = _engine(
            "microbatch-ec", features=JanusFeatures(micro_batches=3)
        )
        engine.block_strategies[max(engine.block_strategies)] = "data-centric"
        graph = engine.build_graph()
        graph.validate()
        rendezvous = [t for t in graph.tasks() if ".gather" in t.name]
        assert rendezvous, "expected a full-batch rendezvous gather task"

    def test_allreduce_graphs_validate(self):
        for mode in ("serial", "overlap"):
            features = JanusFeatures(grad_allreduce=mode)
            graph = _engine("expert-centric", features=features).build_graph()
            graph.validate()
            kinds = [t.kind for t in graph.tasks()]
            assert TaskKind.GRAD_ALLREDUCE in kinds


class TestSchedulerGuards:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            _engine("expert-centric", scheduler="bogus")

    def test_legacy_scheduler_rejects_grad_allreduce(self):
        engine = _engine(
            "expert-centric", scheduler="legacy",
            features=JanusFeatures(grad_allreduce="overlap"),
        )
        with pytest.raises(ValueError, match="taskgraph"):
            engine.run_iteration()

    def test_legacy_scheduler_rejects_micro_batching(self):
        engine = strategy_engine(
            "microbatch-ec", small_config(), small_cluster(),
            rng=np.random.default_rng(0), scheduler="legacy",
            features=JanusFeatures(micro_batches=2),
        )
        with pytest.raises(ValueError, match="taskgraph"):
            engine.run_iteration()

    def test_feature_validation(self):
        with pytest.raises(ValueError):
            JanusFeatures(micro_batches=0)
        with pytest.raises(ValueError):
            JanusFeatures(grad_allreduce="sometimes")

    def test_micro_batches_inert_for_non_micro_strategies(self):
        features = JanusFeatures(micro_batches=4)
        base = _engine("expert-centric").run_iteration()
        micro = _engine("expert-centric", features=dataclasses.replace(
            features, micro_batches=4
        )).run_iteration()
        assert micro.seconds == base.seconds
