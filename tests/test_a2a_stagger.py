"""Intra-All-to-All chunk scheduling over the arbitrated NIC fabric.

Covers the lane-construction pass (:func:`apply_a2a_stagger` priorities
and counts, micro-round parsing), the claim export in ``describe()``, the
executor's priority-arbitration path on a hand-built graph, and the
engine-level semantics: ``a2a_stagger="off"`` is the untouched legacy
fluid model (bit-identical, no fabric claims), while ``wave`` and
``chain`` serialize chunk grants through one
:class:`~repro.simkit.PriorityResource` slot without moving a traffic
byte.
"""

import numpy as np
import pytest

from repro.core import (
    NIC_FABRIC_RESOURCE,
    JanusFeatures,
    ResourceClaim,
    Task,
    TaskGraph,
    TaskKind,
    apply_a2a_stagger,
    run_lane,
    strategy_engine,
)
from repro.core.taskgraph import chunk_round
from repro.simkit import Environment, PriorityResource

from tests.conftest import small_cluster, small_config


def _engine(mode="microbatch-ec", features=None, seed=0):
    return strategy_engine(
        mode,
        small_config(),
        small_cluster(),
        rng=np.random.default_rng(seed),
        imbalance=0.3,
        features=features,
        check_memory=False,
    )


def _chunk_tasks(graph):
    return [t for t in graph.tasks() if t.kind is TaskKind.A2A_CHUNK]


def _fabric_claims(task):
    return [c for c in task.claims if c.resource == NIC_FABRIC_RESOURCE]


class TestChunkRound:
    def test_micro_suffix_parses(self):
        task = Task("t", kind="a2a-chunk", detail="fwd:mb3")
        assert chunk_round(task) == 3

    def test_no_suffix_is_round_zero(self):
        assert chunk_round(Task("t", kind="a2a-chunk")) == 0
        assert chunk_round(
            Task("t", kind="a2a-chunk", detail="dispatch")
        ) == 0
        # The round marker must terminate the detail string.
        assert chunk_round(
            Task("t", kind="a2a-chunk", detail="mb2:combine")
        ) == 0


class TestApplyStagger:
    def test_wave_claims_every_chunk_at_equal_priority(self):
        features = JanusFeatures(micro_batches=4)
        graph = _engine(features=features).build_graph()
        chunks = _chunk_tasks(graph)
        assert chunks, "schedule under test must emit A2A chunks"
        annotated = apply_a2a_stagger(graph, "wave")
        assert annotated == len(chunks)
        for task in chunks:
            (claim,) = _fabric_claims(task)
            assert claim.priority == 0.0
            assert claim.mode == "scoped"

    def test_chain_priorities_follow_the_micro_round(self):
        features = JanusFeatures(micro_batches=4)
        graph = _engine(features=features).build_graph()
        apply_a2a_stagger(graph, "chain")
        priorities = set()
        for task in _chunk_tasks(graph):
            (claim,) = _fabric_claims(task)
            assert claim.priority == float(chunk_round(task))
            priorities.add(claim.priority)
        assert priorities == {0.0, 1.0, 2.0, 3.0}

    def test_non_chunk_tasks_are_untouched(self):
        graph = _engine(features=JanusFeatures(micro_batches=4)).build_graph()
        apply_a2a_stagger(graph, "wave")
        for task in graph.tasks():
            if task.kind is not TaskKind.A2A_CHUNK:
                assert not _fabric_claims(task)

    def test_unknown_policy_is_rejected(self):
        graph = _engine().build_graph()
        with pytest.raises(ValueError, match="stagger policy"):
            apply_a2a_stagger(graph, "random")

    def test_default_build_carries_no_fabric_claims(self):
        """a2a_stagger='off' (the default) must leave graphs exactly as
        before the pass existed: no claims, no priorities in the export."""
        graph = _engine(features=JanusFeatures(micro_batches=4)).build_graph()
        for task in graph.tasks():
            assert not _fabric_claims(task)
            for claim in task.describe()["claims"]:
                assert "priority" not in claim

    def test_staggered_build_exports_the_priorities(self):
        features = JanusFeatures(micro_batches=4, a2a_stagger="chain")
        graph = _engine(features=features).build_graph()
        exported = [
            claim
            for task in _chunk_tasks(graph)
            for claim in task.describe()["claims"]
            if claim["resource"] == NIC_FABRIC_RESOURCE
        ]
        assert exported
        assert all("priority" in claim for claim in exported)


class TestPrioritizedClaim:
    def test_priority_is_optional_and_descriptive_by_default(self):
        claim = ResourceClaim("nic.0")
        assert claim.priority is None

    def test_describe_emits_priority_only_when_set(self):
        bare = Task("t", kind="a2a-chunk", claims=(ResourceClaim("r"),))
        assert bare.describe()["claims"] == [
            {"resource": "r", "mode": "scoped"}
        ]
        ranked = Task(
            "u", kind="a2a-chunk",
            claims=(ResourceClaim("r", priority=2.0),),
        )
        assert ranked.describe()["claims"] == [
            {"resource": "r", "mode": "scoped", "priority": 2.0}
        ]


class TestExecutorArbitration:
    def _race(self, priorities, arbitrated=True):
        """Three equal-length transfers released together; return their
        completion order and times under the given claim priorities."""
        env = Environment()
        graph = TaskGraph(env)
        done = []
        for index, priority in enumerate(priorities):
            name = f"xfer{index}"

            def body(tag=name):
                yield env.timeout(1.0)
                done.append((tag, env.now))

            graph.lane(f"lane{index}").add(
                Task(
                    name,
                    kind="a2a-chunk",
                    body=body,
                    claims=(
                        ResourceClaim(
                            NIC_FABRIC_RESOURCE, priority=priority
                        ),
                    ),
                )
            )
        arbiters = (
            {NIC_FABRIC_RESOURCE: PriorityResource(env)}
            if arbitrated
            else None
        )
        for lane in graph.lanes:
            env.process(run_lane(graph, lane, arbiters=arbiters))
        env.run()
        return done, env.now

    def test_claims_serialize_the_fabric(self):
        done, now = self._race([0.0, 0.0, 0.0])
        assert now == 3.0
        assert [t for _, t in done] == [1.0, 2.0, 3.0]

    def test_lower_priority_value_wins_the_queue(self):
        """The first grant goes by arrival (all request at t=0 in lane
        order), but the queued requests drain lowest priority first."""
        done, _ = self._race([2.0, 1.0, 0.0])
        assert [tag for tag, _ in done] == ["xfer0", "xfer2", "xfer1"]

    def test_without_arbiters_claims_are_descriptive(self):
        done, now = self._race([2.0, 1.0, 0.0], arbitrated=False)
        assert now == 1.0
        assert [t for _, t in done] == [1.0, 1.0, 1.0]


class TestEngineSemantics:
    def _seconds(self, stagger, mode="microbatch-ec", micro=4, seed=0):
        features = JanusFeatures(micro_batches=micro, a2a_stagger=stagger)
        result = _engine(mode, features=features, seed=seed).run_iteration()
        return result

    def test_off_is_bit_identical_to_default(self):
        bare = _engine(features=JanusFeatures(micro_batches=4))
        explicit = _engine(
            features=JanusFeatures(micro_batches=4, a2a_stagger="off")
        )
        a, b = bare.run_iteration(), explicit.run_iteration()
        assert (a.seconds, a.sim_events) == (b.seconds, b.sim_events)
        assert tuple(a.nic_egress_bytes) == tuple(b.nic_egress_bytes)

    def test_arbitration_changes_time_not_traffic(self):
        off = self._seconds("off")
        for policy in ("wave", "chain"):
            run = self._seconds(policy)
            assert run.seconds != off.seconds
            assert [round(b) for b in run.nic_egress_bytes] == [
                round(b) for b in off.nic_egress_bytes
            ]

    def test_bad_stagger_value_rejected(self):
        with pytest.raises(ValueError, match="a2a_stagger"):
            JanusFeatures(a2a_stagger="ripple")
