"""Advanced runtime scenarios: capacity gating, mixed paradigms, edge shapes."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.runtime import (
    DataCentricMoE,
    DistributedMoETransformer,
    ExpertCentricMoE,
    RankLayout,
)
from repro.tensorlib import Tensor

HIDDEN = 16


def make_pair(layout, num_experts=8, top_k=2, capacity_factor=None):
    ec = ExpertCentricMoE(
        HIDDEN, num_experts, top_k, layout, rng=np.random.default_rng(1)
    )
    dc = DataCentricMoE(
        HIDDEN, num_experts, top_k, layout, rng=np.random.default_rng(2)
    )
    dc.import_state(ec.export_state())
    if capacity_factor is not None:
        ec.gate.capacity_factor = capacity_factor
        dc.gate.capacity_factor = capacity_factor
    return ec, dc


def worker_tokens(layout, count=32, seed=9):
    rng = np.random.default_rng(seed)
    return [
        Tensor(rng.standard_normal((count, HIDDEN)))
        for _ in range(layout.world_size)
    ]


def run_loss(executor, tokens):
    outputs = executor.run(tokens)
    loss = None
    for out in outputs:
        term = (out * out).sum()
        loss = term if loss is None else loss + term
    loss.backward()
    executor.finish_backward()
    return outputs


class TestCapacityGatedEquivalence:
    def test_outputs_match_under_token_dropping(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout, capacity_factor=0.5)
        ec_out = run_loss(ec, worker_tokens(layout, count=64))
        dc_out = run_loss(dc, worker_tokens(layout, count=64))
        # Dropping actually happened.
        assert any(
            decision.dropped_slots > 0 for decision in ec.last_decisions
        )
        for a, b in zip(ec_out, dc_out):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-10)

    def test_gradients_match_under_token_dropping(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout, capacity_factor=0.5)
        run_loss(ec, worker_tokens(layout, count=64))
        run_loss(dc, worker_tokens(layout, count=64))
        for expert_a, expert_b in zip(ec.experts, dc.experts):
            for pa, pb in zip(expert_a.parameters(), expert_b.parameters()):
                if pa.grad is None:
                    assert pb.grad is None
                else:
                    np.testing.assert_allclose(pa.grad, pb.grad, atol=1e-9)

    def test_dropping_reduces_ec_dispatch_traffic(self):
        layout = RankLayout(2, 2)
        full_ec, _ = make_pair(layout)
        capped_ec, _ = make_pair(layout, capacity_factor=0.5)
        run_loss(full_ec, worker_tokens(layout, count=64))
        run_loss(capped_ec, worker_tokens(layout, count=64))
        assert (
            capped_ec.comm_log.total_bytes(["dispatch"])
            < full_ec.comm_log.total_bytes(["dispatch"])
        )


class TestSingleMachineEdge:
    def test_dc_has_zero_cross_machine_traffic(self):
        layout = RankLayout(1, 4)
        ec, dc = make_pair(layout)
        run_loss(dc, worker_tokens(layout))
        assert dc.comm_log.cross_machine_bytes() == 0
        assert dc.comm_log.total_bytes() > 0  # NVLink pulls happened

    def test_single_worker_is_fully_local(self):
        layout = RankLayout(1, 1)
        ec, dc = make_pair(layout, num_experts=4)
        ec_out = run_loss(ec, worker_tokens(layout))
        dc_out = run_loss(dc, worker_tokens(layout))
        assert ec.comm_log.total_bytes() == 0
        assert dc.comm_log.total_bytes() == 0
        np.testing.assert_allclose(
            ec_out[0].numpy(), dc_out[0].numpy(), atol=1e-10
        )


class TestMixedParadigmModel:
    def mixed_config(self):
        return ModelConfig(
            name="mixed", batch_size=2, seq_len=6, top_k=2, hidden_dim=16,
            num_blocks=4, experts_per_block={1: 4, 3: 8}, num_heads=4,
            vocab_size=40, causal=True,
        )

    def test_mixed_paradigms_match_pure_expert_centric(self):
        from repro.models import MoETransformer

        config = self.mixed_config()
        layout = RankLayout(2, 2)
        reference = MoETransformer(config, rng=np.random.default_rng(7))

        mixed = DistributedMoETransformer(
            config, layout,
            paradigm_for_block={1: "data-centric", 3: "expert-centric"},
            rng=np.random.default_rng(1),
        )
        pure = DistributedMoETransformer(
            config, layout,
            paradigm_for_block={1: "expert-centric", 3: "expert-centric"},
            rng=np.random.default_rng(2),
        )
        mixed.load_from_reference(reference)
        pure.load_from_reference(reference)

        rng = np.random.default_rng(3)
        batches = [rng.integers(0, 40, size=(2, 6)) for _ in range(4)]
        targets = [rng.integers(0, 40, size=(2, 6)) for _ in range(4)]

        loss_mixed = mixed.loss(batches, targets)
        loss_mixed.backward()
        mixed.finish_backward()
        loss_pure = pure.loss(batches, targets)
        loss_pure.backward()
        pure.finish_backward()

        assert loss_mixed.item() == pytest.approx(loss_pure.item(), abs=1e-10)
        for pa, pb in zip(mixed.parameters(), pure.parameters()):
            if pa.grad is not None:
                np.testing.assert_allclose(pa.grad, pb.grad, atol=1e-8)

    def test_mixed_traffic_is_between_pure_modes(self):
        config = self.mixed_config().scaled(batch_size=8, seq_len=16)
        layout = RankLayout(2, 2)
        logs = {}
        for name, mapping in (
            ("ec", {1: "expert-centric", 3: "expert-centric"}),
            ("dc", {1: "data-centric", 3: "data-centric"}),
            ("mixed", {1: "data-centric", 3: "expert-centric"}),
        ):
            model = DistributedMoETransformer(
                config, layout, paradigm_for_block=mapping,
                rng=np.random.default_rng(1),
            )
            rng = np.random.default_rng(3)
            batches = [rng.integers(0, 40, size=(8, 16)) for _ in range(4)]
            targets = [rng.integers(0, 40, size=(8, 16)) for _ in range(4)]
            model.loss(batches, targets).backward()
            model.finish_backward()
            logs[name] = model.comm_log.cross_machine_bytes()
        low, high = sorted((logs["ec"], logs["dc"]))
        assert low <= logs["mixed"] <= high


class TestEngineStragglerAndJitter:
    def make_engine(self, **kwargs):
        from repro.cluster import Cluster, MachineSpec
        from repro.core import JanusEngine, Paradigm, build_workload

        config = ModelConfig(
            name="s", batch_size=128, seq_len=64, top_k=2, hidden_dim=64,
            num_blocks=3, experts_per_block={1: 4}, num_heads=4,
        )
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(config, cluster)
        return JanusEngine(
            cluster, workload,
            {1: kwargs.pop("paradigm", Paradigm.EXPERT_CENTRIC)},
            **kwargs,
        )

    def test_straggler_slows_iteration(self):
        nominal = self.make_engine().run_iteration().seconds
        slowed = self.make_engine(
            machine_speed={0: 0.5}
        ).run_iteration().seconds
        assert slowed > nominal * 1.15

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            self.make_engine(machine_speed={5: 0.5})
        with pytest.raises(ValueError):
            self.make_engine(machine_speed={0: 0})

    def test_jitter_is_deterministic_per_seed(self):
        a = self.make_engine(compute_jitter=0.3, jitter_seed=1)
        b = self.make_engine(compute_jitter=0.3, jitter_seed=1)
        assert a.run_iteration().seconds == b.run_iteration().seconds

    def test_jitter_seed_changes_outcome(self):
        a = self.make_engine(compute_jitter=0.3, jitter_seed=1)
        b = self.make_engine(compute_jitter=0.3, jitter_seed=2)
        assert a.run_iteration().seconds != b.run_iteration().seconds

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            self.make_engine(compute_jitter=-0.1)
