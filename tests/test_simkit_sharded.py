"""Conservative-time-window sharded driver tests.

The shard factories live at module level so the multi-process paths can
pickle them under any multiprocessing start method.
"""

import math

import pytest

from repro.cluster import Cluster
from repro.netsim import Fabric
from repro.netsim.collectives import all_to_all, uniform_matrix
from repro.simkit import Environment, ShardResult, run_sharded
from repro.simkit.sharded import _drain_to


def _ticker(env, period, count, log):
    for tick in range(count):
        yield env.timeout(period)
        log.append((env.now, tick))


def timeout_shard(index):
    """A plain Environment shard: (index + 1) ticks of distinct periods."""
    env = Environment()
    env.process(_ticker(env, 0.25 + 0.125 * index, index + 1, []))
    return env


class FabricShard:
    """An object shard: one machine group running its own All-to-All."""

    def __init__(self, index):
        env = Environment()
        cluster = Cluster(2)
        fabric = Fabric(env, cluster)
        matrix = uniform_matrix(cluster.world_size, 1e6 * (index + 1))
        all_to_all(fabric, matrix)
        self.env = env
        self.fabric = fabric
        self.index = index

    def collect(self):
        return {
            "index": self.index,
            "seconds": self.env.now,
            "egress": self.fabric.total_cross_machine_bytes(),
        }


def fabric_shard(index):
    return FabricShard(index)


def broken_shard(index):
    raise RuntimeError(f"shard {index} refused to build")


def _standalone(factory, index):
    shard = factory(index)
    env = shard if isinstance(shard, Environment) else shard.env
    env.run()
    return env


class TestInline:
    def test_single_shard_matches_standalone(self):
        run = run_sharded(timeout_shard, 1, jobs=1)
        env = _standalone(timeout_shard, 0)
        assert run.results[0].now == env.now
        assert run.results[0].events_processed == env.events_processed
        assert run.makespan == env.now
        assert run.windows == 1  # infinite window -> one round

    def test_results_match_standalone_runs(self):
        run = run_sharded(timeout_shard, 4, jobs=1)
        for index, result in enumerate(run.results):
            env = _standalone(timeout_shard, index)
            assert result.index == index
            assert result.now == env.now
            assert result.events_processed == env.events_processed
            assert result.processes_started == env.processes_started
        assert run.events_processed == sum(
            r.events_processed for r in run.results
        )
        assert run.makespan == max(r.now for r in run.results)

    def test_window_size_is_result_invariant(self):
        wide = run_sharded(timeout_shard, 4, jobs=1)
        narrow = run_sharded(timeout_shard, 4, jobs=1, window=0.1)
        assert narrow.results == wide.results
        # Narrow windows mean more coordination rounds, never different
        # results.
        assert narrow.windows > wide.windows

    def test_shard_clock_not_rounded_to_window(self):
        # Completion times are the shards' true last-event times, not
        # window-boundary artifacts.
        run = run_sharded(timeout_shard, 3, jobs=1, window=1.0)
        for index, result in enumerate(run.results):
            assert result.now == pytest.approx(
                (0.25 + 0.125 * index) * (index + 1)
            )

    def test_collect_payload(self):
        run = run_sharded(fabric_shard, 2, jobs=1)
        for index, result in enumerate(run.results):
            assert result.payload["index"] == index
            assert result.payload["seconds"] > 0
            assert result.payload["seconds"] == result.now
        # Shard 1 pushes twice the bytes of shard 0 over the same fabric.
        assert (
            run.results[1].payload["egress"]
            == pytest.approx(2 * run.results[0].payload["egress"])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sharded(timeout_shard, 0)
        with pytest.raises(ValueError):
            run_sharded(timeout_shard, 2, window=0.0)


class TestMultiprocess:
    def test_matches_inline(self):
        inline = run_sharded(timeout_shard, 5, jobs=1)
        fanned = run_sharded(timeout_shard, 5, jobs=3)
        assert fanned == inline

    def test_windowed_matches_inline(self):
        inline = run_sharded(timeout_shard, 4, jobs=1)
        fanned = run_sharded(timeout_shard, 4, jobs=2, window=0.2)
        assert fanned.results == inline.results
        assert fanned.makespan == inline.makespan

    def test_fabric_shards_fan_out(self):
        inline = run_sharded(fabric_shard, 2, jobs=1)
        fanned = run_sharded(fabric_shard, 2, jobs=2)
        assert fanned.results == inline.results

    def test_jobs_capped_to_shards(self):
        run = run_sharded(timeout_shard, 2, jobs=16)
        assert len(run.results) == 2

    def test_factory_error_propagates(self):
        with pytest.raises(RuntimeError, match="refused to build"):
            run_sharded(broken_shard, 2, jobs=2)


def test_drain_to_stops_at_horizon():
    env = Environment()
    log = []
    env.process(_ticker(env, 1.0, 5, log))
    _drain_to(env, 2.5)
    assert env.now == 2.0
    assert [t for t, _ in log] == [1.0, 2.0]
    _drain_to(env, math.inf)
    assert env.now == 5.0
    assert math.isinf(env.peek())


def test_shard_result_is_picklable():
    import pickle

    result = ShardResult(
        index=1, now=2.0, events_processed=3, processes_started=4,
        payload={"x": 1},
    )
    assert pickle.loads(pickle.dumps(result)) == result
