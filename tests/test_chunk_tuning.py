"""Cost-model-driven chunk autotuning (``repro.control`` tuner + engine).

Covers the analytic per-block optimum (power-of-two lattice, capacity
clamp, brute-force agreement), the :func:`tune_engine_chunks` plan shape,
the engine's re-tuning metrics and the controller arming path, the
``chunk_tuning`` report fold, the calibration of the per-chunk prediction
against simulated chunk times, and the bit-identity battery: tuning
disabled reproduces the legacy runs exactly, and tuning enabled must not
move a single traffic byte (chunk counts change schedule, never routing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, MachineSpec
from repro.config import ModelConfig
from repro.control import (
    ControlConfig,
    Controller,
    ControlPolicy,
    CostModel,
    tune_engine_chunks,
)
from repro.core import JanusFeatures, strategy_engine
from repro.metrics import MetricsRegistry, chunk_tuning_breakdown

from tests.conftest import small_cluster, small_config
from tests.test_control_policy import make_sig


def make_model(**overrides):
    """A hand-built CostModel with round numbers (no engine required)."""
    defaults = dict(
        token_bytes=2048.0,
        expert_bytes=float(1 << 20),
        expert_flops=25e6,
        gpu_flops=100e12,
        nic_bandwidth=100e9,
        kernel_overhead=50e-6,
        micro_batches=1,
        ec_pipeline_chunks=4,
        nic_latency=8e-6,
    )
    defaults.update(overrides)
    return CostModel(**defaults)


def _is_power_of_two(value):
    return value >= 1 and value & (value - 1) == 0


def _lattice(limit):
    k = 1
    while k <= limit:
        yield k
        k *= 2


# -- the analytic optimum --------------------------------------------------


class TestTuneChunks:
    @settings(max_examples=40, deadline=None)
    @given(
        bottleneck=st.integers(min_value=0, max_value=200_000),
        max_rank=st.integers(min_value=1, max_value=5000),
        overhead_us=st.floats(min_value=1.0, max_value=2000.0),
    )
    def test_power_of_two_within_capacity(
        self, bottleneck, max_rank, overhead_us
    ):
        model = make_model(kernel_overhead=overhead_us * 1e-6)
        sig = make_sig(bottleneck=bottleneck, max_rank=max_rank)
        chunks = model.tune_chunks(sig)
        assert _is_power_of_two(chunks)
        assert chunks <= 64
        assert chunks <= max(1, max_rank)

    @settings(max_examples=40, deadline=None)
    @given(
        bottleneck=st.integers(min_value=1, max_value=200_000),
        max_rank=st.integers(min_value=1, max_value=5000),
        overhead_us=st.floats(min_value=1.0, max_value=2000.0),
    )
    def test_matches_brute_force_argmin(
        self, bottleneck, max_rank, overhead_us
    ):
        """Convexity lets the tuner test only K*'s lattice neighbours; the
        choice must still equal the exhaustive argmin over the lattice."""
        model = make_model(kernel_overhead=overhead_us * 1e-6)
        sig = make_sig(bottleneck=bottleneck, max_rank=max_rank)
        best = min(
            _lattice(min(64, max(1, max_rank))),
            key=lambda k: (model.chunk_time(sig, k), k),
        )
        assert model.tune_chunks(sig) == best

    def test_no_comm_means_one_chunk(self):
        sig = make_sig(bottleneck=0)
        assert make_model().tune_chunks(sig) == 1

    def test_free_launches_hit_the_capacity_cap(self):
        model = make_model(kernel_overhead=0.0)
        assert model.tune_chunks(make_sig(max_rank=3000)) == 64
        # One token per chunk on the hottest rank is the hard ceiling.
        assert model.tune_chunks(make_sig(max_rank=5)) == 4

    def test_max_chunks_caps_the_search(self):
        model = make_model(kernel_overhead=0.0)
        assert model.tune_chunks(make_sig(max_rank=3000), max_chunks=8) == 8

    def test_chunk_prediction_scales_with_count(self):
        """Per-chunk wire time halves when the count doubles; the NIC
        latency floor is paid once per transfer regardless of size."""
        model = make_model()
        sig = make_sig(bottleneck=10_000)
        floor = 2.0 * model.nic_latency
        one = model.a2a_chunk_seconds(sig, 1) - floor
        two = model.a2a_chunk_seconds(sig, 2) - floor
        assert one == pytest.approx(2.0 * two)


# -- plan construction over a live engine ----------------------------------


class TestTuneEngineChunks:
    def _engine(self, strategy, config=None, cluster=None, **kwargs):
        return strategy_engine(
            strategy,
            config if config is not None else small_config(),
            cluster if cluster is not None else small_cluster(),
            rng=np.random.default_rng(0),
            imbalance=0.3,
            check_memory=False,
            **kwargs,
        )

    def test_pipelined_blocks_get_individual_counts(self):
        plan = tune_engine_chunks(self._engine("pipelined-ec"))
        assert [block for block, _ in plan.block_chunks] == [1, 3]
        assert all(_is_power_of_two(c) for _, c in plan.block_chunks)
        assert plan.micro_batches is None
        assert [block for block, _ in plan.predicted_chunk_s] == [1, 3]
        assert all(seconds > 0 for _, seconds in plan.predicted_chunk_s)

    def test_microbatch_blocks_share_one_global_m(self):
        plan = tune_engine_chunks(self._engine("microbatch-ec"))
        assert plan.block_chunks == ()
        assert plan.micro_batches is not None
        assert _is_power_of_two(plan.micro_batches)
        assert [block for block, _ in plan.predicted_chunk_s] == [1, 3]

    def test_dense_strategies_leave_an_empty_plan(self):
        plan = tune_engine_chunks(self._engine("expert-centric"))
        assert plan.empty

    def test_indivisible_block_is_left_alone(self):
        """A block whose experts do not split evenly across the world has
        no per-worker load aggregate to tune from: skip it, tune the rest."""
        config = small_config(experts_per_block={1: 4, 3: 6})
        plan = tune_engine_chunks(
            self._engine("pipelined-ec", config=config)
        )
        assert [block for block, _ in plan.block_chunks] == [1]


# -- engine integration: metrics, switches, controller arming --------------


class TestEngineTuning:
    def _run(self, strategy, iterations=2, features=None, controller=None):
        registry = MetricsRegistry()
        engine = strategy_engine(
            strategy,
            small_config(),
            small_cluster(),
            rng=np.random.default_rng(0),
            imbalance=0.3,
            features=features,
            controller=controller,
            check_memory=False,
            metrics=registry,
        )
        results = engine.run(iterations)
        return engine, registry, results

    def test_autotuned_run_records_the_tuning_metrics(self):
        engine, registry, _ = self._run(
            "pipelined-ec",
            features=JanusFeatures(chunk_autotune=True),
        )
        assert registry.total("control.chunk_tuning.retunes") == 2
        for block in (1, 3):
            chosen = registry.gauge(
                "control.chunk_tuning.chunks", block=block
            )
            assert chosen is not None and _is_power_of_two(int(chosen))
            assert engine.features.chunks_for(block) == int(chosen)
            assert registry.counter(
                "control.chunk_tuning.measured_chunks", block=block
            ) > 0
            assert registry.gauge(
                "control.chunk_tuning.predicted_chunk_s", block=block
            ) > 0

    def test_untuned_run_records_no_tuning_metrics(self):
        _, registry, _ = self._run("pipelined-ec")
        assert registry.total("control.chunk_tuning.retunes") == 0
        assert registry.gauge("control.chunk_tuning.chunks", block=1) is None

    def test_set_block_chunks_counts_switches_not_refreshes(self):
        engine, registry, _ = self._run("pipelined-ec", iterations=1)
        engine.set_block_chunks(((1, 8), (3, 2)))
        engine.set_block_chunks(((1, 8), (3, 2)))  # no change, no switch
        engine.set_block_chunks(((1, 4), (3, 2)))  # block 1 flips
        assert engine.features.chunks_for(1) == 4
        assert engine.features.chunks_for(3) == 2
        switches = registry.series("control.chunk_tuning.switches")
        assert sum(switches.values()) == 3  # 2 initial sets + 1 flip

    def test_controller_chunks_flag_arms_the_autotuner(self):
        controller = Controller(
            policy=ControlPolicy(
                config=ControlConfig(adapt_chunks=True)
            )
        )
        engine, registry, _ = self._run(
            "pipelined-ec", controller=controller
        )
        assert engine.features.chunk_autotune is True
        assert registry.total("control.chunk_tuning.retunes") == 2


# -- report fold -----------------------------------------------------------


class TestBreakdown:
    def test_untouched_registry_folds_to_nothing(self):
        assert chunk_tuning_breakdown(MetricsRegistry()) == {}

    def test_folds_choices_predictions_and_measurements(self):
        registry = MetricsRegistry()
        registry.inc("control.chunk_tuning.retunes")
        registry.set("control.chunk_tuning.chunks", 8, block=1)
        registry.set(
            "control.chunk_tuning.predicted_chunk_s", 0.002, block=1
        )
        registry.inc(
            "control.chunk_tuning.measured_chunk_s", 0.006, block=1
        )
        registry.inc(
            "control.chunk_tuning.measured_chunks", 2, block=1
        )
        registry.inc("control.chunk_tuning.switches", block=1)
        breakdown = chunk_tuning_breakdown(registry)
        assert breakdown["retunes"] == 1
        entry = breakdown["blocks"]["1"]
        assert entry["chunks"] == 8
        assert entry["predicted_chunk_s"] == pytest.approx(0.002)
        assert entry["measured_chunk_s"] == pytest.approx(0.003)
        assert entry["switches"] == 1

    def test_live_report_carries_the_section(self):
        from repro.metrics import build_run_report

        registry = MetricsRegistry()
        engine = strategy_engine(
            "pipelined-ec",
            small_config(),
            small_cluster(),
            rng=np.random.default_rng(0),
            imbalance=0.3,
            features=JanusFeatures(chunk_autotune=True),
            check_memory=False,
            metrics=registry,
        )
        results = engine.run(1)
        report = build_run_report(results, registry)
        assert report["chunk_tuning"]["retunes"] == 1
        assert set(report["chunk_tuning"]["blocks"]) == {"1", "3"}


# -- calibration: prediction vs. simulated chunk times ---------------------


# (machines, gpus, experts-in-block-1, batch, hidden, seq, seed); block 3
# always gets twice the experts of block 1.  Every shape keeps experts a
# multiple of the world size so the tuner engages on both blocks.
CALIBRATION_SHAPES = (
    (2, 2, 4, 16, 64, 32, 0),
    (2, 4, 8, 32, 128, 64, 1),
    (3, 4, 12, 48, 192, 96, 7),
    (4, 2, 8, 24, 128, 48, 9),
)

# Stated accuracy band for the per-chunk prediction, as a pred/measured
# ratio.  The model is a wire-time + NIC-latency lower bound: it is exact
# on evenly chunked transfers and undershoots when the fluid fabric
# stripes a transfer across fewer effective lanes than the aggregate
# bandwidth assumes (large multi-GPU shapes), hence the asymmetric band.
CALIBRATION_BAND = (0.5, 1.05)


class TestCalibration:
    @pytest.mark.parametrize(
        "machines,gpus,experts,batch,hidden,seq,seed", CALIBRATION_SHAPES
    )
    def test_prediction_within_band(
        self, machines, gpus, experts, batch, hidden, seq, seed
    ):
        config = ModelConfig(
            name="probe",
            batch_size=batch,
            seq_len=seq,
            top_k=2,
            hidden_dim=hidden,
            num_blocks=4,
            experts_per_block={1: experts, 3: 2 * experts},
            num_heads=4,
        )
        registry = MetricsRegistry()
        engine = strategy_engine(
            "pipelined-ec",
            config,
            Cluster(machines, MachineSpec(num_gpus=gpus)),
            rng=np.random.default_rng(seed),
            imbalance=0.3,
            features=JanusFeatures(chunk_autotune=True),
            check_memory=False,
            metrics=registry,
        )
        engine.run_iteration()
        low, high = CALIBRATION_BAND
        for block in (1, 3):
            predicted = registry.gauge(
                "control.chunk_tuning.predicted_chunk_s", block=block
            )
            total = registry.counter(
                "control.chunk_tuning.measured_chunk_s", block=block
            )
            count = registry.counter(
                "control.chunk_tuning.measured_chunks", block=block
            )
            assert count > 0
            ratio = predicted / (total / count)
            assert low <= ratio <= high, (
                f"block {block}: predicted/measured per-chunk ratio "
                f"{ratio:.3f} outside [{low}, {high}]"
            )


# -- bit-identity ----------------------------------------------------------


def _fingerprint(results):
    return [
        (
            round(result.seconds, 15),
            result.sim_events,
            tuple(result.nic_egress_bytes),
        )
        for result in results
    ]


def _run(mode, features=None, seed=0, iterations=2):
    engine = strategy_engine(
        mode,
        small_config(),
        small_cluster(),
        rng=np.random.default_rng(seed),
        imbalance=0.3,
        features=features,
        check_memory=False,
    )
    return engine.run(iterations)


class TestBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        mode=st.sampled_from(
            ["expert-centric", "data-centric", "pipelined-ec",
             "microbatch-ec"]
        ),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_disabled_tuning_is_the_legacy_run(self, mode, seed):
        """Spelling out the PR's feature defaults must reproduce the
        default-features run bit for bit, for every paradigm."""
        bare = _run(mode, seed=seed)
        explicit = _run(
            mode,
            seed=seed,
            features=JanusFeatures(
                block_chunks=(),
                chunk_autotune=False,
                a2a_stagger="off",
            ),
        )
        assert _fingerprint(bare) == _fingerprint(explicit)

    @settings(max_examples=6, deadline=None)
    @given(
        mode=st.sampled_from(["pipelined-ec", "microbatch-ec"]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_tuned_run_moves_no_traffic_byte(self, mode, seed):
        """Chunk counts reshape the schedule, never the routed bytes.

        Every chunk carries an exact binary split of the integer routing
        matrix, so the per-machine egress totals agree to the byte; the
        fluid fabric accumulates them as floats in schedule order, so
        only sub-byte IEEE summation noise may differ."""
        untuned = _run(mode, seed=seed)
        tuned = _run(
            mode, seed=seed, features=JanusFeatures(chunk_autotune=True)
        )
        assert [
            tuple(round(b) for b in r.nic_egress_bytes) for r in tuned
        ] == [
            tuple(round(b) for b in r.nic_egress_bytes) for r in untuned
        ]
