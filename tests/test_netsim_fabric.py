"""Tests for the fabric, collectives, memory tracking and goodput harness."""

import pytest

from repro.cluster import Cluster, Device
from repro.netsim import (
    Fabric,
    MemoryTracker,
    OutOfMemoryError,
    all_to_all,
    all_to_all_proc,
    measure_all_to_all_goodput,
    uniform_matrix,
)
from repro.simkit import Environment
from repro.units import GIB, gbytes_per_s


def make_fabric(num_machines=2):
    env = Environment()
    cluster = Cluster(num_machines)
    return env, cluster, Fabric(env, cluster)


class TestFabric:
    def test_intra_machine_transfer_uses_nvlink_speed(self):
        env, cluster, fabric = make_fabric(1)
        size = gbytes_per_s(600)  # one second of NVLink
        flow = fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), size)

        def driver():
            yield flow.done

        env.run(until=env.process(driver()))
        latency = fabric.path_latency(flow.path)
        assert env.now == pytest.approx(1.0 + latency)

    def test_cross_machine_transfer_is_nic_bound(self):
        env, cluster, fabric = make_fabric(2)
        nic_bw = cluster.spec.nic.bandwidth
        flow = fabric.transfer(Device.gpu(0, 0), Device.gpu(1, 0), nic_bw)

        def driver():
            yield flow.done

        env.run(until=env.process(driver()))
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_compute_stream_serializes_kernels(self):
        env, cluster, fabric = make_fabric(1)
        gpu = Device.gpu(0, 0)
        ends = []

        def kernel(duration):
            yield env.process(fabric.compute(gpu, duration))
            ends.append(env.now)

        env.process(kernel(2.0))
        env.process(kernel(3.0))
        env.run()
        assert ends == [2.0, 5.0]

    def test_compute_on_host_rejected(self):
        env, cluster, fabric = make_fabric(1)
        with pytest.raises(ValueError):
            list(fabric.compute(Device.host(0), 1.0))

    def test_flops_time(self):
        env, cluster, fabric = make_fabric(1)
        flops = cluster.spec.gpu.flops
        assert fabric.flops_time(flops) == pytest.approx(1.0)

    def test_nic_byte_accounting(self):
        env, cluster, fabric = make_fabric(2)
        flow = fabric.transfer(Device.gpu(0, 0), Device.gpu(1, 0), 1e9)

        def driver():
            yield flow.done

        env.run(until=env.process(driver()))
        assert fabric.nic_bytes(0, "out") == pytest.approx(1e9)
        assert fabric.nic_bytes(1, "in") == pytest.approx(1e9)
        assert fabric.total_cross_machine_bytes() == pytest.approx(1e9)


class TestAllToAll:
    def test_uniform_matrix_shape_and_diagonal(self):
        matrix = uniform_matrix(4, 100.0)
        assert matrix.shape == (4, 4)
        assert matrix.diagonal().sum() == 0
        assert matrix.sum() == pytest.approx(12 * 100.0)

    def test_wrong_matrix_shape_rejected(self):
        env, cluster, fabric = make_fabric(1)
        with pytest.raises(ValueError):
            all_to_all(fabric, uniform_matrix(4, 1.0))

    def test_negative_entries_rejected(self):
        env, cluster, fabric = make_fabric(1)
        matrix = uniform_matrix(8, 1.0)
        matrix[0, 1] = -1
        with pytest.raises(ValueError):
            all_to_all(fabric, matrix)

    def test_intra_machine_all_to_all_completes(self):
        env, cluster, fabric = make_fabric(1)
        matrix = uniform_matrix(8, 1e6)
        results = []

        def driver():
            elapsed = yield env.process(all_to_all_proc(fabric, matrix))
            results.append(elapsed)

        env.process(driver())
        env.run()
        assert results and results[0] > 0

    def test_inter_machine_all_to_all_is_nic_bound(self):
        env, cluster, fabric = make_fabric(2)
        per_pair = 1e6
        matrix = uniform_matrix(16, per_pair)
        results = []

        def driver():
            elapsed = yield env.process(all_to_all_proc(fabric, matrix))
            results.append(elapsed)

        env.process(driver())
        env.run()
        # Each machine sends 8*8 pair-payloads to the other machine,
        # split over 4 NICs.
        cross = 64 * per_pair
        expected = cross / 4 / cluster.spec.nic.bandwidth
        assert results[0] == pytest.approx(expected, rel=0.05)

    def test_flat_mode_same_traffic_slower_or_equal_under_skew(self):
        env1 = Environment()
        cluster = Cluster(2)
        fabric1 = Fabric(env1, cluster)
        matrix = uniform_matrix(16, 1e6)
        matrix[0, 8:] = 2e7  # rank 0 sends heavily -> its NIC is a hotspot

        def run(fabric, env, hierarchical):
            done = all_to_all(fabric, matrix, hierarchical=hierarchical)

            def driver():
                yield done

            env.run(until=env.process(driver()))
            return env.now

        t_hier = run(fabric1, env1, True)
        env2 = Environment()
        fabric2 = Fabric(env2, cluster)
        t_flat = run(fabric2, env2, False)
        assert t_flat > t_hier
        assert fabric1.total_cross_machine_bytes() == pytest.approx(
            fabric2.total_cross_machine_bytes()
        )

    def test_flat_mode_uniform_matrix_completes(self):
        env = Environment()
        fabric = Fabric(env, Cluster(2))
        done = all_to_all(fabric, uniform_matrix(16, 1e5), hierarchical=False)

        def driver():
            yield done

        env.run(until=env.process(driver()))
        assert env.now > 0

    def test_imbalanced_all_to_all_waits_for_busiest(self):
        env, cluster, fabric = make_fabric(2)
        matrix = uniform_matrix(16, 1e5)
        matrix[0, 8] = 1e8  # one heavy cross-machine pair
        results = []

        def driver():
            elapsed = yield env.process(all_to_all_proc(fabric, matrix))
            results.append(elapsed)

        env.process(driver())
        env.run()
        heavy_bytes = matrix[0:8, 8:16].sum() / cluster.spec.num_nics
        min_expected = heavy_bytes / cluster.spec.nic.bandwidth
        assert results[0] >= min_expected * 0.99


class TestGoodput:
    def test_intra_machine_beats_inter_machine(self):
        intra = measure_all_to_all_goodput(1, payload_bytes_per_pair=8e6)
        inter = measure_all_to_all_goodput(4, payload_bytes_per_pair=8e6)
        assert intra.goodput_gbps > 5 * inter.goodput_gbps

    def test_result_fields(self):
        result = measure_all_to_all_goodput(1, payload_bytes_per_pair=1e6, rounds=2)
        assert result.num_machines == 1
        assert result.total_bytes == pytest.approx(2 * 56 * 1e6)
        assert result.elapsed_seconds > 0

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            measure_all_to_all_goodput(1, rounds=0)


class TestMemoryTracker:
    def test_allocate_and_free(self):
        tracker = MemoryTracker(10 * GIB)
        tracker.allocate("weights", 4 * GIB)
        assert tracker.used == 4 * GIB
        assert tracker.available == 6 * GIB
        assert tracker.free("weights") == 4 * GIB
        assert tracker.used == 0

    def test_oom_raises_with_details(self):
        tracker = MemoryTracker(1 * GIB)
        tracker.allocate("a", 0.75 * GIB)
        with pytest.raises(OutOfMemoryError) as exc_info:
            tracker.allocate("b", 0.5 * GIB)
        assert exc_info.value.requested == 0.5 * GIB

    def test_duplicate_name_rejected(self):
        tracker = MemoryTracker(GIB)
        tracker.allocate("x", 1)
        with pytest.raises(ValueError):
            tracker.allocate("x", 1)

    def test_free_unknown_rejected(self):
        tracker = MemoryTracker(GIB)
        with pytest.raises(KeyError):
            tracker.free("ghost")

    def test_peak_tracking(self):
        tracker = MemoryTracker(GIB)
        tracker.allocate("a", 100)
        tracker.allocate("b", 200)
        tracker.free("a")
        assert tracker.peak == 300

    def test_would_fit(self):
        tracker = MemoryTracker(100)
        tracker.allocate("a", 60)
        assert tracker.would_fit(40)
        assert not tracker.would_fit(41)
