"""Unit tests for simkit shared-resource primitives."""

import pytest

from repro.simkit import (
    Container,
    Environment,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def test_resource_serializes_users():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(name, hold):
        with resource.request() as req:
            yield req
            log.append((name, "start", env.now))
            yield env.timeout(hold)
            log.append((name, "end", env.now))

    env.process(user("a", 5))
    env.process(user("b", 3))
    env.run()
    assert log == [
        ("a", "start", 0),
        ("a", "end", 5),
        ("b", "start", 5),
        ("b", "end", 8),
    ]


def test_resource_capacity_two_allows_parallelism():
    env = Environment()
    resource = Resource(env, capacity=2)
    starts = []

    def user(name):
        with resource.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(4)

    for name in "abc":
        env.process(user(name))
    env.run()
    assert starts == [("a", 0), ("b", 0), ("c", 4)]


def test_resource_fifo_queue_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        with resource.request() as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(user("first", 1))
    env.process(user("second", 2))
    env.process(user("third", 3))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_release_unqueued_request_is_noop():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder():
        req = resource.request()
        yield req
        resource.release(req)
        resource.release(req)  # second release must not corrupt state

    env.process(holder())
    env.run()
    assert resource.count == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def user(name, priority):
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    def spawn():
        # Occupy the resource, then enqueue waiters with mixed priorities.
        with resource.request(priority=0) as req:
            yield req
            env.process(user("low", 9))
            env.process(user("high", 1))
            env.process(user("mid", 5))
            yield env.timeout(1)

    env.process(spawn())
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_broken_by_arrival_time():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        with resource.request(priority=3) as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(user("early", 1))
    env.process(user("late", 2))
    env.run()
    assert order == ["early", "late"]


def test_store_fifo_items():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for _, item in received] == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(6)
        yield store.put("late-item")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(6, "late-item")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", env.now))
        yield store.put(2)
        log.append(("put2", env.now))

    def consumer():
        yield env.timeout(5)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put1", 0), ("put2", 5)]


def test_container_credit_semantics():
    env = Environment()
    credits = Container(env, capacity=2, init=2)
    log = []

    def worker(name):
        yield credits.get(1)
        log.append((name, "acquired", env.now))
        yield env.timeout(3)
        yield credits.put(1)

    for name in ("a", "b", "c"):
        env.process(worker(name))
    env.run()
    acquired = [(name, t) for name, _, t in log]
    assert acquired == [("a", 0), ("b", 0), ("c", 3)]


def test_container_rejects_bad_amounts():
    env = Environment()
    container = Container(env, capacity=5, init=0)
    with pytest.raises(SimulationError):
        container.put(0)
    with pytest.raises(SimulationError):
        container.get(-1)


def test_container_level_tracks_puts_and_gets():
    env = Environment()
    container = Container(env, capacity=10, init=4)

    def proc():
        yield container.get(3)
        assert container.level == 1
        yield container.put(5)
        assert container.level == 6

    env.process(proc())
    env.run()
    assert container.level == 6


def test_container_put_blocks_at_capacity():
    env = Environment()
    container = Container(env, capacity=2, init=2)
    log = []

    def putter():
        yield container.put(1)
        log.append(env.now)

    def getter():
        yield env.timeout(8)
        yield container.get(1)

    env.process(putter())
    env.process(getter())
    env.run()
    assert log == [8]
