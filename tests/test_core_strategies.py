"""Tests for the pluggable block-execution strategy layer."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import ModelConfig
from repro.core import (
    BlockStrategy,
    JanusEngine,
    Paradigm,
    build_workload,
    engine_for,
    engine_modes,
    expert_centric_engine,
    get_strategy,
    pipelined_expert_centric_engine,
    resolve_strategy_name,
    strategy_map,
    strategy_names,
    unified_engine,
)
from repro.core.strategies import (
    DataCentricStrategy,
    ExpertCentricStrategy,
    PipelinedExpertCentricStrategy,
)
from repro.core import JanusFeatures


from tests.conftest import small_cluster, small_config  # noqa: E402


class TestRegistry:
    def test_builtins_registered(self):
        assert set(strategy_names()) >= {
            "expert-centric", "data-centric", "pipelined-ec"
        }
        assert get_strategy("expert-centric") is ExpertCentricStrategy
        assert get_strategy("data-centric") is DataCentricStrategy
        assert get_strategy("pipelined-ec") is PipelinedExpertCentricStrategy

    def test_unknown_name_rejected_with_known_names(self):
        with pytest.raises(ValueError, match="token-centric"):
            get_strategy("token-centric")
        with pytest.raises(ValueError, match="data-centric"):
            get_strategy("token-centric")

    def test_resolve_accepts_name_paradigm_and_class(self):
        assert resolve_strategy_name("data-centric") == "data-centric"
        assert resolve_strategy_name(Paradigm.EXPERT_CENTRIC) == "expert-centric"
        assert (
            resolve_strategy_name(Paradigm.PIPELINED_EXPERT_CENTRIC)
            == "pipelined-ec"
        )
        assert resolve_strategy_name(ExpertCentricStrategy) == "expert-centric"

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_strategy_name(42)
        with pytest.raises(ValueError):
            resolve_strategy_name("not-a-strategy")

    def test_registration_order_is_ec_dc_pipelined(self):
        """Spawn order and memory-term order depend on it (determinism)."""
        names = list(strategy_names())
        assert names.index("expert-centric") < names.index("data-centric")
        assert names.index("data-centric") < names.index("pipelined-ec")

    def test_engine_modes_derived_from_registry(self):
        modes = engine_modes()
        assert set(strategy_names()) <= set(modes)
        assert "unified" in modes


class TestMixedStrategyIteration:
    def make_engine(self, **engine_kwargs):
        config = small_config(
            num_blocks=6, experts_per_block={1: 4, 3: 4, 5: 4}
        )
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        return JanusEngine(
            cluster,
            workload,
            {1: "expert-centric", 3: "data-centric", 5: "pipelined-ec"},
            **engine_kwargs,
        )

    def test_all_three_strategies_run_in_one_iteration(self):
        result = self.make_engine().run_iteration()
        assert result.seconds > 0
        assert result.strategies == {
            1: "expert-centric", 3: "data-centric", 5: "pipelined-ec",
        }
        details = {
            span.detail for span in result.trace.spans_of("comm.a2a")
        }
        # Plain EC spans on block 1, chunked spans on block 5.
        assert "fwd-dispatch" in details
        assert "fwd-dispatch:0" in details
        # DC block 3 ran through the pull pipeline (expert arrivals traced).
        arrivals = result.trace.expert_arrivals(0)
        assert {event["block"] for event in arrivals} == {3}

    def test_forward_only_mixed_iteration(self):
        engine = self.make_engine()
        result = engine.run_iteration(forward_only=True)
        training = engine.run_iteration()
        assert 0 < result.seconds < training.seconds
        details = {
            span.detail for span in result.trace.spans_of("comm.a2a")
        }
        assert not any(
            detail and detail.startswith("bwd") for detail in details
        )

    def test_mixed_iteration_is_deterministic(self):
        engine = self.make_engine()
        first = engine.run_iteration()
        second = engine.run_iteration()
        assert first.seconds == second.seconds
        np.testing.assert_array_equal(
            first.nic_egress_bytes, second.nic_egress_bytes
        )

    def test_paradigms_property_covers_builtin_strategies(self):
        result = self.make_engine().run_iteration()
        assert result.paradigms == {
            1: Paradigm.EXPERT_CENTRIC,
            3: Paradigm.DATA_CENTRIC,
            5: Paradigm.PIPELINED_EXPERT_CENTRIC,
        }

    def test_strategy_specs_can_mix_forms(self):
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        engine = JanusEngine(
            cluster, workload,
            {1: Paradigm.DATA_CENTRIC, 3: ExpertCentricStrategy},
        )
        assert engine.block_strategies == {
            1: "data-centric", 3: "expert-centric",
        }
        assert engine.run_iteration().seconds > 0

    def test_unknown_strategy_in_map_rejected(self):
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        with pytest.raises(ValueError, match="unknown block strategy"):
            JanusEngine(cluster, workload, {1: "magic", 3: "data-centric"})


class TestGoldenRegression:
    """The extracted EC/DC strategies must reproduce the pre-refactor
    engine bit-for-bit.  Goldens were captured from the engine at commit
    d8bd599 (before the strategy extraction) on fixed-seed configs."""

    CLUSTER = dict(machines=2, gpus=2)

    # mode -> (train seconds, train egress, inference seconds, inf egress)
    GOLDEN = {
        "expert-centric": (
            0.0005236974933333334,
            [2097151.9999999993, 2097151.9999999993],
            0.00020988017777777779,
            [1048575.9999999995, 1048575.9999999995],
        ),
        "data-centric": (
            0.0012143906844444446,
            [1048576.000000004, 1048576.000000004],
            0.0004054343964444444,
            [524288.0000000003, 524288.0000000003],
        ),
    }

    def test_pure_engines_match_pre_refactor_goldens(self):
        config = small_config(name="golden")
        cluster = small_cluster(**self.CLUSTER)
        workload = build_workload(config, cluster)
        for mode, (train_s, train_egress, inf_s, inf_egress) in (
            self.GOLDEN.items()
        ):
            engine = engine_for(mode, config, cluster, workload=workload)
            train = engine.run_iteration()
            inference = engine.run_iteration(forward_only=True)
            assert train.seconds == train_s, mode
            assert train.nic_egress_bytes.tolist() == train_egress, mode
            assert inference.seconds == inf_s, mode
            assert inference.nic_egress_bytes.tolist() == inf_egress, mode

    def test_unified_imbalanced_matches_golden(self):
        config = ModelConfig(
            name="golden2", batch_size=64, seq_len=32, top_k=2,
            hidden_dim=64, num_blocks=4, experts_per_block={1: 4, 3: 16},
            num_heads=4,
        )
        cluster = small_cluster(**self.CLUSTER)
        workload = build_workload(
            config, cluster, imbalance=0.4, rng=np.random.default_rng(7)
        )
        result = unified_engine(
            config, cluster, workload=workload, check_memory=False
        ).run_iteration()
        assert result.seconds == 0.002992758741333333
        assert result.nic_egress_bytes.tolist() == [
            2621439.9999999716, 2621439.999999972,
        ]

    def test_mixed_jittered_matches_golden(self):
        config = ModelConfig(
            name="golden2", batch_size=64, seq_len=32, top_k=2,
            hidden_dim=64, num_blocks=4, experts_per_block={1: 4, 3: 16},
            num_heads=4,
        )
        cluster = small_cluster(**self.CLUSTER)
        workload = build_workload(
            config, cluster, imbalance=0.4, rng=np.random.default_rng(7)
        )
        result = JanusEngine(
            cluster, workload,
            {1: Paradigm.DATA_CENTRIC, 3: Paradigm.EXPERT_CENTRIC},
            compute_jitter=0.05, jitter_seed=3, check_memory=False,
        ).run_iteration()
        assert result.seconds == 0.0015399149843149929
        assert result.nic_egress_bytes.tolist() == [
            4686336.000000003, 4686336.000000005,
        ]


class TestPipelinedExpertCentric:
    def test_single_chunk_degenerates_to_plain_ec(self):
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        features = JanusFeatures(ec_pipeline_chunks=1)
        ec = expert_centric_engine(
            config, cluster, workload=workload, features=features
        ).run_iteration()
        pipelined = pipelined_expert_centric_engine(
            config, cluster, workload=workload, features=features
        ).run_iteration()
        assert pipelined.seconds == pytest.approx(ec.seconds, rel=1e-9)
        np.testing.assert_allclose(
            pipelined.nic_egress_bytes, ec.nic_egress_bytes, rtol=1e-9
        )

    def test_traffic_matches_plain_ec(self):
        """Chunking reschedules the All-to-All, it must not change the
        byte volume."""
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        ec = expert_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        pipelined = pipelined_expert_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        np.testing.assert_allclose(
            pipelined.nic_egress_bytes, ec.nic_egress_bytes, rtol=1e-9
        )

    def test_chunk_count_must_be_positive(self):
        with pytest.raises(ValueError):
            JanusFeatures(ec_pipeline_chunks=0)

    def test_overlap_beats_plain_ec_on_low_r_blocks(self):
        """The Parm/FlowMoE claim: on comm-heavy low-R blocks, chunked
        All-to-All overlapped with expert compute beats the serialized
        dispatch-compute-combine."""
        cluster = Cluster(4)
        config = ModelConfig(
            name="low-R", batch_size=64, seq_len=64, top_k=2,
            hidden_dim=768, num_blocks=12,
            experts_per_block={6: 128, 10: 128}, num_heads=8,
        )
        workload = build_workload(config, cluster)
        kwargs = dict(workload=workload, check_memory=False)
        ec = expert_centric_engine(config, cluster, **kwargs).run_iteration()
        pipelined = pipelined_expert_centric_engine(
            config, cluster, **kwargs
        ).run_iteration()
        assert pipelined.seconds < ec.seconds

    def test_excessive_chunking_pays_kernel_overhead(self):
        """Each chunk relaunches every resident expert's GEMM, so very
        large K must eventually lose the overlap gain."""
        cluster = Cluster(4)
        config = ModelConfig(
            name="low-R", batch_size=64, seq_len=64, top_k=2,
            hidden_dim=768, num_blocks=12,
            experts_per_block={6: 128, 10: 128}, num_heads=8,
        )
        workload = build_workload(config, cluster)
        kwargs = dict(workload=workload, check_memory=False)
        few = pipelined_expert_centric_engine(
            config, cluster, features=JanusFeatures(ec_pipeline_chunks=2),
            **kwargs,
        ).run_iteration()
        many = pipelined_expert_centric_engine(
            config, cluster, features=JanusFeatures(ec_pipeline_chunks=64),
            **kwargs,
        ).run_iteration()
        assert many.seconds > few.seconds


class TestStrategySelector:
    def test_strategy_map_matches_paradigm_map_by_default(self):
        config = small_config(
            batch_size=16, seq_len=32, experts_per_block={1: 4, 3: 16}
        )
        cluster = small_cluster()
        mapping = strategy_map(config, cluster)
        assert mapping == {1: "data-centric", 3: "expert-centric"}

    def test_strategy_map_pluggable_low_r_side(self):
        config = small_config(
            batch_size=16, seq_len=32, experts_per_block={1: 4, 3: 16}
        )
        cluster = small_cluster()
        mapping = strategy_map(
            config, cluster, low_r_strategy="pipelined-ec"
        )
        assert mapping == {1: "data-centric", 3: "pipelined-ec"}

    def test_strategy_map_rejects_unknown_strategies(self):
        config = small_config()
        cluster = small_cluster()
        with pytest.raises(ValueError):
            strategy_map(config, cluster, low_r_strategy="magic")

    def test_unified_engine_with_pipelined_low_r(self):
        config = small_config(
            batch_size=16, seq_len=32, experts_per_block={1: 4, 3: 16}
        )
        cluster = small_cluster()
        engine = unified_engine(
            config, cluster, low_r_strategy="pipelined-ec",
            check_memory=False,
        )
        result = engine.run_iteration()
        assert result.strategies == {1: "data-centric", 3: "pipelined-ec"}
        assert result.seconds > 0

    def test_engine_for_pipelined_mode(self):
        engine = engine_for("pipelined-ec", small_config(), small_cluster())
        assert set(engine.block_strategies.values()) == {"pipelined-ec"}
        assert engine.run_iteration().seconds > 0


class TestCustomStrategyExtension:
    def test_engine_accepts_a_custom_strategy_instance_map(self):
        """The extension point: a strategy defined outside the package can
        drive blocks, provided it is registered."""
        from repro.core.strategies.base import _REGISTRY

        class SkipStrategy(ExpertCentricStrategy):
            """EC with a different name, to exercise registration."""

            name = "test-skip"

        try:
            from repro.core import register_strategy

            register_strategy(SkipStrategy)
            config = small_config()
            cluster = small_cluster()
            workload = build_workload(config, cluster)
            engine = JanusEngine(
                cluster, workload, {1: "test-skip", 3: "data-centric"},
                check_memory=False,
            )
            result = engine.run_iteration()
            assert result.strategies[1] == "test-skip"
            with pytest.raises(ValueError):
                result.paradigms  # no enum member for the custom name
        finally:
            _REGISTRY.pop("test-skip", None)

    def test_duplicate_registration_rejected(self):
        from repro.core import register_strategy

        class Impostor(BlockStrategy):
            name = "data-centric"

            def run_block(self, ctx, rank, index, phase):
                yield None

        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Impostor)

    def test_nameless_strategy_rejected(self):
        from repro.core import register_strategy

        class Nameless(BlockStrategy):
            def run_block(self, ctx, rank, index, phase):
                yield None

        with pytest.raises(ValueError):
            register_strategy(Nameless)


class TestMemoryModel:
    def test_estimate_strategies_matches_estimate_mixed(self):
        from repro.core import estimate_mixed, estimate_strategies

        config = small_config()
        mixed = estimate_mixed(config, 4, 1, 1, credit_size=4)
        via_strategies = estimate_strategies(
            config, 4, {"expert-centric": 1, "data-centric": 1},
            credit_size=4,
        )
        assert mixed.total == via_strategies.total
        assert mixed.paradigm_extra == via_strategies.paradigm_extra

    def test_estimate_strategies_validates_coverage(self):
        from repro.core import estimate_strategies

        with pytest.raises(ValueError, match="cover every MoE block"):
            estimate_strategies(small_config(), 4, {"expert-centric": 1})

    def test_estimate_strategies_rejects_unknown_names(self):
        from repro.core import estimate_strategies

        config = small_config()
        with pytest.raises(ValueError, match="unknown block strategy"):
            estimate_strategies(config, 4, {"magic": 2})

    def test_pipelined_buffers_smaller_than_plain_ec(self):
        """Chunking shrinks the transient A2A working buffers, so the
        pipelined strategy must sit between pure EC and pure DC."""
        from repro.core import estimate_strategies

        config = small_config()
        ec = estimate_strategies(config, 4, {"expert-centric": 2})
        pec = estimate_strategies(
            config, 4, {"pipelined-ec": 2}, pipeline_chunks=4
        )
        dc = estimate_strategies(config, 4, {"data-centric": 2})
        assert pec.paradigm_extra < ec.paradigm_extra
        more_chunks = estimate_strategies(
            config, 4, {"pipelined-ec": 2}, pipeline_chunks=16
        )
        assert more_chunks.paradigm_extra < pec.paradigm_extra
        assert dc.paradigm_extra < pec.paradigm_extra


class TestContextStrategyBlocks:
    def test_engine_populates_per_strategy_block_sets(self):
        config = small_config(
            num_blocks=6, experts_per_block={1: 4, 3: 4, 5: 4}
        )
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        engine = JanusEngine(
            cluster, workload,
            {1: "expert-centric", 3: "data-centric", 5: "pipelined-ec"},
        )
        # Run via a captured context: grab it from the per-iteration
        # setup hook (invoked under both schedulers).
        captured = {}
        original = DataCentricStrategy.setup

        def capture(self, ctx, forward_only):
            captured["ctx"] = ctx
            return original(self, ctx, forward_only)

        DataCentricStrategy.setup = capture
        try:
            engine.run_iteration()
        finally:
            DataCentricStrategy.setup = original
        ctx = captured["ctx"]
        assert ctx.blocks_of("expert-centric") == (1,)
        assert ctx.blocks_of("data-centric") == (3,)
        assert ctx.blocks_of("pipelined-ec") == (5,)
        assert ctx.blocks_of("unheard-of") == ()
        # Only task-queue strategies feed the schedulers.
        assert ctx.dc_block_indices == [3]

    def test_context_derives_strategy_blocks_from_dc_blocks(self):
        from repro.core import IterationContext
        from repro.netsim import Fabric
        from repro.simkit import Environment
        from repro.trace import TraceRecorder

        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        env = Environment()
        ctx = IterationContext(
            env, Fabric(env, cluster), workload, JanusFeatures(),
            TraceRecorder(), dc_blocks={1},
        )
        assert ctx.blocks_of("data-centric") == (1,)
        assert ctx.blocks_of("expert-centric") == (3,)
