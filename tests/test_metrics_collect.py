"""Tests for the post-run harvest (collect) and report layers."""

import numpy as np
import pytest

from repro.core import engine_for
from repro.faults import FaultPlan, MessageLoss
from repro.metrics import (
    MetricsRegistry,
    build_run_report,
    collect_iteration_metrics,
    iteration_summary,
    overlap_efficiency,
    task_kind_breakdown,
    write_run_report,
)
from repro.metrics.collect import _link_label
from repro.trace import TraceRecorder

from tests.conftest import small_cluster, small_config


class TestLinkLabels:
    def test_tuple_ids_join_with_colons(self):
        assert _link_label(("nvlink", 0, 1)) == "nvlink:0:1"

    def test_plain_ids_stringify(self):
        assert _link_label("pcie-up") == "pcie-up"
        assert _link_label(7) == "7"


class TestOverlapEfficiency:
    def test_zero_when_either_side_idle(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1)
        assert overlap_efficiency(trace) == 0.0  # no comm at all

    def test_full_overlap_is_one(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 4)
        trace.record("comm.a2a", 1, 2)
        assert overlap_efficiency(trace) == 1.0

    def test_no_overlap_is_zero(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1)
        trace.record("comm.a2a", 1, 2)
        assert overlap_efficiency(trace) == 0.0


class _Stub:
    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class TestHarvestEdgeCases:
    def test_idle_links_are_skipped(self):
        """Links that moved zero bytes produce no counter series."""
        registry = MetricsRegistry()
        trace = TraceRecorder()
        result = _Stub(
            trace=trace, iteration=0, seconds=1.0, all_to_all_share=0.0,
            strategies={}, fault_stats=None,
        )
        network = _Stub(
            link_bytes=_Stub(items=lambda: [(("idle", 0), 0.0)]),
            link_utilization=lambda link_id, elapsed: 0.0,
        )
        fabric = _Stub(
            network=network,
            cluster=_Stub(num_machines=1),
            nic_bytes=lambda machine, direction: 0.0,
        )
        ctx = _Stub(
            features=_Stub(credit_size=4),
            credits={},
            cache_fills={0: 0},
            env=_Stub(events_processed=0, processes_started=0),
        )
        collect_iteration_metrics(registry, result, fabric, ctx)
        assert registry.series("link.bytes") == {}
        assert registry.series("cache.fills") == {}
        assert registry.gauge("iter.seconds", iteration=0) == 1.0


class TestFaultMetrics:
    def _run_with_faults(self):
        registry = MetricsRegistry()
        plan = FaultPlan(
            seed=3, faults=(MessageLoss(kinds=("pull-request",), rate=0.4),)
        )
        engine = engine_for(
            "data-centric", small_config(), small_cluster(),
            rng=np.random.default_rng(0), imbalance=0.3,
            fault_plan=plan, metrics=registry,
        )
        return registry, engine.run_iteration()

    def test_fault_counters_mirror_fault_stats(self):
        registry, result = self._run_with_faults()
        stats = result.fault_stats
        assert stats is not None
        assert registry.total("fault.retries") == stats.retries
        assert registry.total("fault.dropped_messages") == stats.dropped_messages
        assert registry.total("fault.stale_fallbacks") == stats.stale_fallbacks
        assert registry.total("fault.grad_failures") == stats.grad_failures
        assert stats.dropped_messages > 0  # the plan actually fired

    def test_iteration_summary_includes_faults(self):
        _, result = self._run_with_faults()
        summary = iteration_summary(result)
        assert summary["faults"]["dropped_messages"] > 0
        assert summary["faults"]["retries"] == result.fault_stats.retries


class TestTaskKindBreakdown:
    def test_folds_count_and_seconds_by_kind_sorted(self):
        registry = MetricsRegistry()
        registry.inc("task.count", 3.0, kind="gate")
        registry.inc("task.seconds", 0.5, kind="gate")
        registry.inc("task.count", 1.0, kind="a2a-chunk")
        assert task_kind_breakdown(registry) == {
            "a2a-chunk": {"count": 1.0, "seconds": 0.0},
            "gate": {"count": 3.0, "seconds": 0.5},
        }

    def test_empty_registry_gives_empty_breakdown(self):
        registry = MetricsRegistry()
        assert task_kind_breakdown(registry) == {}
        report = build_run_report([], registry)
        assert "tasks" not in report

    def test_taskgraph_run_reports_task_section(self):
        registry = MetricsRegistry()
        engine = engine_for(
            "expert-centric", small_config(), small_cluster(),
            rng=np.random.default_rng(0), imbalance=0.3, metrics=registry,
        )
        report = build_run_report([engine.run_iteration()], registry)
        tasks = report["tasks"]
        assert tasks["expert-compute"]["count"] > 0
        assert tasks["expert-compute"]["seconds"] > 0
        assert all(entry["count"] > 0 for entry in tasks.values())


class TestRunReportIO:
    def test_write_run_report_round_trips(self, tmp_path):
        import json

        registry = MetricsRegistry()
        engine = engine_for(
            "data-centric", small_config(), small_cluster(),
            rng=np.random.default_rng(0), imbalance=0.3, metrics=registry,
        )
        report = build_run_report(
            [engine.run_iteration()], registry, model="small"
        )
        path = tmp_path / "report.json"
        write_run_report(path, report)
        loaded = json.loads(path.read_text())
        # JSON round-trip loses only numpy scalar types, not values.
        assert loaded == json.loads(json.dumps(report))
        assert loaded["run"] == {"model": "small"}
        assert loaded["iterations"][0]["seconds"] == pytest.approx(
            report["iterations"][0]["seconds"]
        )
