"""Tests for the per-GPU memory model (Fig. 16's OOM behaviour)."""

import pytest

from repro.config import moe_bert, moe_gpt, moe_transformer_xl
from repro.core import (
    estimate_data_centric,
    estimate_expert_centric,
    estimate_mixed,
)
from repro.core.memory_model import check_fits
from repro.netsim import OutOfMemoryError
from repro.units import GIB

A100 = 80 * GIB


def seq_sensitivity_config(factory, seq_len):
    """The §7.4 sequence-length sweep configs."""
    if factory is moe_bert:
        return factory(32).scaled(batch_size=256, seq_len=seq_len, top_k=4)
    if factory is moe_gpt:
        return factory(32).scaled(batch_size=32, seq_len=seq_len, top_k=8)
    return factory(32).scaled(batch_size=64, seq_len=seq_len, top_k=2)


class TestFig16OOMBoundary:
    def test_tutel_ooms_on_moe_bert_s512(self):
        """Fig. 16: expert-centric runs out of GPU memory at MoE-BERT S=512."""
        config = seq_sensitivity_config(moe_bert, 512)
        estimate = estimate_expert_centric(config, 32)
        assert estimate.total > A100
        with pytest.raises(OutOfMemoryError):
            check_fits(estimate, A100)

    def test_janus_fits_on_moe_bert_s512(self):
        """...while data-centric Janus trains the same config fine."""
        config = seq_sensitivity_config(moe_bert, 512)
        estimate = estimate_data_centric(config, 32)
        assert estimate.total < A100
        check_fits(estimate, A100)

    def test_both_fit_on_moe_bert_s256(self):
        config = seq_sensitivity_config(moe_bert, 256)
        assert estimate_expert_centric(config, 32).total < A100
        assert estimate_data_centric(config, 32).total < A100

    @pytest.mark.parametrize("factory", [moe_gpt, moe_transformer_xl])
    @pytest.mark.parametrize("seq_len", [256, 512])
    def test_other_models_fit_everywhere(self, factory, seq_len):
        config = seq_sensitivity_config(factory, seq_len)
        assert estimate_expert_centric(config, 32).total < A100
        assert estimate_data_centric(config, 32).total < A100

    @pytest.mark.parametrize(
        "factory", [moe_bert, moe_gpt, moe_transformer_xl]
    )
    def test_table1_configs_fit(self, factory):
        config = factory(32)
        assert estimate_expert_centric(config, 32).total < A100
        assert estimate_data_centric(config, 32).total < A100


class TestEstimateStructure:
    def test_dc_extra_independent_of_seq_scaling_vs_ec(self):
        """EC's paradigm overhead grows with token volume; DC's stays tied
        to expert size (the mechanism behind the OOM asymmetry)."""
        short = seq_sensitivity_config(moe_bert, 256)
        long = seq_sensitivity_config(moe_bert, 512)
        ec_growth = (
            estimate_expert_centric(long, 32).paradigm_extra
            / estimate_expert_centric(short, 32).paradigm_extra
        )
        dc_growth = (
            estimate_data_centric(long, 32).paradigm_extra
            / estimate_data_centric(short, 32).paradigm_extra
        )
        assert ec_growth == pytest.approx(2.0)
        assert dc_growth < ec_growth

    def test_mixed_interpolates(self):
        config = moe_bert(32)
        ec = estimate_mixed(config, 32, 4, 0).total
        dc = estimate_mixed(config, 32, 0, 4).total
        mixed = estimate_mixed(config, 32, 2, 2).total
        assert dc < mixed < ec

    def test_mixed_requires_full_coverage(self):
        with pytest.raises(ValueError):
            estimate_mixed(moe_bert(32), 32, 1, 1)

    def test_total_is_sum_of_parts(self):
        estimate = estimate_expert_centric(moe_gpt(32), 32)
        assert estimate.total == pytest.approx(
            estimate.weights
            + estimate.activations
            + estimate.moe_stash
            + estimate.paradigm_extra
        )

    def test_weights_grow_with_local_experts(self):
        few = estimate_data_centric(moe_bert(32), 32).weights
        many = estimate_data_centric(moe_bert(32), 8).weights
        assert many > few
