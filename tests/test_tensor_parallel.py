"""Tests for the §9 tensor-parallel sharding analysis."""

import pytest

from repro.config import moe_bert, moe_transformer_xl
from repro.core import Paradigm
from repro.core.tensor_parallel import plan_tensor_parallel


class TestTensorParallelPlan:
    def test_tp1_matches_base_analysis(self):
        config = moe_transformer_xl(32)
        plan = plan_tensor_parallel(config, 0, 4, 8, tp_degree=1)
        assert plan.base_ratio == pytest.approx(16.0)
        assert plan.effective_ratio == pytest.approx(16.0)
        assert plan.shard_bytes == config.expert_bytes

    def test_tp_shrinks_shard_and_grows_ratio(self):
        config = moe_transformer_xl(32)
        # With tp=4 there are 8 EP groups, so E=4 per group.
        plan = plan_tensor_parallel(config, 0, 4, 8, tp_degree=4)
        assert plan.experts_per_group == 4
        assert plan.shard_bytes == config.expert_bytes / 4
        # base R with E=4 is 16/4 = 4; effective = 4 * tp = 16.
        assert plan.base_ratio == pytest.approx(4.0)
        assert plan.effective_ratio == pytest.approx(16.0)

    def test_effective_ratio_invariant_under_tp(self):
        """The module's analytical result: TP shrinks shards and grows E
        per group by the same factor, so the paradigm choice is invariant
        in tp_degree."""
        config = moe_bert(32)
        plans = [
            plan_tensor_parallel(config, 1, 4, 8, tp_degree=tp)
            for tp in (1, 2, 4, 8)
        ]
        ratios = [plan.effective_ratio for plan in plans]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)
        assert len({plan.paradigm for plan in plans}) == 1
        # While the per-pull granularity shrinks monotonically.
        shards = [plan.shard_bytes for plan in plans]
        assert shards == sorted(shards, reverse=True)

    def test_threshold_respected(self):
        config = moe_transformer_xl(32)
        plan = plan_tensor_parallel(config, 0, 4, 8, tp_degree=1, threshold=20)
        assert plan.paradigm is Paradigm.EXPERT_CENTRIC

    def test_invalid_tp_rejected(self):
        config = moe_transformer_xl(32)
        with pytest.raises(ValueError):
            plan_tensor_parallel(config, 0, 4, 8, tp_degree=0)
        with pytest.raises(ValueError):
            plan_tensor_parallel(config, 0, 4, 8, tp_degree=5)  # 32 % 5 != 0

    def test_uneven_expert_split_rejected(self):
        config = moe_transformer_xl(16)  # 16 experts
        with pytest.raises(ValueError):
            # tp=1 -> 32 EP groups > 16 experts.
            plan_tensor_parallel(config, 0, 4, 8, tp_degree=1)
