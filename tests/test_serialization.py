"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.models import MoETransformer
from repro.tensorlib import Adam, Linear, SGD, Sequential, Tensor
from repro.tensorlib.serialization import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

RNG = np.random.default_rng(2)


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 8, rng=rng), Linear(8, 3, rng=rng))


class TestCheckpointRoundTrip:
    def test_module_round_trip(self, tmp_path):
        src = small_net(seed=1)
        dst = small_net(seed=2)
        path = tmp_path / "model.npz"
        save_checkpoint(path, src)
        load_checkpoint(path, dst)
        x = Tensor(RNG.standard_normal((4, 6)))
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy())

    def test_metadata_round_trip(self, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(path, small_net(), metadata={"step": 7, "loss": 1.5})
        meta = load_checkpoint(path, small_net())
        assert meta == {"step": 7, "loss": 1.5}

    def test_suffix_added_automatically_on_load(self, tmp_path):
        path = tmp_path / "model"
        save_checkpoint(path, small_net(seed=1))  # np.savez appends .npz
        dst = small_net(seed=2)
        load_checkpoint(tmp_path / "model", dst)

    def test_adam_state_round_trip(self, tmp_path):
        net = small_net(seed=1)
        optimizer = Adam(net.parameters(), lr=0.01)
        target = Tensor(np.ones((4, 3)))
        x = Tensor(RNG.standard_normal((4, 6)))
        for _ in range(3):
            optimizer.zero_grad()
            ((net(x) - target) ** 2).sum().backward()
            optimizer.step()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net, optimizer)

        restored_net = small_net(seed=9)
        restored_opt = Adam(restored_net.parameters(), lr=0.01)
        load_checkpoint(path, restored_net, restored_opt)
        assert restored_opt._step == optimizer._step
        for a, b in zip(optimizer._m, restored_opt._m):
            np.testing.assert_allclose(a, b)

        # Continuing training from either copy yields identical params.
        for opt, model in ((optimizer, net), (restored_opt, restored_net)):
            opt.zero_grad()
            ((model(x) - target) ** 2).sum().backward()
            opt.step()
        for a, b in zip(net.parameters(), restored_net.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_sgd_momentum_round_trip(self, tmp_path):
        net = small_net(seed=1)
        optimizer = SGD(net.parameters(), lr=0.1, momentum=0.9)
        x = Tensor(RNG.standard_normal((4, 6)))
        optimizer.zero_grad()
        (net(x) ** 2).sum().backward()
        optimizer.step()
        path = tmp_path / "sgd.npz"
        save_checkpoint(path, net, optimizer)
        restored_net = small_net(seed=3)
        restored_opt = SGD(restored_net.parameters(), lr=0.1, momentum=0.9)
        load_checkpoint(path, restored_net, restored_opt)
        for a, b in zip(optimizer._velocity, restored_opt._velocity):
            np.testing.assert_allclose(a, b)

    def test_full_moe_model_round_trip(self, tmp_path):
        config = ModelConfig(
            name="t", batch_size=2, seq_len=4, top_k=2, hidden_dim=16,
            num_blocks=2, experts_per_block={1: 4}, num_heads=4,
            vocab_size=30,
        )
        src = MoETransformer(config, rng=np.random.default_rng(1))
        dst = MoETransformer(config, rng=np.random.default_rng(2))
        path = tmp_path / "moe.npz"
        save_checkpoint(path, src)
        load_checkpoint(path, dst)
        tokens = RNG.integers(0, 30, size=(2, 4))
        np.testing.assert_allclose(src(tokens).numpy(), dst(tokens).numpy())


class TestCheckpointErrors:
    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, small_net())

    def test_optimizer_kind_mismatch_rejected(self, tmp_path):
        net = small_net(seed=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net, SGD(net.parameters(), lr=0.1))
        other = small_net(seed=1)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, other, Adam(other.parameters()))

    def test_missing_optimizer_state_rejected(self, tmp_path):
        net = small_net(seed=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, net, SGD(net.parameters(), lr=0.1))

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, small_net())
        wrong = Sequential(Linear(5, 5), Linear(5, 5))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(path, wrong)
