"""Golden-metrics regression: exact counter values for seeded runs.

The engine is deterministic, so every metric the registry collects for a
fixed (config, cluster, seed) is an exact constant.  These tests pin the
counters the same way ``TestGoldenRegression`` pins iteration times: any
change to scheduler behaviour, traffic accounting or the instrumentation
itself shows up as an exact-value diff here.

Also locks the headline guarantee: attaching a registry (and a shared
trace recorder) never changes simulated times — bit-identical, not
approximately equal.
"""

import numpy as np
import pytest

from repro.core import engine_for
from repro.metrics import MetricsRegistry
from repro.trace import TraceRecorder

from tests.conftest import small_cluster, small_config

EXPERT_BYTES = 131072.0  # hidden_dim=64 -> 2 * H * 4H * 4 bytes


def run_with_metrics(mode, iterations=1, trace=None):
    registry = MetricsRegistry()
    engine = engine_for(
        mode, small_config(), small_cluster(),
        rng=np.random.default_rng(0), imbalance=0.3,
        metrics=registry, trace=trace,
    )
    results = engine.run(iterations)
    return registry, results


def run_plain(mode, iterations=1):
    engine = engine_for(
        mode, small_config(), small_cluster(),
        rng=np.random.default_rng(0), imbalance=0.3,
    )
    return engine.run(iterations)


class TestBitIdenticalTimes:
    @pytest.mark.parametrize(
        "mode", ["expert-centric", "data-centric", "unified", "pipelined-ec"]
    )
    def test_metrics_never_change_simulated_time(self, mode):
        plain = run_plain(mode, iterations=2)
        _, instrumented = run_with_metrics(
            mode, iterations=2, trace=TraceRecorder()
        )
        for a, b in zip(plain, instrumented):
            assert a.seconds == b.seconds  # exact, not approx
            np.testing.assert_array_equal(
                a.nic_egress_bytes, b.nic_egress_bytes
            )


class TestGoldenCountersDataCentric:
    def test_pull_counters(self):
        registry, _ = run_with_metrics("data-centric")
        assert registry.counter("pull.issued", kind="internal") == 8.0
        assert registry.counter("pull.issued", kind="pcie") == 8.0
        assert registry.counter("pull.issued", kind="peer") == 8.0
        assert registry.counter("pull.issued", kind="backward") == 24.0
        assert registry.total("pull.issued") == 48.0
        assert registry.histogram("pull.latency_s", kind="internal").count == 8

    def test_cache_manager_counters(self):
        registry, _ = run_with_metrics("data-centric")
        assert registry.total("cache.requests") == 16.0
        assert registry.total("cache.hits") == 8.0
        assert registry.total("cache.misses") == 8.0
        # Every miss is one cross-machine fill by the Inter-Node Scheduler.
        assert registry.total("fetch.issued") == 8.0
        assert registry.total("cache.fills") == 8.0
        assert registry.counter("cache.fills", machine=0) == 4.0
        assert registry.counter("cache.fills", machine=1) == 4.0
        # Each hit saved one expert payload over the NICs.
        assert registry.total("cache.dedup_bytes_saved") == 8 * EXPERT_BYTES

    def test_egress_bytes_per_machine(self):
        registry, results = run_with_metrics("data-centric")
        for machine in (0, 1):
            assert registry.counter(
                "machine.egress_bytes", machine=machine
            ) == results[0].nic_egress_bytes[machine]
        # fwd: 8 fills; bwd: 8 pre-reduced gradient pushes.
        assert registry.total("machine.egress_bytes") == pytest.approx(
            16 * EXPERT_BYTES
        )

    def test_kernel_and_credit_gauges(self):
        registry, _ = run_with_metrics("data-centric")
        assert registry.gauge("sim.events_processed", iteration=0) == 1120.0
        assert registry.gauge("sim.processes_started", iteration=0) == 135.0
        for rank in range(4):
            assert registry.gauge(
                "credit.max_occupancy", rank=rank, iteration=0
            ) == 3.0
            assert registry.gauge(
                "credit.final_level", rank=rank, iteration=0
            ) == 16.0

    def test_strategy_decisions(self):
        registry, _ = run_with_metrics("data-centric")
        for block in (1, 3):
            assert registry.counter(
                "block.strategy", block=block, strategy="data-centric"
            ) == 1.0


class TestGoldenCountersExpertCentric:
    def test_no_pull_machinery_is_touched(self):
        registry, _ = run_with_metrics("expert-centric")
        assert registry.total("pull.issued") == 0.0
        assert registry.total("cache.requests") == 0.0
        assert registry.total("fetch.issued") == 0.0
        assert registry.total("cache.fills") == 0.0

    def test_a2a_traffic_and_kernel_counters(self):
        registry, _ = run_with_metrics("expert-centric")
        assert registry.counter(
            "machine.egress_bytes", machine=0
        ) == 2096128.0000000016
        assert registry.gauge("sim.events_processed", iteration=0) == 428.0
        assert registry.gauge("sim.processes_started", iteration=0) == 57.0
        # Synchronous All-to-All never draws a credit.
        for rank in range(4):
            assert registry.gauge(
                "credit.max_occupancy", rank=rank, iteration=0
            ) == 0.0

    def test_pipelined_ec_runs_more_processes(self):
        registry, _ = run_with_metrics("pipelined-ec")
        # 4 chunks per All-to-All -> far more kernel activity than plain EC.
        assert registry.gauge("sim.events_processed", iteration=0) == 1156.0
        assert registry.gauge("sim.processes_started", iteration=0) == 109.0
        for block in (1, 3):
            assert registry.counter(
                "block.strategy", block=block, strategy="pipelined-ec"
            ) == 1.0


class TestGoldenCountersUnified:
    def test_unified_selects_data_centric_here_and_matches_it(self):
        unified_registry, unified_results = run_with_metrics("unified")
        dc_registry, dc_results = run_with_metrics("data-centric")
        # R > 1 for both MoE blocks at this scale: unified == data-centric.
        assert unified_results[0].seconds == dc_results[0].seconds
        assert unified_registry.total("pull.issued") == 48.0
        assert unified_registry.total("cache.hits") == 8.0
        for block in (1, 3):
            assert unified_registry.counter(
                "block.strategy", block=block, strategy="data-centric"
            ) == 1.0


class TestMultiIterationAccumulation:
    def test_counters_accumulate_linearly(self):
        one, _ = run_with_metrics("data-centric", iterations=1)
        two, _ = run_with_metrics(
            "data-centric", iterations=2, trace=TraceRecorder()
        )
        for name in ("pull.issued", "cache.requests", "cache.hits",
                     "fetch.issued", "machine.egress_bytes"):
            assert two.total(name) == 2 * one.total(name)

    def test_per_iteration_gauges_are_scoped(self):
        registry, results = run_with_metrics(
            "data-centric", iterations=2, trace=TraceRecorder()
        )
        for iteration, result in enumerate(results):
            assert registry.gauge(
                "iter.seconds", iteration=iteration
            ) == result.seconds
        assert results[0].seconds == results[1].seconds
