"""Tests for functional composites, modules and optimizers."""

import numpy as np
import pytest

from repro.tensorlib import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    functional as F,
)
from repro.tensorlib.gradcheck import gradcheck

RNG = np.random.default_rng(11)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((4, 7)))
        probs = F.softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)
        assert (probs >= 0).all()

    def test_softmax_is_shift_invariant(self):
        x = RNG.standard_normal((3, 5))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        weights = RNG.standard_normal((3, 4))
        gradcheck(lambda t: (F.softmax(t[0]) * weights).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((2, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(),
            np.log(F.softmax(x).numpy()),
            atol=1e-12,
        )

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 8)), requires_grad=True)
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(8))

    def test_cross_entropy_gradcheck(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        gradcheck(lambda t: F.cross_entropy(t[0], targets), [logits])

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))

    def test_layer_norm_normalizes(self):
        x = Tensor(RNG.standard_normal((10, 16)) * 5 + 3)
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.numpy().mean(axis=-1), 0, atol=1e-9)
        np.testing.assert_allclose(out.numpy().std(axis=-1), 1, atol=1e-3)

    def test_layer_norm_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 5)), requires_grad=True)
        w = Tensor(RNG.standard_normal(5), requires_grad=True)
        b = Tensor(RNG.standard_normal(5), requires_grad=True)
        gradcheck(lambda t: (F.layer_norm(t[0], t[1], t[2]) ** 2).sum(),
                  [x, w, b])

    def test_causal_mask(self):
        mask = F.attention_scores_mask(4, causal=True)
        assert mask[0, 1] == -1e9
        assert mask[1, 0] == 0
        assert (np.diag(mask) == 0).all()
        assert (F.attention_scores_mask(4, causal=False) == 0).all()


class TestModules:
    def test_linear_shapes_and_grad(self):
        layer = Linear(8, 4, rng=RNG)
        x = Tensor(RNG.standard_normal((10, 8)), requires_grad=True)
        out = layer(x)
        assert out.shape == (10, 4)
        out.sum().backward()
        assert layer.weight.grad.shape == (8, 4)
        assert layer.bias.grad.shape == (4,)

    def test_linear_no_bias(self):
        layer = Linear(4, 4, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup_and_bounds(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_layernorm_module(self):
        norm = LayerNorm(6)
        x = Tensor(RNG.standard_normal((4, 6)))
        out = norm(x)
        np.testing.assert_allclose(out.numpy().mean(axis=-1), 0, atol=1e-9)

    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 4, rng=RNG)
                self.fc2 = Linear(4, 2, rng=RNG)

            def forward(self, x):
                return self.fc2(self.fc1(x))

        names = [name for name, _ in Net().named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_state_dict_round_trip(self):
        src = Linear(5, 3, rng=RNG)
        dst = Linear(5, 3, rng=np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        x = Tensor(RNG.standard_normal((2, 5)))
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy())

    def test_state_dict_mismatch_raises(self):
        layer = Linear(5, 3, rng=RNG)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((5, 3))})

    def test_state_dict_shape_mismatch_raises(self):
        layer = Linear(5, 3, rng=RNG)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_sequential_composes(self):
        net = Sequential(Linear(4, 8, rng=RNG), Linear(8, 2, rng=RNG))
        x = Tensor(RNG.standard_normal((3, 4)))
        assert net(x).shape == (3, 2)
        assert len(net) == 2
        assert len(net.parameters()) == 4

    def test_num_parameters(self):
        layer = Linear(10, 5, rng=RNG)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_zero_grad_clears(self):
        layer = Linear(3, 3, rng=RNG)
        layer(Tensor(np.ones((2, 3)), requires_grad=True)).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestOptim:
    def _quadratic_setup(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return target, param

    def test_sgd_converges_on_quadratic(self):
        target, param = self._quadratic_setup()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        target, param = self._quadratic_setup()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        target, param = self._quadratic_setup()
        opt = Adam([param], lr=0.1)
        for _ in range(400):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_step_skips_params_without_grad(self):
        param = Parameter(np.ones(2))
        before = param.data.copy()
        SGD([param], lr=0.5).step()
        np.testing.assert_allclose(param.data, before)

    def test_validation(self):
        param = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([param], lr=0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam([param], lr=-1)
