"""API-contract tests for the MoE executors (inputs, state, errors)."""

import numpy as np
import pytest

from repro.runtime import (
    CommLog,
    DataCentricMoE,
    ExpertCentricMoE,
    RankLayout,
)
from repro.tensorlib import Tensor

HIDDEN = 8


def tokens_for(layout, count=10, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Tensor(rng.standard_normal((count, HIDDEN)))
        for _ in range(layout.world_size)
    ]


class TestExecutorContracts:
    def test_wrong_worker_count_rejected(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(HIDDEN, 4, 2, layout)
        with pytest.raises(ValueError):
            executor.run(tokens_for(layout)[:-1])

    def test_cost_model_sizes(self):
        layout = RankLayout(2, 2)
        executor = DataCentricMoE(
            HIDDEN, 4, 2, layout, ffn_mult=4, dtype_bytes=2
        )
        assert executor.token_bytes == HIDDEN * 2
        assert executor.expert_bytes == 2 * HIDDEN * 4 * HIDDEN * 2

    def test_shared_comm_log_accumulates_across_executors(self):
        layout = RankLayout(2, 2)
        log = CommLog(layout)
        first = ExpertCentricMoE(HIDDEN, 4, 2, layout, comm_log=log)
        second = DataCentricMoE(HIDDEN, 4, 2, layout, comm_log=log)
        first.run(tokens_for(layout))
        before = log.total_bytes()
        second.run(tokens_for(layout))
        assert log.total_bytes() > before

    def test_export_import_state_round_trip(self):
        layout = RankLayout(2, 2)
        src = ExpertCentricMoE(
            HIDDEN, 4, 2, layout, rng=np.random.default_rng(1)
        )
        dst = ExpertCentricMoE(
            HIDDEN, 4, 2, layout, rng=np.random.default_rng(2)
        )
        dst.import_state(src.export_state())
        batch = tokens_for(layout, seed=5)
        for a, b in zip(src.run(batch), dst.run(batch)):
            np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_import_state_shape_mismatch_rejected(self):
        layout = RankLayout(2, 2)
        src = ExpertCentricMoE(16, 4, 2, layout)
        dst = ExpertCentricMoE(HIDDEN, 4, 2, layout)
        with pytest.raises((KeyError, ValueError)):
            dst.import_state(src.export_state())

    def test_zero_grad_clears_everything(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(HIDDEN, 4, 2, layout)
        outputs = executor.run(tokens_for(layout))
        total = None
        for out in outputs:
            term = (out * out).sum()
            total = term if total is None else total + term
        total.backward()
        executor.finish_backward()
        assert any(p.grad is not None for p in executor.parameters())
        executor.zero_grad()
        assert all(p.grad is None for p in executor.parameters())

    def test_parameters_cover_gate_and_experts(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(HIDDEN, 4, 2, layout)
        # gate proj + 4 experts x (2 weights + 2 biases)
        assert len(executor.parameters()) == 1 + 4 * 4

    def test_pulled_expert_count_reflects_cache(self):
        layout = RankLayout(2, 2)
        executor = DataCentricMoE(HIDDEN, 4, 2, layout)
        batch = [
            Tensor(np.random.default_rng(0).standard_normal((64, HIDDEN)))
            for _ in range(4)
        ]
        executor.run(batch)
        # Every expert gets exactly one replica per machine (each machine
        # hosts a non-owner worker for every expert; the owner itself uses
        # the canonical module): 2 machines x 4 experts = 8.
        assert executor.pulled_expert_count() == 8


class TestGoodputParameters:
    def test_payload_scales_elapsed_not_goodput(self):
        from repro.netsim import measure_all_to_all_goodput

        small = measure_all_to_all_goodput(1, payload_bytes_per_pair=4e6)
        large = measure_all_to_all_goodput(1, payload_bytes_per_pair=16e6)
        assert large.elapsed_seconds > small.elapsed_seconds
        # Goodput converges with payload (latency amortized).
        assert large.goodput_gbps == pytest.approx(
            small.goodput_gbps, rel=0.2
        )
