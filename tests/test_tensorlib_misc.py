"""Coverage for remaining tensorlib surface: constructors, shaping, guards."""

import numpy as np
import pytest

from repro.tensorlib import Tensor, no_grad
from repro.tensorlib.gradcheck import gradcheck

RNG = np.random.default_rng(13)


class TestConstructors:
    def test_zeros_ones(self):
        z = Tensor.zeros(2, 3)
        o = Tensor.ones(4)
        assert z.shape == (2, 3) and (z.numpy() == 0).all()
        assert o.shape == (4,) and (o.numpy() == 1).all()

    def test_randn_seeded(self):
        a = Tensor.randn(5, rng=np.random.default_rng(1))
        b = Tensor.randn(5, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.numpy(), b.numpy())

    def test_randn_scale(self):
        x = Tensor.randn(10000, rng=np.random.default_rng(1), scale=0.01)
        assert abs(float(x.numpy().std()) - 0.01) < 0.002

    def test_as_tensor_passthrough(self):
        x = Tensor([1.0])
        assert Tensor.as_tensor(x) is x
        y = Tensor.as_tensor([2.0])
        assert isinstance(y, Tensor)

    def test_requires_grad_respects_no_grad_context(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
        assert not x.requires_grad


class TestShapingAndIndexing:
    def test_swapaxes_grad(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        gradcheck(lambda t: (t[0].swapaxes(0, 2) ** 2).sum(), [x])

    def test_reshape_accepts_tuple(self):
        x = Tensor(RNG.standard_normal(12))
        assert x.reshape((3, 4)).shape == (3, 4)
        assert x.reshape(3, 4).shape == (3, 4)

    def test_transpose_default_reverses(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_concat_axis1(self):
        a = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal((2, 5)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 8)
        gradcheck(
            lambda t: (Tensor.concat([t[0], t[1]], axis=1) ** 2).sum(), [a, b]
        )

    def test_scatter_rows_empty_index(self):
        values = Tensor(np.zeros((0, 4)))
        out = Tensor.scatter_rows(3, np.array([], dtype=int), values)
        assert out.shape == (3, 4)
        assert (out.numpy() == 0).all()

    def test_gather_rows_repeated_index_grad_accumulates(self):
        x = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        x.gather_rows(np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(x.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(x.grad[0], 0.0)


class TestGuards:
    def test_item_on_multielement_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        assert (3 - x).item() == pytest.approx(1.0)
        assert (8 / x).item() == pytest.approx(4.0)

    def test_sub_grad(self):
        x = Tensor([5.0], requires_grad=True)
        y = Tensor([3.0], requires_grad=True)
        (x - y).sum().backward()
        assert x.grad[0] == pytest.approx(1.0)
        assert y.grad[0] == pytest.approx(-1.0)

    def test_detach_shares_no_graph(self):
        x = Tensor([1.0], requires_grad=True)
        d = x.detach()
        (d * 3).sum()  # no error, no graph
        assert not d.requires_grad
        assert d.numpy() is not x.numpy() or True  # copy semantics

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_mean_over_axis_tuple(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)))
        out = x.mean(axis=(0, 2))
        np.testing.assert_allclose(
            out.numpy(), x.numpy().mean(axis=(0, 2)), atol=1e-12
        )

    def test_gradcheck_rejects_non_scalar(self):
        x = Tensor(RNG.standard_normal(3), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(lambda t: t[0] * 2, [x])
