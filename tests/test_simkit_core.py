"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simkit import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_value_passed_through():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_process_return_value_is_event_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def make(name):
        def proc():
            yield env.timeout(1)
            order.append(name)

        return proc

    for name in "abcd":
        env.process(make(name)())
    env.run()
    assert order == list("abcd")


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(4)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 4


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(7, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_failed_event_raises_in_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_all_of_waits_for_slowest():
    env = Environment()
    times = []

    def proc():
        yield AllOf(env, [env.timeout(3), env.timeout(9), env.timeout(6)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [9]


def test_any_of_waits_for_fastest():
    env = Environment()
    times = []

    def proc():
        yield AnyOf(env, [env.timeout(3), env.timeout(9)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [3]


def test_and_or_operators():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(2) & env.timeout(5)
        times.append(env.now)
        yield env.timeout(10) | env.timeout(1)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [5, 6]


def test_empty_all_of_triggers_immediately():
    env = Environment()
    done = []

    def proc():
        value = yield AllOf(env, [])
        done.append(value)

    env.process(proc())
    env.run()
    assert done == [{}]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt(cause="stop")

    target = env.process(victim())
    env.process(interrupter(target))
    env.run()
    assert log == [(5, "stop")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_on_already_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    log = []

    def proc():
        yield env.timeout(1)
        value = yield gate
        log.append((env.now, value))

    env.process(proc())
    env.run()
    assert log == [(1, "early")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(12)
    assert env.peek() == 12
    env.run()
    assert env.peek() == float("inf")


def test_yield_non_event_raises():
    env = Environment()

    def proc():
        yield "not an event"

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_nested_processes_compose():
    env = Environment()

    def leaf(duration):
        yield env.timeout(duration)
        return duration

    def mid():
        first = yield env.process(leaf(2))
        second = yield env.process(leaf(3))
        return first + second

    def root(results):
        total = yield env.process(mid())
        results.append((env.now, total))

    results = []
    env.process(root(results))
    env.run()
    assert results == [(5, 5)]
