"""Tests for workload construction and the synthetic routing generators."""

import numpy as np
import pytest

from repro.cluster import Cluster, MachineSpec
from repro.config import moe_bert
from repro.core import build_workload
from repro.workloads import (
    assignment_imbalance,
    balanced_assignment,
    zipf_assignment,
    zipf_weights,
)


from tests.conftest import small_config as _small_config  # noqa: E402


def small_config():
    return _small_config(
        batch_size=8, seq_len=16, experts_per_block={1: 8, 3: 8}
    )


class TestAssignments:
    def test_balanced_splits_evenly(self):
        counts = balanced_assignment(100, 4)
        assert counts.sum() == 100
        assert counts.max() - counts.min() <= 1

    def test_balanced_with_remainder(self):
        counts = balanced_assignment(10, 4)
        assert sorted(counts) == [2, 2, 3, 3]

    def test_zipf_concentrates_load(self):
        rng = np.random.default_rng(0)
        skewed = zipf_assignment(100000, 16, skew=1.5, rng=rng)
        assert skewed.sum() == 100000
        assert assignment_imbalance(skewed) > 2.0

    def test_zero_skew_is_roughly_uniform(self):
        rng = np.random.default_rng(0)
        counts = zipf_assignment(100000, 16, skew=0.0, rng=rng)
        assert assignment_imbalance(counts) < 1.1

    def test_imbalance_of_balanced_is_one(self):
        assert assignment_imbalance(balanced_assignment(64, 8)) == 1.0
        assert assignment_imbalance(np.zeros(4)) == 1.0

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            zipf_assignment(10, 4, skew=-1)
        with pytest.raises(ValueError):
            zipf_weights(4, -0.5)

    def test_zipf_weights_normalized(self):
        weights = zipf_weights(8, 1.2, rng=np.random.default_rng(1))
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()


class TestBuildWorkload:
    def test_block_structure_follows_config(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        assert len(workload.blocks) == 4
        assert [b.is_moe for b in workload.blocks] == [False, True, False, True]

    def test_routing_rows_sum_to_tokens(self):
        config = small_config()
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(config, cluster)
        for block in workload.moe_blocks():
            np.testing.assert_array_equal(
                block.routing.sum(axis=1),
                np.full(4, config.tokens_per_worker),
            )

    def test_balanced_routing_is_uniform(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster, imbalance=0)
        block = workload.moe_blocks()[0]
        assert block.routing.max() - block.routing.min() <= 1

    def test_imbalanced_routing_shares_hot_experts(self):
        """All workers must overload the same experts (§3.1)."""
        cluster = Cluster(2, MachineSpec(num_gpus=4))
        config = small_config().scaled(batch_size=64)
        workload = build_workload(
            config, cluster, imbalance=1.5, rng=np.random.default_rng(3)
        )
        block = workload.moe_blocks()[0]
        per_worker_hot = block.routing.argmax(axis=1)
        # The hottest expert is (near-)identical across workers.
        assert len(set(per_worker_hot.tolist())) <= 2

    def test_dispatch_matrix_has_zero_diagonal(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        block = workload.moe_blocks()[0]
        matrix = block.tokens_sent_matrix(
            workload.placement(block.index), workload.token_bytes
        )
        assert matrix.shape == (4, 4)
        assert matrix.diagonal().sum() == 0

    def test_dispatch_matrix_conserves_offworker_tokens(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        block = workload.moe_blocks()[0]
        placement = workload.placement(block.index)
        matrix = block.tokens_sent_matrix(placement, workload.token_bytes)
        for rank in range(4):
            off_worker = sum(
                block.routing[rank][e]
                for e in range(block.num_experts)
                if placement.owner(e) != rank
            )
            assert matrix[rank].sum() == pytest.approx(
                off_worker * workload.token_bytes
            )

    def test_expert_compute_seconds(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        forward = workload.expert_compute_seconds(100, gpu_flops=1e12)
        backward = workload.expert_compute_seconds(100, 1e12, backward=True)
        assert forward == pytest.approx(100 * workload.expert_flops / 1e12)
        assert backward == pytest.approx(2 * forward)

    def test_placement_requires_moe_block(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        with pytest.raises(ValueError):
            workload.placement(0)

    def test_dense_blocks_have_ffn_flops(self):
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(small_config(), cluster)
        dense = workload.blocks[0]
        moe = workload.blocks[1]
        assert dense.ffn_flops > 0
        assert moe.ffn_flops == 0
        assert moe.dense_flops > dense.dense_flops - dense.ffn_flops  # + gate

    def test_paper_scale_workload(self):
        cluster = Cluster(4)
        workload = build_workload(moe_bert(32), cluster)
        assert workload.world_size == 32
        block = workload.moe_blocks()[0]
        assert block.routing.shape == (32, 32)
