"""Edge-case tests for the simulation kernel beyond the basics."""

import pytest

from repro.simkit import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


class TestConditionEdgeCases:
    def test_all_of_with_failure_propagates(self):
        env = Environment()
        gate = env.event()
        caught = []

        def proc():
            try:
                yield AllOf(env, [env.timeout(5), gate])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield env.timeout(1)
            gate.fail(RuntimeError("bad"))

        env.process(proc())
        env.process(failer())
        env.run()
        assert caught == ["bad"]

    def test_any_of_value_maps_triggered_events(self):
        env = Environment()
        results = []

        def proc():
            fast = env.timeout(1, value="fast")
            slow = env.timeout(10, value="slow")
            value = yield AnyOf(env, [fast, slow])
            results.append(list(value.values()))

        env.process(proc())
        env.run()
        assert results == [["fast"]]

    def test_nested_conditions(self):
        env = Environment()
        times = []

        def proc():
            yield (env.timeout(1) & env.timeout(2)) | env.timeout(10)
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [2]

    def test_condition_over_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("x")
        times = []

        def proc():
            yield env.timeout(1)
            yield AllOf(env, [done])
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1]


class TestInterruptEdgeCases:
    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(5)
            log.append(("done", env.now))

        def interrupter(target):
            yield env.timeout(2)
            target.interrupt()

        target = env.process(victim())
        env.process(interrupter(target))
        env.run()
        assert log == [("interrupted", 2), ("done", 7)]

    def test_interrupt_while_waiting_on_resource(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def holder():
            with resource.request() as req:
                yield req
                yield env.timeout(50)

        def waiter():
            request = resource.request()
            try:
                yield request
            except Interrupt:
                request.cancel()
                log.append(("gave-up", env.now))

        def interrupter(target):
            yield env.timeout(3)
            target.interrupt()

        env.process(holder())
        target = env.process(waiter())
        env.process(interrupter(target))
        env.run()
        assert log == [("gave-up", 3)]
        assert not resource.queue

    def test_cannot_self_interrupt(self):
        env = Environment()
        errors = []

        def proc():
            current = env.active_process
            try:
                current.interrupt()
            except SimulationError:
                errors.append(True)
            yield env.timeout(1)

        env.process(proc())
        env.run()
        assert errors == [True]


class TestStoreAndPriorityEdgeCases:
    def test_store_multiple_waiting_consumers_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        for name in ("a", "b"):
            env.process(consumer(name))

        def producer():
            yield env.timeout(1)
            yield store.put(1)
            yield store.put(2)

        env.process(producer())
        env.run()
        assert got == [("a", 1), ("b", 2)]

    def test_priority_resource_preserves_running_user(self):
        env = Environment()
        resource = PriorityResource(env, capacity=1)
        order = []

        def low_then_high():
            with resource.request(priority=5) as req:
                yield req
                order.append("low-start")
                env.process(high())
                yield env.timeout(10)
                order.append("low-end")

        def high():
            with resource.request(priority=0) as req:
                yield req
                order.append("high")

        env.process(low_then_high())
        env.run()
        # Priorities reorder the queue, they do not preempt the holder.
        assert order == ["low-start", "low-end", "high"]

    def test_zero_delay_timeouts_preserve_creation_order(self):
        env = Environment()
        order = []

        def proc(name):
            yield env.timeout(0)
            order.append(name)

        for name in "abc":
            env.process(proc(name))
        env.run()
        assert order == list("abc")


class TestRunSemantics:
    def test_step_on_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_future_time_with_no_events(self):
        env = Environment()
        env.run(until=100)
        assert env.now == 100

    def test_processes_spawned_during_run_execute(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(1)
            log.append(env.now)

        def parent():
            yield env.timeout(1)
            env.process(child())

        env.process(parent())
        env.run()
        assert log == [2]
