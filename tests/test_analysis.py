"""Tests for the analysis layer: Table 1 traffic rows and report formatting."""

import pytest

from repro.analysis import (
    format_speedup_bars,
    format_table,
    model_size_billion,
    table1,
    table1_row,
)
from repro.config import TABLE1_MODELS, moe_bert, moe_transformer_xl


class TestTable1Rows:
    def test_row_fields(self):
        row = table1_row(moe_bert(32), num_machines=4)
        assert row.model == "MoE-BERT"
        assert row.num_gpus == 32
        assert row.num_experts == 32
        assert row.expert_centric_gib > row.data_centric_gib
        assert row.reduction > 1

    def test_reduction_equals_r_for_single_expert_layers(self):
        """For E=1 blocks the EC/DC traffic ratio is exactly R."""
        row = table1_row(moe_transformer_xl(32), num_machines=4)
        assert row.reduction == pytest.approx(16.0)

    def test_full_table_has_six_rows(self):
        rows = table1(TABLE1_MODELS)
        assert len(rows) == 6
        assert {row.model for row in rows} == set(TABLE1_MODELS)

    def test_model_size_tracks_expert_count(self):
        small = model_size_billion(moe_bert(16), 16)
        large = model_size_billion(moe_bert(32), 32)
        assert large > small
        # Table 1: 0.42B and 0.73B.
        assert small == pytest.approx(0.42, rel=0.2)
        assert large == pytest.approx(0.73, rel=0.2)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # All data lines are equally wide (aligned columns).
        assert len(lines[3].rstrip()) <= len(lines[1]) + 6

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_speedup_bars_scale_to_peak(self):
        text = format_speedup_bars(["x", "y"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_speedup_bars_validation(self):
        with pytest.raises(ValueError):
            format_speedup_bars(["x"], [1.0, 2.0])
