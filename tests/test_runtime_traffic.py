"""Traffic accounting: the emulated runtime against §5.1.3's closed forms."""

import numpy as np
import pytest

from repro.core import comm_data_centric, comm_expert_centric
from repro.runtime import (
    CommLog,
    CommRecord,
    DataCentricMoE,
    ExpertCentricMoE,
    ExpertPlacement,
    RankLayout,
)
from repro.tensorlib import Tensor

HIDDEN = 16
DTYPE_BYTES = 4


class TestRankLayout:
    def test_machine_mapping(self):
        layout = RankLayout(3, 4)
        assert layout.world_size == 12
        assert layout.machine_of(7) == 1
        assert layout.local_rank_of(7) == 3
        assert layout.ranks_of_machine(2) == [8, 9, 10, 11]

    def test_same_machine(self):
        layout = RankLayout(2, 4)
        assert layout.same_machine(0, 3)
        assert not layout.same_machine(3, 4)

    def test_bounds(self):
        layout = RankLayout(2, 2)
        with pytest.raises(ValueError):
            layout.machine_of(4)
        with pytest.raises(ValueError):
            layout.ranks_of_machine(2)
        with pytest.raises(ValueError):
            RankLayout(0, 2)


class TestExpertPlacement:
    def test_contiguous_ownership(self):
        placement = ExpertPlacement(8, 4)
        assert placement.experts_per_worker == 2
        assert placement.owner(0) == 0
        assert placement.owner(5) == 2
        assert placement.experts_of(3) == (6, 7)

    def test_is_local(self):
        placement = ExpertPlacement(4, 4)
        assert placement.is_local(2, 2)
        assert not placement.is_local(2, 1)

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            ExpertPlacement(10, 4)

    def test_bounds(self):
        placement = ExpertPlacement(4, 2)
        with pytest.raises(ValueError):
            placement.owner(4)
        with pytest.raises(ValueError):
            placement.experts_of(2)


class TestCommLog:
    def test_record_and_totals(self):
        layout = RankLayout(2, 2)
        log = CommLog(layout)
        log.record("dispatch", 0, 3, 100)  # cross machine
        log.record("dispatch", 0, 1, 50)   # same machine
        assert log.total_bytes() == 150
        assert log.cross_machine_bytes() == 100

    def test_kind_filters(self):
        layout = RankLayout(2, 2)
        log = CommLog(layout)
        log.record("dispatch", 0, 2, 10)
        log.record("expert_pull", 2, 0, 20)
        assert log.total_bytes(["dispatch"]) == 10
        assert log.by_kind() == {"dispatch": 10.0, "expert_pull": 20.0}

    def test_machine_egress_ingress(self):
        layout = RankLayout(2, 2)
        log = CommLog(layout)
        log.record("dispatch", 0, 2, 10)
        log.record("dispatch", 3, 1, 30)
        np.testing.assert_allclose(log.machine_egress_bytes(), [10, 30])
        np.testing.assert_allclose(log.machine_ingress_bytes(), [30, 10])

    def test_rank_matrix(self):
        layout = RankLayout(1, 3)
        log = CommLog(layout)
        log.record("combine", 1, 2, 5)
        log.record("combine", 1, 2, 7)
        matrix = log.rank_matrix()
        assert matrix[1, 2] == 12
        assert matrix.sum() == 12

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CommRecord("gossip", 0, 1, 5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommRecord("dispatch", 0, 1, -5)

    def test_clear(self):
        layout = RankLayout(1, 2)
        log = CommLog(layout)
        log.record("dispatch", 0, 1, 5)
        log.clear()
        assert log.total_bytes() == 0

    def test_intra_machine_bytes(self):
        layout = RankLayout(2, 2)
        log = CommLog(layout)
        log.record("expert_pull", 0, 1, 7)   # same machine, different rank
        log.record("expert_pull", 0, 2, 11)  # cross machine
        log.record("expert_pull", 1, 1, 13)  # rank to itself: no movement
        assert log.intra_machine_bytes() == 7
        assert log.intra_machine_bytes(["grad_push"]) == 0
        assert log.cross_machine_bytes() == 11
        assert log.total_bytes() == 31


def run_iteration(executor, layout, tokens_per_worker=64, seed=0):
    rng = np.random.default_rng(seed)
    tokens = [
        Tensor(rng.standard_normal((tokens_per_worker, HIDDEN)))
        for _ in range(layout.world_size)
    ]
    outputs = executor.run(tokens)
    loss = None
    for out in outputs:
        term = (out * out).sum()
        loss = term if loss is None else loss + term
    loss.backward()
    executor.finish_backward()
    return executor


class TestDataCentricTraffic:
    def test_each_machine_pulls_each_external_expert_once(self):
        """The hierarchical cache invariant (§5.1.2): one cross-machine pull
        per (machine, external expert) regardless of how many local workers
        need the expert."""
        layout = RankLayout(2, 4)
        executor = DataCentricMoE(
            HIDDEN, 8, 4, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        run_iteration(executor, layout, tokens_per_worker=256)
        cross = executor.comm_log.cross_machine_bytes(["expert_pull"])
        # 2 machines x 4 external experts each, one pull per pair.
        expected = 2 * 4 * executor.expert_bytes
        assert cross == pytest.approx(expected)

    def test_forward_traffic_matches_comm_dc_formula(self):
        layout = RankLayout(2, 4)
        executor = DataCentricMoE(
            HIDDEN, 8, 4, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        run_iteration(executor, layout, tokens_per_worker=256)
        per_machine = executor.comm_log.machine_ingress_bytes(["expert_pull"])
        expected = comm_data_centric(
            hidden_dim=HIDDEN,
            experts_per_worker=1,
            workers_per_machine=4,
            num_machines=2,
            dtype_bytes=DTYPE_BYTES,
        )
        np.testing.assert_allclose(per_machine, expected)

    def test_grad_push_once_per_machine_expert(self):
        layout = RankLayout(2, 2)
        executor = DataCentricMoE(
            HIDDEN, 4, 2, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        run_iteration(executor, layout, tokens_per_worker=128)
        cross = executor.comm_log.cross_machine_bytes(["grad_push"])
        # Each machine pushes gradients for the 2 external experts it pulled.
        assert cross == pytest.approx(2 * 2 * executor.expert_bytes)

    def test_backward_traffic_equals_forward_traffic(self):
        """§5.1.3: DC backward volume equals forward volume."""
        layout = RankLayout(2, 2)
        executor = DataCentricMoE(
            HIDDEN, 4, 2, layout, rng=np.random.default_rng(1)
        )
        run_iteration(executor, layout, tokens_per_worker=128)
        log = executor.comm_log
        assert log.cross_machine_bytes(["grad_push"]) == pytest.approx(
            log.cross_machine_bytes(["expert_pull"])
        )

    def test_workload_balanced_across_machines(self):
        """Every machine sends/receives the same expert volume (§3.2)."""
        layout = RankLayout(4, 2)
        executor = DataCentricMoE(
            HIDDEN, 8, 2, layout, rng=np.random.default_rng(1)
        )
        run_iteration(executor, layout, tokens_per_worker=256)
        egress = executor.comm_log.machine_egress_bytes(["expert_pull"])
        assert np.allclose(egress, egress[0])


class TestExpertCentricTraffic:
    def test_dispatch_traffic_tracks_token_routing(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(
            HIDDEN, 4, 2, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        tokens_per_worker = 64
        run_iteration(executor, layout, tokens_per_worker=tokens_per_worker)
        log = executor.comm_log
        dispatch = log.total_bytes(["dispatch"])
        # Every routed slot that leaves its worker costs one token payload.
        total_slots = layout.world_size * tokens_per_worker * 2  # k=2
        # All slots except those landing on their own worker are shipped.
        decisions = executor.last_decisions
        placement = executor.placement
        kept = 0
        for rank, decision in enumerate(decisions):
            plan = decision.dispatch_plan()
            for expert in placement.experts_of(rank):
                kept += plan.segment(expert)[0].size
        expected = (total_slots - kept) * executor.token_bytes
        assert dispatch == pytest.approx(expected)

    def test_combine_equals_dispatch(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(
            HIDDEN, 4, 2, layout, rng=np.random.default_rng(1)
        )
        run_iteration(executor, layout, tokens_per_worker=64)
        log = executor.comm_log
        assert log.total_bytes(["combine"]) == pytest.approx(
            log.total_bytes(["dispatch"])
        )

    def test_backward_mirror_volumes(self):
        layout = RankLayout(2, 2)
        executor = ExpertCentricMoE(
            HIDDEN, 4, 2, layout, rng=np.random.default_rng(1)
        )
        run_iteration(executor, layout, tokens_per_worker=64)
        log = executor.comm_log
        assert log.total_bytes(["dispatch_grad"]) == pytest.approx(
            log.total_bytes(["combine"])
        )
        assert log.total_bytes(["combine_grad"]) == pytest.approx(
            log.total_bytes(["dispatch"])
        )

    def test_cross_machine_close_to_formula_lower_bound(self):
        """With near-balanced routing, measured EC cross-node traffic is
        close to (and at least of the order of) the balanced formula."""
        layout = RankLayout(2, 4)
        executor = ExpertCentricMoE(
            HIDDEN, 8, 2, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        tokens_per_worker = 512
        run_iteration(executor, layout, tokens_per_worker=tokens_per_worker)
        measured = executor.comm_log.cross_machine_bytes(
            ["dispatch", "combine"]
        ) / layout.num_machines
        # The formula takes T = tokens*k routed slots per worker.
        expected = comm_expert_centric(
            hidden_dim=HIDDEN,
            tokens_per_worker=tokens_per_worker * 2,
            workers_per_machine=4,
            num_machines=2,
            dtype_bytes=DTYPE_BYTES,
        )
        assert measured == pytest.approx(expected, rel=0.25)


class TestParadigmComparison:
    def test_dc_moves_less_when_r_large(self):
        """Large T, small H*E: data-centric should win on wires."""
        layout = RankLayout(2, 2)
        ec = ExpertCentricMoE(HIDDEN, 4, 2, layout, rng=np.random.default_rng(1))
        dc = DataCentricMoE(HIDDEN, 4, 2, layout, rng=np.random.default_rng(2))
        dc.import_state(ec.export_state())
        run_iteration(ec, layout, tokens_per_worker=2048)
        run_iteration(dc, layout, tokens_per_worker=2048)
        assert (
            dc.comm_log.cross_machine_bytes()
            < 0.25 * ec.comm_log.cross_machine_bytes()
        )

    def test_ec_moves_less_when_r_small(self):
        """Few tokens, many experts: expert-centric should win on wires."""
        layout = RankLayout(2, 2)
        ec = ExpertCentricMoE(HIDDEN, 16, 2, layout, rng=np.random.default_rng(1))
        dc = DataCentricMoE(HIDDEN, 16, 2, layout, rng=np.random.default_rng(2))
        dc.import_state(ec.export_state())
        run_iteration(ec, layout, tokens_per_worker=8)
        run_iteration(dc, layout, tokens_per_worker=8)
        assert (
            ec.comm_log.cross_machine_bytes()
            < dc.comm_log.cross_machine_bytes()
        )


class TestCacheAttributionAndPooling:
    """Regression battery for the cache-hit attribution fix: the worker
    that fills the machine cache stays the machine's grad_push sender, no
    matter how many same-machine workers hit the cache afterwards."""

    def _executor(self):
        # top_k == num_experts makes routing deterministic: every worker
        # uses every expert.  One machine, three workers, one expert each:
        # every fetch of a non-resident expert is intra-machine.
        layout = RankLayout(1, 3)
        executor = DataCentricMoE(
            HIDDEN, 3, 3, layout, dtype_bytes=DTYPE_BYTES,
            rng=np.random.default_rng(1),
        )
        return layout, executor

    def test_grad_push_sent_by_fill_rank_not_last_reader(self):
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        pushes = [
            record for record in executor.comm_log.records
            if record.kind == "grad_push"
        ]
        # Fill ranks: rank 0 filled experts 1 and 2, rank 1 filled expert 0
        # (rank 0 owns it).  The last readers were ranks 2, 1 and 2 — the
        # pre-fix senders — so any of these flipping means the attribution
        # regressed.
        assert {(push.src_rank, push.dst_rank) for push in pushes} == {
            (0, 1),  # expert 1 home
            (0, 2),  # expert 2 home
            (1, 0),  # expert 0 home
        }

    def test_cache_hits_chain_through_previous_reader(self):
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        pulls = [
            (record.src_rank, record.dst_rank)
            for record in executor.comm_log.records
            if record.kind == "expert_pull"
        ]
        # Rank 0: fills experts 1 and 2.  Rank 1: fills expert 0, then hits
        # expert 2 (served by previous reader 0).  Rank 2: hits expert 0
        # (served by 1) and expert 1 (served by 0).
        assert pulls == [(1, 0), (2, 0), (0, 1), (0, 1), (1, 2), (0, 2)]

    def test_census_and_totals_unchanged_by_attribution(self):
        """The fix only re-attributes grad_push endpoints: the pull census
        and the aggregate byte totals stay what they were."""
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        log = executor.comm_log
        assert executor.pulled_expert_count() == 3
        assert log.total_bytes(["expert_pull"]) == pytest.approx(
            6 * executor.expert_bytes
        )
        assert log.total_bytes(["grad_push"]) == pytest.approx(
            3 * executor.expert_bytes
        )
        # Single machine: everything is intra-machine traffic.
        assert log.cross_machine_bytes() == 0
        assert log.intra_machine_bytes() == pytest.approx(log.total_bytes())

    def test_replica_pool_reused_across_iterations(self):
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        first_pool = dict(executor._replica_pool)
        assert len(first_pool) == 3
        run_iteration(executor, layout, tokens_per_worker=4, seed=1)
        # Same module objects: later iterations only refresh weights.
        assert {
            key: id(replica) for key, replica in executor._replica_pool.items()
        } == {key: id(replica) for key, replica in first_pool.items()}

    def test_invalidate_replicas_drops_pool(self):
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        first = {
            key: id(replica)
            for key, replica in executor._replica_pool.items()
        }
        executor.invalidate_replicas()
        assert executor._replica_pool == {}
        run_iteration(executor, layout, tokens_per_worker=4, seed=1)
        second = {
            key: id(replica)
            for key, replica in executor._replica_pool.items()
        }
        assert set(first) == set(second)
        assert all(first[key] != second[key] for key in first)

    def test_import_state_invalidates_pool(self):
        layout, executor = self._executor()
        run_iteration(executor, layout, tokens_per_worker=4)
        assert executor._replica_pool
        executor.import_state(executor.export_state())
        assert executor._replica_pool == {}
