"""Unit tests for the metric primitives (counters, gauges, histograms)."""

import pytest

from repro.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        hist = Histogram()
        for value in (1e-5, 2e-5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(3.00003)
        assert hist.min == 1e-5
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(1.00001)

    def test_mean_of_empty_histogram_is_zero(self):
        assert Histogram().mean == 0.0

    def test_bucket_assignment_uses_upper_bounds(self):
        hist = Histogram(bounds=(1.0, 10.0))
        hist.observe(0.5)   # <= 1.0
        hist.observe(1.0)   # <= 1.0 (inclusive)
        hist.observe(5.0)   # <= 10.0
        hist.observe(50.0)  # overflow
        assert hist.bucket_counts == [2, 1, 1]

    def test_default_bounds_are_log_spaced(self):
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert DEFAULT_BUCKETS[-1] == 100.0
        ratios = [
            DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
            for i in range(len(DEFAULT_BUCKETS) - 1)
        ]
        assert all(ratio == pytest.approx(10.0) for ratio in ratios)

    def test_as_dict_shape(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        snapshot = hist.as_dict()
        assert snapshot["count"] == 2
        assert snapshot["sum"] == 2.5
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 2.0
        assert snapshot["mean"] == 1.25
        assert snapshot["buckets"] == {"1.0": 1}
        assert snapshot["overflow"] == 1


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("pull.issued", kind="internal")
        registry.inc("pull.issued", kind="internal")
        registry.inc("pull.issued", kind="pcie")
        assert registry.counter("pull.issued", kind="internal") == 2.0
        assert registry.counter("pull.issued", kind="pcie") == 1.0
        assert registry.total("pull.issued") == 3.0

    def test_inc_with_explicit_value(self):
        registry = MetricsRegistry()
        registry.inc("link.bytes", 1024.0, link="nvlink")
        registry.inc("link.bytes", 512.0, link="nvlink")
        assert registry.counter("link.bytes", link="nvlink") == 1536.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("pull.issued", -1.0)

    def test_missing_counter_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("nope") == 0.0
        assert registry.total("nope") == 0.0
        assert registry.series("nope") == {}

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("x", a=1, b=2)
        registry.inc("x", b=2, a=1)
        assert registry.counter("x", a=1, b=2) == 2.0


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set("iter.seconds", 1.0, iteration=0)
        registry.set("iter.seconds", 2.0, iteration=0)
        assert registry.gauge("iter.seconds", iteration=0) == 2.0
        assert registry.gauge_series("iter.seconds") == {
            (("iteration", 0),): 2.0
        }

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("nope") is None

    def test_observe_builds_histogram_per_label_set(self):
        registry = MetricsRegistry()
        registry.observe("pull.latency_s", 1e-4, kind="internal")
        registry.observe("pull.latency_s", 2e-4, kind="internal")
        registry.observe("pull.latency_s", 5.0, kind="pcie")
        internal = registry.histogram("pull.latency_s", kind="internal")
        assert internal.count == 2
        assert registry.histogram("pull.latency_s", kind="pcie").count == 1

    def test_missing_histogram_is_none(self):
        assert MetricsRegistry().histogram("nope") is None

    def test_clear_empties_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set("b", 1.0)
        registry.observe("c", 1.0)
        registry.clear()
        assert registry.counter_names() == []
        assert registry.gauge_names() == []
        assert registry.histogram_names() == []


class TestExport:
    def test_names_are_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b.second")
        registry.inc("a.first")
        registry.set("z.gauge", 0.0)
        registry.observe("m.hist", 1.0)
        assert registry.counter_names() == ["a.first", "b.second"]
        assert registry.gauge_names() == ["z.gauge"]
        assert registry.histogram_names() == ["m.hist"]

    def test_as_dict_round_trips_to_json(self):
        import json

        registry = MetricsRegistry()
        registry.inc("pull.issued", kind="internal")
        registry.inc("cache.requests")
        registry.set("iter.seconds", 0.5, iteration=0)
        registry.observe("pull.latency_s", 1e-3)
        snapshot = json.loads(json.dumps(registry.as_dict()))
        assert snapshot["counters"]["pull.issued"] == {"kind=internal": 1.0}
        assert snapshot["counters"]["cache.requests"] == {"": 1.0}
        assert snapshot["gauges"]["iter.seconds"] == {"iteration=0": 0.5}
        assert snapshot["histograms"]["pull.latency_s"][""]["count"] == 1

    def test_label_text_formats_pairs(self):
        assert MetricsRegistry._label_text(()) == ""
        assert (
            MetricsRegistry._label_text((("a", 1), ("b", "x")))
            == "a=1,b=x"
        )
