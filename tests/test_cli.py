"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "moe-gpt"
        assert args.experts == 32
        assert args.machines == 4

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--model", "moe-llama"])

    def test_simulate_paradigm_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--paradigm", "expert-centric"]
        )
        assert args.paradigm == "expert-centric"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--paradigm", "magic"])

    def test_simulate_accepts_registered_strategies(self):
        """The --paradigm choices come from the strategy registry."""
        args = build_parser().parse_args(
            ["simulate", "--paradigm", "pipelined-ec"]
        )
        assert args.paradigm == "pipelined-ec"

    def test_simulate_chunks_flag(self):
        args = build_parser().parse_args(["simulate", "--chunks", "8"])
        assert args.chunks == 8
        assert build_parser().parse_args(["simulate"]).chunks is None

    def test_simulate_chunks_must_be_positive(self):
        for bad in ("0", "-4", "abc"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["simulate", "--chunks", bad])

    def test_simulate_chunks_auto(self):
        args = build_parser().parse_args(["simulate", "--chunks", "auto"])
        assert args.chunks == "auto"
        args = build_parser().parse_args(["report", "--chunks", "auto"])
        assert args.chunks == "auto"

    def test_simulate_stagger_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--stagger-a2a", "chain"]
        )
        assert args.stagger_a2a == "chain"
        assert build_parser().parse_args(["simulate"]).stagger_a2a is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--stagger-a2a", "fifo"])


class TestCommands:
    def test_plan_prints_r_and_memory(self, capsys):
        assert main(["plan", "--model", "moe-gpt"]) == 0
        out = capsys.readouterr().out
        assert "5.33" in out
        assert "data-centric" in out
        assert "memory" in out

    def test_plan_with_overrides(self, capsys):
        assert main([
            "plan", "--model", "moe-bert", "--batch-size", "64",
            "--seq-len", "256", "--top-k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "B=64 S=256 k=4" in out

    def test_plan_pr_moe_mixes_paradigms(self, capsys):
        assert main(["plan", "--model", "pr-moe", "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "data-centric" in out

    def test_table1_matches_paper_numbers(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "9.00" in out      # E.C. BERT/Txl at 32 experts
        assert "1.69" in out      # D.C. BERT at 32 experts
        assert "16.0x" in out     # the headline reduction

    def test_goodput_reports_gap(self, capsys):
        assert main(["goodput", "--machines", "2", "--payload", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "intra-machine" in out
        assert "gap:" in out

    def test_simulate_small_cluster(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "expert-centric",
        ]) == 0
        out = capsys.readouterr().out
        assert "ms per training iteration" in out
        assert "All-to-All" in out

    def test_simulate_reports_strategy_per_block(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "unified",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategy per block" in out

    def test_simulate_pipelined_ec_with_chunks(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "pipelined-ec",
            "--chunks", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "pipelined-ec" in out
        assert "ms per training iteration" in out

    def test_simulate_chunks_auto_tunes(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "pipelined-ec",
            "--chunks", "auto",
        ]) == 0
        assert "ms per training iteration" in capsys.readouterr().out

    def test_fixed_chunks_conflict_with_chunk_adaptive_control(self, capsys):
        code = main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "pipelined-ec",
            "--chunks", "4", "--control", "adaptive;chunks=on",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--chunks auto" in err and "chunk-adaptive" in err

    def test_auto_chunks_compose_with_chunk_adaptive_control(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "pipelined-ec",
            "--chunks", "auto", "--control", "adaptive;chunks=on",
            "--iterations", "2",
        ]) == 0

    def test_simulate_stagger_a2a_runs(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--paradigm", "microbatch-ec",
            "--stagger-a2a", "chain",
        ]) == 0
        assert "ms per training iteration" in capsys.readouterr().out

    def test_simulate_inference_flag(self, capsys):
        assert main([
            "simulate", "--model", "moe-gpt", "--machines", "2",
            "--batch-size", "32", "--inference",
        ]) == 0
        assert "inference pass" in capsys.readouterr().out

    def test_simulate_oom_exits_nonzero(self, capsys):
        code = main([
            "simulate", "--model", "moe-bert", "--seq-len", "512",
            "--top-k", "4", "--paradigm", "expert-centric",
        ])
        assert code == 1
        assert "out of memory" in capsys.readouterr().err


class TestObservabilityCommands:
    SMALL = ["--model", "moe-gpt", "--experts", "16", "--machines", "2",
             "--batch-size", "8"]

    def test_simulate_writes_report_and_trace(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "simulate", *self.SMALL,
            "--metrics-out", str(report_path),
            "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "run report written" in out
        assert "Chrome trace written" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "janus-repro/run-report/v1"
        assert len(report["iterations"]) == 1
        assert report["run"]["model"] == "MoE-GPT"
        assert "metrics" in report
        trace = json.loads(trace_path.read_text())
        assert {"X", "M"} <= {e["ph"] for e in trace["traceEvents"]}

    def test_report_chunks_auto_prints_the_tuning_table(self, tmp_path,
                                                        capsys):
        import json

        out_path = tmp_path / "report.json"
        assert main([
            "report", *self.SMALL, "--paradigm", "pipelined-ec",
            "--chunks", "auto", "--iterations", "2",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "chunk autotuner (2 retune(s)" in out
        assert "Pred ms/chunk" in out
        assert "Meas ms/chunk" in out
        report = json.loads(out_path.read_text())
        assert report["chunk_tuning"]["retunes"] == 2
        assert report["chunk_tuning"]["blocks"]

    def test_report_without_tuning_prints_no_table(self, capsys):
        assert main([
            "report", *self.SMALL, "--paradigm", "pipelined-ec",
            "--iterations", "1",
        ]) == 0
        assert "chunk autotuner" not in capsys.readouterr().out

    def test_simulate_without_export_flags_writes_nothing(self, tmp_path,
                                                          capsys):
        assert main(["simulate", *self.SMALL]) == 0
        assert "written" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_simulate_profile_out_dumps_raw_pstats(self, tmp_path, capsys):
        import pstats

        stats_path = tmp_path / "sim.pstats"
        assert main([
            "simulate", *self.SMALL, "--profile-out", str(stats_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"profile stats written to {stats_path}" in out
        # --profile-out implies profiling but not the stdout table.
        assert "cumulative" not in out
        stats = pstats.Stats(str(stats_path))
        functions = {name for _, _, name in stats.stats}
        assert "run_iteration" in functions

    def test_simulate_profile_and_profile_out_compose(self, tmp_path,
                                                      capsys):
        stats_path = tmp_path / "sim.pstats"
        assert main([
            "simulate", *self.SMALL,
            "--profile", "--profile-out", str(stats_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "profile stats written" in out
        assert "cumulative" in out  # the stdout table still prints
        assert stats_path.exists()

    def test_report_command_writes_multi_iteration_report(self, tmp_path,
                                                          capsys):
        import json

        out_path = tmp_path / "run.json"
        assert main([
            "report", *self.SMALL, "--iterations", "2",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Iter" in out  # summary table header
        assert "task-graph breakdown" in out
        assert "expert-compute" in out
        report = json.loads(out_path.read_text())
        assert len(report["iterations"]) == 2
        assert report["run"]["iterations"] == 2
        assert report["tasks"]["expert-compute"]["count"] > 0

    def test_report_command_stdout_mode(self, capsys):
        assert main([
            "report", *self.SMALL, "--iterations", "1", "--out", "-",
        ]) == 0
        assert '"schema"' in capsys.readouterr().out

    def test_report_command_trace_out(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([
            "report", *self.SMALL, "--iterations", "1",
            "--out", str(tmp_path / "r.json"), "--trace-out", str(trace_path),
        ]) == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]


class TestGraphCommand:
    SMALL = ["--model", "moe-gpt", "--experts", "16", "--machines", "2",
             "--batch-size", "8"]

    def test_graph_validates_and_summarizes(self, capsys):
        assert main(["graph", *self.SMALL, "--paradigm", "auto"]) == 0
        out = capsys.readouterr().out
        assert "task graph OK" in out
        assert "expert-compute" in out

    def test_graph_json_to_stdout_is_pipe_clean(self, capsys):
        import json

        assert main([
            "graph", *self.SMALL, "--paradigm", "microbatch-ec", "--json", "-",
        ]) == 0
        captured = capsys.readouterr()
        # The export owns stdout; the human summary moves to stderr.
        exported = json.loads(captured.out)
        assert exported["num_tasks"] > 0
        assert "task graph OK" in captured.err

    def test_graph_dot_to_file_keeps_summary_on_stdout(self, tmp_path,
                                                       capsys):
        dot_path = tmp_path / "iter.dot"
        assert main([
            "graph", *self.SMALL, "--dot", str(dot_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "task graph OK" in out
        assert f"written to {dot_path}" in out
        assert dot_path.read_text().startswith("digraph taskgraph")


class TestServeCommand:
    TINY = "poisson;rate=500;requests=80;seed=3;prompt_mean=16;output_mean=8"
    SMALL = ["--model", "moe-gpt", "--experts", "16", "--machines", "2",
             "--batch-size", "8"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.topology == "both"
        assert args.max_batch == 64
        assert args.prefill_batch == 8
        assert args.pin_fraction == 0.25
        # The default trace string is parsed into a TraceSpec by argparse.
        assert args.trace.kind == "poisson"
        assert args.trace.rate == 2000.0
        assert args.trace.requests == 10000

    def test_serve_rejects_malformed_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--trace", "warp;rate=1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--trace", "poisson;rate=-5"])

    def test_serve_topology_and_paradigm_choices(self):
        args = build_parser().parse_args(
            ["serve", "--topology", "unified",
             "--decode-paradigm", "expert-centric"]
        )
        assert args.topology == "unified"
        assert args.decode_paradigm == "expert-centric"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--topology", "sharded"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--decode-paradigm", "magic"])

    def test_serve_runs_both_topologies(self, capsys):
        assert main(["serve", *self.SMALL, "--trace", self.TINY]) == 0
        out = capsys.readouterr().out
        assert "80 requests" in out
        assert "unified" in out and "disaggregated" in out

    def test_serve_report_to_stdout(self, capsys):
        import json

        assert main([
            "serve", *self.SMALL, "--trace", self.TINY,
            "--topology", "unified", "--out", "-",
        ]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["schema"] == "janus-repro/serve-report/v1"
        assert set(report["topologies"]) == {"unified"}
        assert report["run"]["trace"]["requests"] == 80

    def test_serve_writes_report_and_trace_files(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "serve.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "serve", *self.SMALL, "--trace", self.TINY,
            "--out", str(report_path), "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "serving report written" in out
        assert "Chrome trace written" in out
        report = json.loads(report_path.read_text())
        assert set(report["topologies"]) == {"unified", "disaggregated"}
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_serve_invalid_split_exits_2(self, capsys):
        # Two machines, two prefillers: no decoder left.
        assert main([
            "serve", *self.SMALL, "--trace", self.TINY,
            "--topology", "disaggregated", "--prefillers", "2",
        ]) == 2
        assert "invalid serving config" in capsys.readouterr().err

    def test_bench_accepts_serving_suite(self):
        args = build_parser().parse_args(["bench", "--suite", "serving"])
        assert args.suite == "serving"
