"""Tests for the §6 pull-based communication substrate."""

import pytest

from repro.cluster import Cluster, Device
from repro.comm import (
    ControlPlane,
    PullFailedError,
    PullRequest,
    PullTransport,
)
from repro.comm.endpoint import SOCKET_OVERHEAD_S
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment, StalledSimulationError


def make_transport(machines=2):
    env = Environment()
    cluster = Cluster(machines)
    fabric = Fabric(env, cluster)
    return env, cluster, fabric, PullTransport(fabric)


class TestControlPlane:
    def test_message_delivered_to_endpoint(self):
        env, cluster, fabric, transport = make_transport()
        plane = transport.plane
        target = Device.gpu(1, 0)
        request = PullRequest(
            sender=Device.gpu(0, 0), receiver=target, key="x",
            payload_bytes=100,
        )
        received = []

        def listener():
            message = yield plane.endpoint(target).recv()
            received.append((env.now, message))

        env.process(listener())
        plane.send(request)
        env.run()
        assert received
        arrival, message = received[0]
        assert message.key == "x"
        # Arrival pays link latency + socket overhead.
        assert arrival > SOCKET_OVERHEAD_S

    def test_messages_queue_in_order(self):
        env, cluster, fabric, transport = make_transport()
        plane = transport.plane
        target = Device.gpu(0, 1)
        seen = []

        def listener():
            for _ in range(3):
                message = yield plane.endpoint(target).recv()
                seen.append(message.key)

        env.process(listener())
        for key in ("a", "b", "c"):
            plane.send(PullRequest(
                sender=Device.gpu(0, 0), receiver=target, key=key,
            ))
        env.run()
        assert seen == ["a", "b", "c"]

    def test_negative_overhead_rejected(self):
        env, cluster, fabric, _ = make_transport()
        with pytest.raises(ValueError):
            ControlPlane(fabric, socket_overhead=-1)


class TestPullTransport:
    def test_pull_round_trip_time(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        size = 25e9 * 0.01  # 10 ms of NIC time
        done = transport.pull(Device.gpu(0, 0), server_device, size, key="e0")
        env.run(until=done)
        data_time = size / cluster.spec.nic.bandwidth
        # Control leg + socket overhead + data leg (plus link latencies).
        assert env.now > data_time
        assert env.now < data_time + 1e-3

    def test_pull_without_server_never_completes(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), 1e6)
        env.run()  # drains every scheduled event
        assert not done.triggered

    def test_concurrent_pulls_from_one_server_share_bandwidth(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        size = 25e9 * 0.01
        pulls = [
            transport.pull(Device.gpu(0, g), server_device, size, key=g)
            for g in range(2)
        ]

        def driver():
            yield AllOf(env, pulls)

        env.run(until=env.process(driver()))
        # Both payloads leave through the server's NIC: ~2x the solo time.
        solo = size / cluster.spec.nic.bandwidth
        assert env.now > 1.8 * solo

    def test_server_concurrency_limit_serializes(self):
        env, cluster, fabric, transport = make_transport(machines=1)
        server_device = Device.gpu(0, 0)
        server = transport.serve(server_device, concurrency=1)
        size = 600e9 * 0.001  # 1 ms of NVLink
        pulls = [
            transport.pull(Device.gpu(0, g), server_device, size, key=g)
            for g in (1, 2, 3)
        ]

        def driver():
            yield AllOf(env, pulls)

        env.run(until=env.process(driver()))
        solo = size / cluster.spec.nvlink.bandwidth
        # Sequential service: at least 3x the solo data time.
        assert env.now >= 3 * solo
        assert server.served == 3

    def test_push_delivers_payload(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.push(
            Device.gpu(0, 0), Device.gpu(1, 0), 1e6, key="grad"
        )
        env.run(until=done)
        assert fabric.nic_bytes(0, "out") >= 1e6

    def test_serve_is_idempotent(self):
        env, cluster, fabric, transport = make_transport()
        a = transport.serve(Device.gpu(0, 0))
        b = transport.serve(Device.gpu(0, 0))
        assert a is b

    def test_invalid_sizes_rejected(self):
        env, cluster, fabric, transport = make_transport()
        with pytest.raises(ValueError):
            transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), -1)
        with pytest.raises(ValueError):
            transport.push(Device.gpu(0, 0), Device.gpu(1, 0), -1)
        with pytest.raises(ValueError):
            transport.serve(Device.gpu(0, 1), concurrency=0)

    def test_pull_pipeline_like_inter_scheduler(self):
        """A chain of sequential pulls mirrors the Inter-Node Scheduler's
        fine-grained fetch behaviour."""
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        completions = []

        def chain():
            for key in range(4):
                done = transport.pull(
                    Device.gpu(0, 0), server_device, 1e7, key=key
                )
                yield done
                completions.append(env.now)

        env.run(until=env.process(chain()))
        assert len(completions) == 4
        assert completions == sorted(completions)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        # Steady-state pull cadence is roughly uniform.
        assert max(gaps) < 2.5 * min(gaps)


class TestPullRetry:
    def test_pull_with_timeout_succeeds_after_server_resumes(self):
        """A paused server drops no requests; the requester's retries ride
        out the outage and the pull completes once the server resumes."""
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        server = transport.serve(server_device)
        server.pause()

        def unpause():
            yield env.timeout(0.005)
            server.resume()

        env.process(unpause(), daemon=True)
        done = transport.pull(
            Device.gpu(0, 0), server_device, 1e6, key="e0",
            timeout=0.002, max_retries=4,
        )
        env.run(until=done)
        assert env.now > 0.005
        assert server.served >= 1
        assert transport.retries >= 1
        assert transport.failures == 0

    def test_pull_exhausting_retries_raises_pull_failed(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.pull(
            Device.gpu(0, 0), Device.gpu(1, 0), 1e6, key="e0",
            timeout=0.001, max_retries=2, backoff=2.0,
        )

        def driver():
            with pytest.raises(PullFailedError) as excinfo:
                yield done
            assert excinfo.value.attempts == 3

        env.run(until=env.process(driver()))
        # Exponential backoff: 1 + 2 + 4 ms of waiting.
        assert env.now == pytest.approx(0.007)
        assert transport.retries == 2
        assert transport.failures == 1

    def test_dropping_server_fails_pull(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        server = transport.serve(server_device)
        server.set_dropping(True)
        done = transport.pull(
            Device.gpu(0, 0), server_device, 1e6, key="e0",
            timeout=0.001, max_retries=1,
        )

        def driver():
            with pytest.raises(PullFailedError):
                yield done

        env.run(until=env.process(driver()))
        assert server.dropped == 2  # both attempts discarded
        assert server.served == 0

    def test_invalid_retry_arguments_rejected(self):
        env, cluster, fabric, transport = make_transport()
        requester, target = Device.gpu(0, 0), Device.gpu(1, 0)
        with pytest.raises(ValueError):
            transport.pull(requester, target, 1e6, timeout=0.0)
        with pytest.raises(ValueError):
            transport.pull(requester, target, 1e6, timeout=1.0, max_retries=-1)
        with pytest.raises(ValueError):
            transport.pull(requester, target, 1e6, timeout=1.0, backoff=0.9)


class TestPullServerHardening:
    def test_malformed_and_foreign_messages_counted(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        server = transport.serve(server_device)
        endpoint = transport.plane.endpoint(server_device)
        from repro.comm import GradPush

        endpoint._deliver("not a control message")
        endpoint._deliver(GradPush(
            sender=Device.gpu(0, 0), receiver=server_device, key="g",
        ))
        env.run()
        assert server.malformed == 1
        assert server.ignored == 1
        assert server.served == 0

    def test_interrupted_serve_releases_concurrency_slot(self):
        """An injected outage mid-serve frees the Resource slot: the next
        request is served instead of queueing forever behind a dead slot."""
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        server = transport.serve(server_device, concurrency=1)
        size = 25e9 * 0.01  # 10 ms of NIC time
        first = transport.pull(
            Device.gpu(0, 0), server_device, size, key="a",
            timeout=0.5, max_retries=0,
        )

        def outage():
            yield env.timeout(0.002)  # first serve is mid-transfer
            server.interrupt_inflight()

        env.process(outage(), daemon=True)

        def second_pull():
            yield env.timeout(0.004)
            done = transport.pull(
                Device.gpu(0, 1), server_device, 1e6, key="b",
                timeout=0.5, max_retries=0,
            )
            yield done

        proc = env.process(second_pull())
        env.run(until=proc)
        assert server.dropped == 1      # the interrupted serve
        assert server.served >= 1       # the follow-up got the slot
        assert server._slots.count == 0
        assert not first.processed      # requester 'a' is still waiting

    def test_pause_queues_requests_until_resume(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        server = transport.serve(server_device)
        server.pause()
        done = transport.pull(Device.gpu(0, 0), server_device, 1e6, key="q")

        def driver():
            yield env.timeout(0.01)
            assert not done.triggered  # parked behind the pause
            server.resume()
            yield done

        env.run(until=env.process(driver()))
        assert server.served == 1
        assert server.dropped == 0


class TestStallDiagnostics:
    def test_unserved_pull_wait_raises_stalled_simulation(self):
        """The ISSUE regression: a process waiting on a pull to a device
        that was never serve()d must be named in a StalledSimulationError
        instead of env.run() silently returning."""
        env, cluster, fabric, transport = make_transport()
        done = transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), 1e6)

        def waiter():
            yield done

        env.process(waiter(), name="stuck-puller")
        with pytest.raises(StalledSimulationError) as excinfo:
            env.run()
        assert "stuck-puller" in str(excinfo.value)
        assert any(
            proc.name == "stuck-puller" for proc in excinfo.value.processes
        )

    def test_run_until_unreachable_event_raises(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), 1e6)
        with pytest.raises(StalledSimulationError):
            env.run(until=done)

    def test_daemon_listeners_do_not_trip_stall_detection(self):
        """A serving transport leaves its listener blocked on recv()
        forever; plain env.run() must still drain cleanly."""
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        done = transport.pull(Device.gpu(0, 0), server_device, 1e6, key="x")
        env.run()  # no StalledSimulationError despite the listen loop
        assert done.triggered
