"""Tests for the §6 pull-based communication substrate."""

import pytest

from repro.cluster import Cluster, Device
from repro.comm import ControlPlane, PullRequest, PullTransport
from repro.comm.endpoint import SOCKET_OVERHEAD_S
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment


def make_transport(machines=2):
    env = Environment()
    cluster = Cluster(machines)
    fabric = Fabric(env, cluster)
    return env, cluster, fabric, PullTransport(fabric)


class TestControlPlane:
    def test_message_delivered_to_endpoint(self):
        env, cluster, fabric, transport = make_transport()
        plane = transport.plane
        target = Device.gpu(1, 0)
        request = PullRequest(
            sender=Device.gpu(0, 0), receiver=target, key="x",
            payload_bytes=100,
        )
        received = []

        def listener():
            message = yield plane.endpoint(target).recv()
            received.append((env.now, message))

        env.process(listener())
        plane.send(request)
        env.run()
        assert received
        arrival, message = received[0]
        assert message.key == "x"
        # Arrival pays link latency + socket overhead.
        assert arrival > SOCKET_OVERHEAD_S

    def test_messages_queue_in_order(self):
        env, cluster, fabric, transport = make_transport()
        plane = transport.plane
        target = Device.gpu(0, 1)
        seen = []

        def listener():
            for _ in range(3):
                message = yield plane.endpoint(target).recv()
                seen.append(message.key)

        env.process(listener())
        for key in ("a", "b", "c"):
            plane.send(PullRequest(
                sender=Device.gpu(0, 0), receiver=target, key=key,
            ))
        env.run()
        assert seen == ["a", "b", "c"]

    def test_negative_overhead_rejected(self):
        env, cluster, fabric, _ = make_transport()
        with pytest.raises(ValueError):
            ControlPlane(fabric, socket_overhead=-1)


class TestPullTransport:
    def test_pull_round_trip_time(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        size = 25e9 * 0.01  # 10 ms of NIC time
        done = transport.pull(Device.gpu(0, 0), server_device, size, key="e0")
        env.run(until=done)
        data_time = size / cluster.spec.nic.bandwidth
        # Control leg + socket overhead + data leg (plus link latencies).
        assert env.now > data_time
        assert env.now < data_time + 1e-3

    def test_pull_without_server_never_completes(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), 1e6)
        env.run()  # drains every scheduled event
        assert not done.triggered

    def test_concurrent_pulls_from_one_server_share_bandwidth(self):
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        size = 25e9 * 0.01
        pulls = [
            transport.pull(Device.gpu(0, g), server_device, size, key=g)
            for g in range(2)
        ]

        def driver():
            yield AllOf(env, pulls)

        env.run(until=env.process(driver()))
        # Both payloads leave through the server's NIC: ~2x the solo time.
        solo = size / cluster.spec.nic.bandwidth
        assert env.now > 1.8 * solo

    def test_server_concurrency_limit_serializes(self):
        env, cluster, fabric, transport = make_transport(machines=1)
        server_device = Device.gpu(0, 0)
        server = transport.serve(server_device, concurrency=1)
        size = 600e9 * 0.001  # 1 ms of NVLink
        pulls = [
            transport.pull(Device.gpu(0, g), server_device, size, key=g)
            for g in (1, 2, 3)
        ]

        def driver():
            yield AllOf(env, pulls)

        env.run(until=env.process(driver()))
        solo = size / cluster.spec.nvlink.bandwidth
        # Sequential service: at least 3x the solo data time.
        assert env.now >= 3 * solo
        assert server.served == 3

    def test_push_delivers_payload(self):
        env, cluster, fabric, transport = make_transport()
        done = transport.push(
            Device.gpu(0, 0), Device.gpu(1, 0), 1e6, key="grad"
        )
        env.run(until=done)
        assert fabric.nic_bytes(0, "out") >= 1e6

    def test_serve_is_idempotent(self):
        env, cluster, fabric, transport = make_transport()
        a = transport.serve(Device.gpu(0, 0))
        b = transport.serve(Device.gpu(0, 0))
        assert a is b

    def test_invalid_sizes_rejected(self):
        env, cluster, fabric, transport = make_transport()
        with pytest.raises(ValueError):
            transport.pull(Device.gpu(0, 0), Device.gpu(1, 0), -1)
        with pytest.raises(ValueError):
            transport.push(Device.gpu(0, 0), Device.gpu(1, 0), -1)
        with pytest.raises(ValueError):
            transport.serve(Device.gpu(0, 1), concurrency=0)

    def test_pull_pipeline_like_inter_scheduler(self):
        """A chain of sequential pulls mirrors the Inter-Node Scheduler's
        fine-grained fetch behaviour."""
        env, cluster, fabric, transport = make_transport()
        server_device = Device.gpu(1, 0)
        transport.serve(server_device)
        completions = []

        def chain():
            for key in range(4):
                done = transport.pull(
                    Device.gpu(0, 0), server_device, 1e7, key=key
                )
                yield done
                completions.append(env.now)

        env.run(until=env.process(chain()))
        assert len(completions) == 4
        assert completions == sorted(completions)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        # Steady-state pull cadence is roughly uniform.
        assert max(gaps) < 2.5 * min(gaps)
