"""Shared test factories (importable as ``tests.conftest``).

Plain functions rather than pytest fixtures so call sites can parameterize
them (``small_config(batch_size=8)``) and so the golden-metrics and
property suites share exactly the configurations the engine tests lock.
The benchmarks' engine-run cache (``benchmarks/engine_cache.py``) is made
importable too, so tests can reuse its cached Fig. 14-scale runs instead
of re-simulating them.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cluster import Cluster, MachineSpec
from repro.config import ModelConfig

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))


def small_config(**overrides) -> ModelConfig:
    """The engine-test model: 4 blocks, MoE blocks {1, 3} with 4 experts."""
    defaults = dict(
        name="small",
        batch_size=16,
        seq_len=32,
        top_k=2,
        hidden_dim=64,
        num_blocks=4,
        experts_per_block={1: 4, 3: 4},
        num_heads=4,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


def small_cluster(machines: int = 2, gpus: int = 2) -> Cluster:
    return Cluster(machines, MachineSpec(num_gpus=gpus))


def tiny_model_config(**overrides) -> ModelConfig:
    """Numerics-scale model: small enough to run real forward/backward."""
    defaults = dict(
        name="tiny",
        batch_size=2,
        seq_len=6,
        top_k=2,
        hidden_dim=16,
        num_blocks=3,
        experts_per_block={1: 4},
        num_heads=4,
        vocab_size=50,
        causal=True,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)
