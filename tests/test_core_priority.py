"""Tests for the topology-aware priority strategies (§5.2)."""

import pytest

from repro.core import (
    internal_pull_order,
    internal_pull_priority,
    pcie_peer_schedule,
    split_external_groups,
)


class TestAlgorithm1:
    def test_order_matches_algorithm1(self):
        # m=4 workers, E=2 experts each; worker r=1 pulls [(r+1)E, mE) then
        # [0, rE).
        order = internal_pull_order(1, 4, 2)
        assert order == [4, 5, 6, 7, 0, 1]

    def test_worker0_order(self):
        order = internal_pull_order(0, 4, 1)
        assert order == [1, 2, 3]

    def test_last_worker_wraps(self):
        order = internal_pull_order(3, 4, 1)
        assert order == [0, 1, 2]

    def test_orders_are_staggered(self):
        """Fig. 7(b): at schedule position t, every worker pulls from a
        different owner."""
        m, experts = 8, 1
        orders = [internal_pull_order(r, m, experts) for r in range(m)]
        for position in range(m - 1):
            owners = [orders[r][position] for r in range(m)]
            assert len(set(owners)) == m, (
                f"position {position} has owner collisions: {owners}"
            )

    def test_naive_order_collides(self):
        """Fig. 7(a): without staggering every worker starts at expert 0
        (or 1 for worker 0) — the egress hotspot."""
        m = 4
        orders = [
            internal_pull_order(r, m, 1, staggered=False) for r in range(m)
        ]
        first = [order[0] for order in orders]
        assert len(set(first)) < m

    def test_every_order_covers_all_foreign_slots(self):
        m, experts = 4, 2
        for r in range(m):
            for staggered in (True, False):
                order = internal_pull_order(r, m, experts, staggered=staggered)
                own = set(range(r * experts, (r + 1) * experts))
                assert set(order) == set(range(m * experts)) - own

    def test_priority_formula(self):
        # P = rank(i) - r for rank(i) > r; rank(i) + m - r for rank(i) < r.
        m, experts = 4, 1
        assert internal_pull_priority(2, 1, m, experts) == 1
        assert internal_pull_priority(0, 1, m, experts) == 3
        assert internal_pull_priority(1, 1, m, experts) == -1  # own expert

    def test_priority_agrees_with_order(self):
        m, experts = 8, 2
        for r in range(m):
            order = internal_pull_order(r, m, experts)
            priorities = [
                internal_pull_priority(slot, r, m, experts) for slot in order
            ]
            assert priorities == sorted(priorities)

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            internal_pull_order(4, 4, 1)


class TestPciePeerScheduling:
    def test_groups_are_disjoint_and_cover(self):
        experts = list(range(10, 22))
        mine, peers = split_external_groups(experts, local_rank=0)
        assert sorted(mine + peers) == experts
        assert not set(mine) & set(peers)

    def test_peer_lanes_are_complementary(self):
        experts = list(range(7))
        mine0, peers0 = split_external_groups(experts, local_rank=2)  # even lane
        mine1, peers1 = split_external_groups(experts, local_rank=3)  # odd lane
        assert mine0 == peers1
        assert mine1 == peers0

    def test_schedule_interleaves_pcie_and_peer(self):
        schedule = pcie_peer_schedule(list(range(6)), local_rank=0)
        vias = [step.via for step in schedule]
        assert vias == ["pcie", "peer", "pcie", "peer", "pcie", "peer"]

    def test_schedule_covers_all_experts(self):
        experts = list(range(9))
        schedule = pcie_peer_schedule(experts, local_rank=1)
        assert sorted(step.expert for step in schedule) == experts

    def test_disabled_schedule_is_all_pcie(self):
        schedule = pcie_peer_schedule(list(range(5)), 0, enabled=False)
        assert all(step.via == "pcie" for step in schedule)
        assert [step.expert for step in schedule] == list(range(5))

    def test_pcie_load_halved(self):
        """The point of Fig. 8: each GPU copies only ~half the experts over
        the PCIe switch uplink."""
        experts = list(range(8))
        schedule = pcie_peer_schedule(experts, local_rank=0)
        pcie_steps = [s for s in schedule if s.via == "pcie"]
        assert len(pcie_steps) == 4

    def test_empty_expert_list(self):
        assert pcie_peer_schedule([], 0) == []
