"""Tests for the task-graph schedules benchmark (``repro.bench.schedules``).

Wall-clock numbers are host-dependent, so the tests pin the capture
schema, key formatting, and the two gate layers (structural simulated-time
wins + calibration-rescaled medians) on synthetic captures.
"""

from repro.bench import (
    SCHEDULE_FULL_CONFIGS,
    SCHEDULE_QUICK_CONFIGS,
    SCHEDULES_SCHEMA,
    ScheduleBenchConfig,
    check_autotune_win,
    check_schedule_wins,
    check_schedules_snapshot,
    format_schedules_suite,
    run_schedules_suite,
)


def _entry(sim_seconds, median_s=0.1):
    return {
        "median_s": median_s,
        "best_s": median_s,
        "samples": [median_s],
        "sim_seconds": sim_seconds,
        "events": 1000,
        "events_per_s": 1000 / median_s,
    }


def _capture(ec_sim=0.20, micro_sim=0.14, calibration_s=0.010):
    return {
        "schema": SCHEDULES_SCHEMA,
        "calibration_s": calibration_s,
        "runs": {
            "expert-centric": _entry(ec_sim),
            "microbatch-ec/mb4": _entry(micro_sim),
        },
    }


class TestKeys:
    def test_key_encodes_schedule_knobs(self):
        assert ScheduleBenchConfig("expert-centric").key == "expert-centric"
        assert ScheduleBenchConfig(
            "microbatch-ec", micro_batches=4
        ).key == "microbatch-ec/mb4"
        assert ScheduleBenchConfig(
            "expert-centric", grad_allreduce="overlap"
        ).key == "expert-centric/ar-overlap"

    def test_key_encodes_chunk_and_stagger_knobs(self):
        assert ScheduleBenchConfig(
            "pipelined-ec", chunks=4, gpu="tight"
        ).key == "pipelined-ec/tight/c4"
        assert ScheduleBenchConfig(
            "pipelined-ec", chunks="auto", gpu="tight"
        ).key == "pipelined-ec/tight/auto"
        assert ScheduleBenchConfig(
            "microbatch-ec", micro_batches=4, stagger="wave"
        ).key == "microbatch-ec/mb4/wave"
        assert ScheduleBenchConfig(
            "microbatch-ec", micro_batches=4, stagger="chain"
        ).key == "microbatch-ec/mb4/stagger"

    def test_quick_configs_are_a_subset_of_full(self):
        full = {spec.key for spec in SCHEDULE_FULL_CONFIGS}
        assert {spec.key for spec in SCHEDULE_QUICK_CONFIGS} <= full


class TestStructuralWins:
    def test_pass_when_microbatching_wins(self):
        assert check_schedule_wins(_capture()) == []

    def test_flagged_when_microbatching_loses(self):
        problems = check_schedule_wins(_capture(ec_sim=0.14, micro_sim=0.20))
        assert len(problems) == 1
        assert "microbatch-ec/mb4" in problems[0]

    def test_missing_keys_are_skipped(self):
        capture = _capture()
        del capture["runs"]["microbatch-ec/mb4"]
        assert check_schedule_wins(capture) == []

    def test_flagged_when_stagger_loses_to_wave(self):
        capture = _capture()
        capture["runs"]["microbatch-ec/mb4/wave"] = _entry(0.118)
        capture["runs"]["microbatch-ec/mb4/stagger"] = _entry(0.121)
        problems = check_schedule_wins(capture)
        assert len(problems) == 1
        assert "microbatch-ec/mb4/stagger" in problems[0]


class TestAutotuneWin:
    def _capture(self, auto, fixed):
        return {
            "runs": {
                "pipelined-ec/tight/auto": _entry(auto),
                **{
                    f"pipelined-ec/tight/c{m}": _entry(sim)
                    for m, sim in fixed.items()
                },
            }
        }

    def test_pass_when_auto_dominates(self):
        capture = self._capture(0.39, {1: 0.44, 2: 0.41, 4: 0.41, 8: 0.45})
        assert check_autotune_win(capture) == []

    def test_flagged_per_fixed_count_auto_loses_to(self):
        capture = self._capture(0.43, {1: 0.44, 2: 0.41, 4: 0.42})
        problems = check_autotune_win(capture)
        assert len(problems) == 2
        assert "pipelined-ec/tight/c2" in problems[0]
        assert "pipelined-ec/tight/c4" in problems[1]

    def test_flagged_when_auto_beats_nothing(self):
        capture = self._capture(0.41, {2: 0.41, 4: 0.41})
        problems = check_autotune_win(capture)
        assert len(problems) == 1
        assert "dead weight" in problems[0]

    def test_skipped_without_an_auto_or_fixed_run(self):
        assert check_autotune_win(self._capture(0.5, {})) == []
        capture = self._capture(0.5, {2: 0.4})
        del capture["runs"]["pipelined-ec/tight/auto"]
        assert check_autotune_win(capture) == []

    def test_autotune_gate_folds_into_schedule_wins(self):
        capture = _capture()
        capture["runs"].update(
            self._capture(0.43, {2: 0.41})["runs"]
        )
        problems = check_schedule_wins(capture)
        assert any("pipelined-ec/tight/c2" in p for p in problems)


class TestSnapshotGate:
    def test_combines_wins_and_wall_gate(self):
        snap = _capture()
        # Wall regression (4x slower) AND a lost schedule win.
        current = _capture(ec_sim=0.14, micro_sim=0.20)
        current["runs"]["expert-centric"]["median_s"] = 0.4
        problems = check_schedules_snapshot(current, snap, tolerance=0.25)
        assert any("does not beat" in p for p in problems)
        assert any("expert-centric: median" in p for p in problems)

    def test_pass_at_parity(self):
        snap = _capture()
        assert check_schedules_snapshot(_capture(), snap) == []


class TestLiveCapture:
    def test_quick_suite_runs_and_formats(self):
        spec = ScheduleBenchConfig("expert-centric")
        current = run_schedules_suite([spec], runs=1)
        assert current["schema"] == SCHEDULES_SCHEMA
        assert current["config"]["machines"] == 4
        entry = current["runs"][spec.key]
        assert entry["sim_seconds"] > 0
        assert entry["events"] > 0
        text = format_schedules_suite(current)
        assert "expert-centric" in text
        assert "1.00x" in text  # baseline compares to itself
