"""Tests for the weak-scaling benchmark suite (``repro.bench.scale``).

Wall-clock numbers are host-dependent, so the gates are exercised on
synthetic captures: the host-independent per-event growth law, the
calibration-rescaled median gate, and the absolute top-point iteration
budget.  One live smoke run covers the timing path end to end at a tiny
fleet size.
"""

import json

import pytest

from repro.bench import (
    MAX_PER_EVENT_GROWTH,
    SCALE_FULL_CONFIGS,
    SCALE_QUICK_CONFIGS,
    SCALE_SCHEMA,
    TOP_ITERATION_BUDGET_S,
    ScaleBenchConfig,
    check_scale_snapshot,
    check_scale_structure,
    format_scale_suite,
    time_scale_config,
)
from repro.bench.scale import DEFAULT_SCALE_SNAPSHOT_PATH


def _entry(machines, per_event_us, events=10_000, iterations=1):
    median = per_event_us * 1e-6 * events
    return {
        "machines": machines,
        "experts": machines * 8,
        "iterations": iterations,
        "median_s": median,
        "best_s": median,
        "samples": [median],
        "sim_seconds": 0.1,
        "events": events,
        "events_total": events * iterations,
        "per_event_us": per_event_us,
    }


def _capture(per_event=(5.0, 5.5, 6.0), machines=(8, 32, 128),
             calibration_s=0.020):
    events = {8: 12_000, 16: 29_000, 32: 75_000, 64: 215_000, 128: 692_000}
    return {
        "schema": SCALE_SCHEMA,
        "calibration_s": calibration_s,
        "host": {"python": "3.x", "numpy": "2.x", "cpus": 4},
        "runs": {
            f"MoE-GPT/expert-centric/{m}m": _entry(
                m, us, events=events.get(m, 10_000)
            )
            for m, us in zip(machines, per_event)
        },
    }


class TestConfigs:
    def test_key_includes_machines(self):
        assert ScaleBenchConfig(machines=64).key == (
            "MoE-GPT/expert-centric/64m"
        )

    def test_experts_scale_with_machines(self):
        assert ScaleBenchConfig(machines=128).experts == 1024

    def test_full_sweep_spans_8_to_128(self):
        machines = [spec.machines for spec in SCALE_FULL_CONFIGS]
        assert machines == sorted(machines)
        assert machines[0] == 8
        assert machines[-1] == 128

    def test_top_point_crosses_a_million_events(self):
        top = SCALE_FULL_CONFIGS[-1]
        # ~692k events per 128-machine iteration; two iterations per
        # timed sample put the capture past 1M simulated events.
        assert top.iterations >= 2

    def test_quick_configs_are_a_subset_of_full_keys(self):
        full = {spec.key for spec in SCALE_FULL_CONFIGS}
        assert {spec.key for spec in SCALE_QUICK_CONFIGS} <= full


class TestStructureGate:
    def test_flat_scaling_passes(self):
        assert check_scale_structure(_capture()) == []

    def test_growth_at_the_bound_passes(self):
        capture = _capture(per_event=(5.0, 5.5, 5.0 * MAX_PER_EVENT_GROWTH))
        assert check_scale_structure(capture) == []

    def test_superlinear_growth_fails(self):
        capture = _capture(per_event=(5.0, 6.0, 8.0))
        problems = check_scale_structure(capture)
        assert len(problems) == 1
        assert "1.60x" in problems[0]

    def test_endpoints_are_smallest_and_largest_fleet(self):
        # A pathological middle point must not trip the endpoint law.
        capture = _capture(per_event=(5.0, 50.0, 6.0))
        assert check_scale_structure(capture) == []

    def test_single_point_is_rejected(self):
        capture = _capture(per_event=(5.0,), machines=(8,))
        assert check_scale_structure(capture)

    def test_narrow_span_skips_the_growth_law(self):
        # 8 -> 16 machines is the quick CI subset: adjacent sub-second
        # points differ by scheduler noise, not scaling structure, so
        # even a wild ratio must not gate until the span reaches 4x.
        capture = _capture(per_event=(5.0, 10.0), machines=(8, 16))
        assert check_scale_structure(capture) == []
        capture = _capture(per_event=(5.0, 10.0), machines=(8, 32))
        assert check_scale_structure(capture)


class TestSnapshotGate:
    def test_identical_capture_passes(self):
        capture = _capture()
        assert check_scale_snapshot(capture, capture) == []

    def test_regressed_median_fails(self):
        snapshot = _capture()
        current = _capture(per_event=(9.0, 9.9, 10.8))
        problems = check_scale_snapshot(current, snapshot, tolerance=0.25)
        assert any("s/iter" in p for p in problems)

    def test_calibration_rescale_absorbs_a_slow_host(self):
        snapshot = _capture(calibration_s=0.020)
        # Host is 1.8x slower and the medians are 1.8x slower: fine.
        current = _capture(
            per_event=(9.0, 9.9, 10.8), calibration_s=0.036
        )
        assert check_scale_snapshot(current, snapshot, tolerance=0.25) == []

    def test_missing_key_is_reported(self):
        snapshot = _capture(machines=(8, 32), per_event=(5.0, 5.5))
        current = _capture()
        problems = check_scale_snapshot(current, snapshot)
        assert any("not in committed snapshot" in p for p in problems)

    def test_top_point_budget_fails_when_blown(self):
        capture = _capture()
        slow = 2 * TOP_ITERATION_BUDGET_S * 1e6 / 692_000  # us/event
        current = _capture(per_event=(5.0, 5.5, slow))
        # Inflate tolerance so only the absolute budget can trip.
        problems = check_scale_snapshot(current, capture, tolerance=100.0)
        assert any("budget" in p for p in problems)


class TestCommittedSnapshot:
    def test_snapshot_exists_and_is_committed(self):
        assert DEFAULT_SCALE_SNAPSHOT_PATH.exists()
        snapshot = json.loads(DEFAULT_SCALE_SNAPSHOT_PATH.read_text())
        assert snapshot["schema"] == SCALE_SCHEMA
        assert len(snapshot["runs"]) == len(SCALE_FULL_CONFIGS)

    def test_committed_snapshot_passes_its_own_gates(self):
        snapshot = json.loads(DEFAULT_SCALE_SNAPSHOT_PATH.read_text())
        assert check_scale_structure(snapshot) == []
        assert check_scale_snapshot(snapshot, snapshot) == []

    def test_committed_top_point_crosses_a_million_events(self):
        snapshot = json.loads(DEFAULT_SCALE_SNAPSHOT_PATH.read_text())
        top = max(
            snapshot["runs"].values(), key=lambda entry: entry["machines"]
        )
        assert top["machines"] == 128
        assert top["events_total"] >= 1_000_000


class TestLiveSmoke:
    def test_time_scale_config_smoke(self):
        entry = time_scale_config(ScaleBenchConfig(machines=2), runs=1)
        assert entry["machines"] == 2
        assert entry["experts"] == 16
        assert entry["events"] > 0
        assert entry["per_event_us"] > 0
        assert entry["median_s"] == pytest.approx(entry["best_s"])

    def test_format_suite_renders_growth_column(self):
        table = format_scale_suite(_capture())
        assert "us/event" in table
        assert "1.00x" in table
        assert "128" in table
