"""Tests for the numerical-runtime bench suite (``repro bench --suite
runtime``).

Host-time measurements are never pinned to absolute numbers; these cover
the trainer-step capture schema, config validation, the shared
calibration-rescaled gate against ``BENCH_runtime.json``-shaped snapshots
(including the dtype-mismatch guard), and the CLI wiring.
"""

import json

import pytest

from repro.bench import (
    RUNTIME_FULL_CONFIGS,
    RUNTIME_QUICK_CONFIGS,
    RUNTIME_SCHEMA,
    RuntimeBenchConfig,
    check_snapshot,
    format_runtime_suite,
    run_runtime_suite,
    time_runtime_config,
)
from repro.bench.runtime_speed import _runtime_model_config


def _capture(median_s, calibration_s=0.010, dtype="float64",
             key="trainer-moe-gpt/data-centric"):
    return {
        "schema": RUNTIME_SCHEMA,
        "config": {"runs": 1, "warmup": 0, "dtype": dtype},
        "calibration_s": calibration_s,
        "runs": {
            key: {
                "median_s": median_s,
                "best_s": median_s,
                "samples": [median_s],
                "token_slots": 2048,
                "token_slots_per_s": 2048 / median_s,
            }
        },
    }


class TestRuntimeConfigs:
    def test_full_suite_covers_both_paradigms(self):
        modes = {spec.mode for spec in RUNTIME_FULL_CONFIGS}
        assert modes == {"expert-centric", "data-centric"}
        assert len({spec.key for spec in RUNTIME_FULL_CONFIGS}) == len(
            RUNTIME_FULL_CONFIGS
        )

    def test_quick_configs_are_a_subset_of_full(self):
        assert set(RUNTIME_QUICK_CONFIGS) <= set(RUNTIME_FULL_CONFIGS)

    def test_model_shapes_resolve(self):
        for spec in RUNTIME_FULL_CONFIGS:
            config = _runtime_model_config(spec.model)
            assert config.moe_block_indices

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            _runtime_model_config("trainer-unknown")

    def test_unknown_dtype_rejected(self):
        spec = RuntimeBenchConfig("trainer-small", "expert-centric")
        with pytest.raises(ValueError):
            time_runtime_config(spec, runs=1, dtype="float16")


class TestTimeRuntimeConfig:
    def test_reports_median_and_throughput(self):
        spec = RuntimeBenchConfig("trainer-small", "data-centric")
        result = time_runtime_config(spec, runs=2, warmup=1)
        assert len(result["samples"]) == 2
        assert result["median_s"] > 0
        assert result["best_s"] <= result["median_s"]
        assert result["token_slots"] > 0
        assert result["token_slots_per_s"] == pytest.approx(
            result["token_slots"] / result["median_s"]
        )
        # The warm-up steps trained: the loss is a real number.
        assert result["loss"] == pytest.approx(result["loss"])

    def test_float32_runs(self):
        spec = RuntimeBenchConfig("trainer-small", "expert-centric")
        result = time_runtime_config(spec, runs=1, warmup=0, dtype="float32")
        assert result["median_s"] > 0


class TestRunRuntimeSuite:
    def test_capture_schema(self):
        spec = RuntimeBenchConfig("trainer-small", "expert-centric")
        current = run_runtime_suite([spec], runs=1, warmup=0)
        assert current["schema"] == RUNTIME_SCHEMA
        assert current["config"]["dtype"] == "float64"
        assert current["calibration_s"] > 0
        assert current["host"]["cpus"] >= 1
        assert spec.key in current["runs"]
        assert current["wall_s"] > 0
        text = format_runtime_suite(current)
        assert spec.key in text
        assert "float64" in text


class TestRuntimeGate:
    """check_snapshot is shared with the simulator suite; these pin the
    runtime-shaped payloads through the same gate."""

    def test_pass_at_parity(self):
        assert check_snapshot(_capture(0.1), _capture(0.1)) == []

    def test_flags_regression(self):
        problems = check_snapshot(
            _capture(0.2), _capture(0.1), tolerance=0.25
        )
        assert len(problems) == 1
        assert "trainer-moe-gpt/data-centric" in problems[0]

    def test_calibration_rescales(self):
        snap = _capture(0.100, calibration_s=0.010)
        cur = _capture(0.200, calibration_s=0.020)
        assert check_snapshot(cur, snap, tolerance=0.25) == []


class TestRuntimeBenchCli:
    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_runtime.json"
        args = [
            "bench", "--suite", "runtime", "--quick", "--runs", "1",
            "--path", str(path),
        ]
        assert main(args + ["--write"]) == 0
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == RUNTIME_SCHEMA
        assert on_disk["history"] == []
        assert main(args + ["--check", "--tolerance", "10.0"]) == 0
        assert "bench OK" in capsys.readouterr().out

    def test_check_without_snapshot_exits_2(self, tmp_path):
        from repro.cli import main

        assert main([
            "bench", "--suite", "runtime", "--quick", "--runs", "1",
            "--check", "--path", str(tmp_path / "missing.json"),
        ]) == 2

    def test_dtype_mismatch_fails_check(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_runtime.json"
        path.write_text(json.dumps(_capture(10.0, dtype="float32")))
        code = main([
            "bench", "--suite", "runtime", "--quick", "--runs", "1",
            "--dtype", "float64", "--check", "--path", str(path),
        ])
        assert code == 1
        assert "dtype mismatch" in capsys.readouterr().err

    def test_suite_all_rejects_explicit_path(self, tmp_path):
        from repro.cli import main

        assert main([
            "bench", "--suite", "all", "--quick", "--runs", "1",
            "--path", str(tmp_path / "x.json"),
        ]) == 2
