"""Tests for the distributed trainer, grad clipping and checkpointing."""

import numpy as np
import pytest

from repro.runtime import DistributedMoETransformer, RankLayout
from repro.runtime.trainer import (
    DistributedTrainer,
    linear_warmup_schedule,
)
from repro.tensorlib import Adam, Parameter
from repro.tensorlib.optim import clip_grad_norm
from repro.workloads import target_batches, token_batches

RNG = np.random.default_rng(4)


from tests.conftest import tiny_model_config  # noqa: E402


def tiny_config():
    return tiny_model_config(name="trainer-test", batch_size=3, vocab_size=48)


def make_trainer(paradigm="data-centric", **kwargs):
    config = tiny_config()
    layout = RankLayout(2, 2)
    model = DistributedMoETransformer(
        config, layout,
        paradigm_for_block={1: paradigm},
        rng=np.random.default_rng(1),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)
    return config, layout, model, DistributedTrainer(model, optimizer, **kwargs)


def make_batch(config, layout, seed):
    rng = np.random.default_rng(seed)
    return (
        token_batches(config, layout.world_size, rng=rng),
        target_batches(config, layout.world_size, rng=rng),
    )


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_skips_gradless_params(self):
        with_grad = Parameter(np.zeros(2))
        with_grad.grad = np.ones(2)
        without = Parameter(np.zeros(2))
        clip_grad_norm([with_grad, without], max_norm=0.5)
        assert without.grad is None

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0)


class TestSchedule:
    def test_warmup_ramps_then_holds(self):
        schedule = linear_warmup_schedule(1e-3, warmup_steps=4)
        values = [schedule(step) for step in range(6)]
        assert values[0] == pytest.approx(0.25e-3)
        assert values[3] == pytest.approx(1e-3)
        assert values[5] == pytest.approx(1e-3)

    def test_zero_warmup(self):
        schedule = linear_warmup_schedule(1e-3, warmup_steps=0)
        assert schedule(0) == 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_warmup_schedule(0, 4)


class TestTrainer:
    def test_loss_decreases_on_fixed_batch(self):
        config, layout, model, trainer = make_trainer()
        tokens, targets = make_batch(config, layout, seed=0)
        first = trainer.step(tokens, targets).loss
        for _ in range(7):
            last = trainer.step(tokens, targets).loss
        assert last < first
        assert trainer.step_count == 8
        assert trainer.last_loss == last

    def test_metrics_record_traffic_per_step(self):
        config, layout, model, trainer = make_trainer()
        tokens, targets = make_batch(config, layout, seed=0)
        first = trainer.step(tokens, targets)
        second = trainer.step(tokens, targets)
        assert first.cross_machine_bytes > 0
        # Per-step traffic is constant across steps (same routing scale).
        assert second.cross_machine_bytes == pytest.approx(
            first.cross_machine_bytes, rel=0.5
        )

    def test_grad_clip_bounds_reported_norm_effect(self):
        config, layout, model, trainer = make_trainer(grad_clip=0.01)
        tokens, targets = make_batch(config, layout, seed=0)
        metrics = trainer.step(tokens, targets)
        post_norm = np.sqrt(sum(
            float((p.grad**2).sum())
            for p in trainer.optimizer.parameters
            if p.grad is not None
        ))
        assert metrics.grad_norm >= post_norm
        assert post_norm <= 0.01 * 1.001

    def test_lr_schedule_applied(self):
        config, layout, model, trainer = make_trainer(
            lr_schedule=linear_warmup_schedule(1e-2, warmup_steps=2)
        )
        tokens, targets = make_batch(config, layout, seed=0)
        first = trainer.step(tokens, targets)
        second = trainer.step(tokens, targets)
        assert first.learning_rate == pytest.approx(5e-3)
        assert second.learning_rate == pytest.approx(1e-2)

    def test_fit_over_generator(self):
        config, layout, model, trainer = make_trainer()
        data = (make_batch(config, layout, seed=s) for s in range(10))
        metrics = trainer.fit(data, steps=4)
        assert len(metrics) == 4
        assert trainer.step_count == 4

    def test_paradigms_train_identically(self):
        results = {}
        for paradigm in ("expert-centric", "data-centric"):
            config, layout, model, trainer = make_trainer(paradigm)
            tokens, targets = make_batch(config, layout, seed=0)
            for _ in range(3):
                metrics = trainer.step(tokens, targets)
            results[paradigm] = metrics.loss
        assert results["expert-centric"] == pytest.approx(
            results["data-centric"], abs=1e-9
        )

    def test_invalid_grad_clip(self):
        with pytest.raises(ValueError):
            make_trainer(grad_clip=0)


class TestModelStateDict:
    def test_round_trip_preserves_forward(self):
        config = tiny_config()
        layout = RankLayout(2, 2)
        src = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "data-centric"},
            rng=np.random.default_rng(1),
        )
        dst = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "expert-centric"},
            rng=np.random.default_rng(2),
        )
        dst.load_state_dict(src.state_dict())
        batches = token_batches(config, 4, rng=np.random.default_rng(3))
        for a, b in zip(src.forward(batches), dst.forward(batches)):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-10)

    def test_state_dict_keys_are_disjoint_per_block(self):
        config = tiny_config()
        model = DistributedMoETransformer(
            config, RankLayout(2, 2), rng=np.random.default_rng(1)
        )
        state = model.state_dict()
        assert any(key.startswith("block1.moe.") for key in state)
        assert any(key.startswith("block0.") for key in state)
        assert len(state) == len(set(state))
