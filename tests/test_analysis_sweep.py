"""Tests for the R-grid sweep and heatmap rendering."""

import numpy as np
import pytest

from repro.analysis import r_grid, render_r_heatmap
from repro.core import gain_ratio


class TestRGrid:
    def test_grid_matches_pointwise_formula(self):
        batches = [32, 64]
        seqs = [128, 512]
        grid = r_grid(batches, seqs, top_k=2, num_machines=4,
                      hidden_dim=256, experts_per_worker=1)
        assert grid.shape == (2, 2)
        for i, batch in enumerate(batches):
            for j, seq in enumerate(seqs):
                assert grid[i, j] == pytest.approx(
                    gain_ratio(batch, seq, 2, 4, 256, 1)
                )

    def test_grid_monotone_in_both_axes(self):
        grid = r_grid([16, 32, 64], [64, 128, 256], 2, 4, 512, 1)
        assert (np.diff(grid, axis=0) > 0).all()
        assert (np.diff(grid, axis=1) > 0).all()


class TestHeatmap:
    def test_marks_expert_centric_region(self):
        batches = [1, 512]
        seqs = [8, 2048]
        grid = r_grid(batches, seqs, 1, 4, 4096, 4)
        text = render_r_heatmap(grid, batches, seqs)
        assert "e" in text
        # The big-batch/long-seq corner should be data-centric (numeric).
        assert grid[1, 1] > 1

    def test_heatmap_shape_validated(self):
        with pytest.raises(ValueError):
            render_r_heatmap(np.zeros((2, 2)), [1], [1, 2])

    def test_header_contains_axes(self):
        grid = r_grid([64], [128], 2, 4, 256, 1)
        text = render_r_heatmap(grid, [64], [128])
        assert "128" in text
        assert "64" in text
