"""Tests for the schedules only the task graph can express.

Micro-batched expert-centric lanes (Parm/FlowMoE-style chunk overlap),
the backward dense-gradient all-reduce (serial vs. overlapped), the ring
all-reduce collective itself, and the schedule-aware ``auto`` engine.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import (
    JanusFeatures,
    auto_engine,
    auto_schedule_map,
    engine_modes,
    strategy_engine,
    strategy_names,
)
from repro.netsim import Fabric, all_reduce
from repro.simkit import Environment

from tests.conftest import small_cluster, small_config

# The paper-scale schedule benchmark shape: one low-R MoE block where
# expert-centric wins and one 256-expert block where data-centric wins.
MIXED_R = moe_gpt(32).scaled(experts_per_block={6: 32, 10: 256})


def _mixed_engine(mode, features=None):
    return strategy_engine(
        mode, MIXED_R, Cluster(4), rng=np.random.default_rng(0),
        imbalance=0.3, features=features, check_memory=False,
    )


def _small_engine(mode, features=None):
    return strategy_engine(
        mode, small_config(), small_cluster(),
        rng=np.random.default_rng(0), imbalance=0.3, features=features,
    )


class TestMicroBatchedSchedule:
    def test_registered_as_strategy_and_engine_mode(self):
        assert "microbatch-ec" in strategy_names()
        assert "microbatch-ec" in engine_modes()
        assert "auto" in engine_modes()

    def test_beats_plain_expert_centric_on_mixed_r(self):
        """Chunk overlap hides All-to-All behind expert compute (Fig. 5)."""
        plain = _mixed_engine("expert-centric").run_iteration()
        micro = _mixed_engine(
            "microbatch-ec", JanusFeatures(micro_batches=4)
        ).run_iteration()
        assert micro.seconds < plain.seconds
        # Same tokens routed: total cross-node traffic is unchanged.
        assert sum(micro.nic_egress_bytes) == pytest.approx(
            sum(plain.nic_egress_bytes)
        )

    def test_single_micro_batch_degenerates_gracefully(self):
        result = _small_engine(
            "microbatch-ec", JanusFeatures(micro_batches=1)
        ).run_iteration()
        assert result.seconds > 0


class TestGradAllreduceSchedule:
    def test_serial_allreduce_adds_time(self):
        base = _small_engine("expert-centric").run_iteration()
        serial = _small_engine(
            "expert-centric", JanusFeatures(grad_allreduce="serial")
        ).run_iteration()
        assert serial.seconds > base.seconds

    def test_overlap_hides_part_of_the_allreduce(self):
        serial = _small_engine(
            "expert-centric", JanusFeatures(grad_allreduce="serial")
        ).run_iteration()
        overlap = _small_engine(
            "expert-centric", JanusFeatures(grad_allreduce="overlap")
        ).run_iteration()
        assert overlap.seconds < serial.seconds

    def test_forward_only_skips_the_allreduce(self):
        base = _small_engine("expert-centric").run_iteration(
            forward_only=True
        )
        overlapped = _small_engine(
            "expert-centric", JanusFeatures(grad_allreduce="overlap")
        ).run_iteration(forward_only=True)
        assert overlapped.seconds == base.seconds


class TestRingAllReduce:
    def _drive(self, num_machines, bytes_per_rank, hierarchical):
        env = Environment()
        fabric = Fabric(env, Cluster(num_machines))
        done = all_reduce(fabric, bytes_per_rank, hierarchical=hierarchical)

        def driver():
            yield done

        env.run(until=env.process(driver()))
        return env.now, fabric

    def test_zero_bytes_completes_instantly(self):
        now, _ = self._drive(2, 0.0, hierarchical=True)
        assert now == 0.0

    def test_hierarchical_beats_flat_ring(self):
        """Striping the inter-machine ring over all NICs must win."""
        size = 1 << 30
        hier, _ = self._drive(2, size, hierarchical=True)
        flat, _ = self._drive(2, size, hierarchical=False)
        assert 0 < hier < flat

    def test_single_machine_stays_on_nvlink(self):
        _, fabric = self._drive(1, 1 << 20, hierarchical=True)
        assert fabric.nic_bytes(0, "out") == 0.0

    def test_negative_bytes_rejected(self):
        env = Environment()
        fabric = Fabric(env, Cluster(2))
        with pytest.raises(ValueError):
            all_reduce(fabric, -1.0)


class TestAutoSchedule:
    def test_mixed_r_map_picks_per_block_winners(self):
        assert auto_schedule_map(MIXED_R, Cluster(4)) == {
            6: "data-centric", 10: "microbatch-ec"
        }

    def test_high_threshold_disables_data_centric(self):
        schedule = auto_schedule_map(MIXED_R, Cluster(4), threshold=1e9)
        assert "data-centric" not in schedule.values()

    def test_bad_micro_batches_rejected(self):
        with pytest.raises(ValueError):
            auto_schedule_map(MIXED_R, Cluster(4), micro_batches=0)

    def test_auto_engine_overlaps_allreduce_by_default(self):
        engine = auto_engine(small_config(), small_cluster(),
                             rng=np.random.default_rng(0))
        assert engine.features.grad_allreduce == "overlap"

    def test_auto_engine_keeps_explicit_allreduce_choice(self):
        engine = auto_engine(
            small_config(), small_cluster(), rng=np.random.default_rng(0),
            features=JanusFeatures(grad_allreduce="serial"),
        )
        assert engine.features.grad_allreduce == "serial"

    def test_auto_engine_runs_end_to_end(self):
        result = auto_engine(
            small_config(), small_cluster(), rng=np.random.default_rng(0),
            imbalance=0.3,
        ).run_iteration()
        assert result.seconds > 0
        assert set(result.strategies) == {1, 3}


class TestDenseParamBytes:
    def test_formula_splits_attention_and_ffn(self):
        config = small_config()  # H=64, MoE blocks {1, 3}, dtype fp32
        h = config.hidden_dim
        dense = config.dense_param_bytes(0)
        moe = config.dense_param_bytes(1)
        assert moe == 4 * h * h * config.dtype_bytes
        assert dense == (4 * h * h + 2 * h * config.ffn_mult * h) \
            * config.dtype_bytes
        assert dense > moe  # MoE blocks keep only attention dense
