"""Unit tests for the Task Queue schedulers against a hand-built context."""

import pytest

from repro.cluster import Cluster, MachineSpec
from repro.config import ModelConfig
from repro.core import (
    InterNodeScheduler,
    IntraNodeScheduler,
    IterationContext,
    JanusFeatures,
    build_workload,
)
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment
from repro.trace import TraceRecorder


def make_context(
    machines=2,
    gpus=2,
    num_experts=8,
    features=None,
    batch_size=16,
):
    config = ModelConfig(
        name="sched", batch_size=batch_size, seq_len=16, top_k=2,
        hidden_dim=32, num_blocks=3, experts_per_block={1: num_experts},
        num_heads=4,
    )
    cluster = Cluster(machines, MachineSpec(num_gpus=gpus))
    workload = build_workload(config, cluster)
    env = Environment()
    fabric = Fabric(env, cluster)
    ctx = IterationContext(
        env, fabric, workload,
        features if features is not None else JanusFeatures(),
        TraceRecorder(),
    )
    return ctx


def start_iteration(ctx):
    ctx.iteration_start.succeed()
    for (phase, block, rank), event in ctx.block_entry.items():
        if not event.triggered:
            event.succeed()


class TestContextHelpers:
    def test_needed_partition(self):
        ctx = make_context()
        # World 4, 8 experts, E=2: worker 0 owns {0,1}; machine 0 owns
        # {0..3}; internal for worker 0 = {2,3}, external = {4..7}.
        assert ctx.own_experts_with_tokens(1, 0) == [0, 1]
        assert ctx.needed_internal(1, 0) == [2, 3]
        assert ctx.needed_external(1, 0) == [4, 5, 6, 7]
        needed = ctx.needed_experts(1, 0)
        assert sorted(
            ctx.needed_internal(1, 0) + ctx.needed_external(1, 0)
        ) == needed

    def test_machine_external_union(self):
        ctx = make_context()
        assert ctx.machine_external_experts(1, 0) == [4, 5, 6, 7]
        assert ctx.machine_external_experts(1, 1) == [0, 1, 2, 3]

    def test_fetch_start_event_prefetch_vs_entry(self):
        prefetch_ctx = make_context(features=JanusFeatures(prefetch=True))
        entry_ctx = make_context(features=JanusFeatures(prefetch=False))
        assert (
            prefetch_ctx.fetch_start_event("fwd", 1, 0)
            is prefetch_ctx.iteration_start
        )
        assert (
            entry_ctx.fetch_start_event("fwd", 1, 0)
            is entry_ctx.block_entry[("fwd", 1, 0)]
        )
        # Backward fetching always waits for backward block entry.
        assert (
            prefetch_ctx.fetch_start_event("bwd", 1, 0)
            is prefetch_ctx.block_entry[("bwd", 1, 0)]
        )

    def test_mark_ready_triggers_event_and_store(self):
        ctx = make_context()
        ctx.mark_ready("fwd", 1, 0, 5)
        assert ctx.ready_event("fwd", 1, 0, 5).triggered
        assert ctx.ready_store("fwd", 1, 0).items == [5]
        arrivals = ctx.trace.expert_arrivals(worker=0)
        assert arrivals and arrivals[0]["expert"] == 5

    def test_dc_blocks_subset_validated(self):
        config = ModelConfig(
            name="x", batch_size=4, seq_len=8, top_k=2, hidden_dim=32,
            num_blocks=3, experts_per_block={1: 8}, num_heads=4,
        )
        cluster = Cluster(2, MachineSpec(num_gpus=2))
        workload = build_workload(config, cluster)
        env = Environment()
        with pytest.raises(ValueError):
            IterationContext(
                env, Fabric(env, cluster), workload, JanusFeatures(),
                TraceRecorder(), dc_blocks={0},
            )


class TestIntraScheduler:
    def run_pipeline(self, ctx, rank):
        scheduler = IntraNodeScheduler(ctx, rank)
        proc = ctx.env.process(scheduler.pull_pipeline("fwd"))
        start_iteration(ctx)
        # Satisfy cache events so external copies can proceed.
        for expert in ctx.machine_external_experts(1, ctx.layout.machine_of(rank)):
            event = ctx.cached_event(1, ctx.layout.machine_of(rank), expert)
            if not event.triggered:
                event.succeed()
        # Consume arrivals so credits recycle.
        consumed = []

        def consumer():
            store = ctx.ready_store("fwd", 1, rank)
            needed = len(ctx.needed_experts(1, rank))
            for _ in range(needed):
                expert = yield store.get()
                consumed.append(expert)
                ctx.credits[rank].put(1)

        consumer_proc = ctx.env.process(consumer())

        def driver():
            yield AllOf(ctx.env, [proc, consumer_proc])

        ctx.env.run(until=ctx.env.process(driver()))
        return consumed

    def test_pipeline_fetches_every_needed_expert_once(self):
        ctx = make_context(features=JanusFeatures(topology_aware=False))
        consumed = self.run_pipeline(ctx, rank=0)
        assert sorted(consumed) == ctx.needed_experts(1, 0)
        assert len(consumed) == len(set(consumed))

    def test_internal_experts_arrive_before_external_without_peer(self):
        """The two-stage order: stage-1 NVLink pulls precede stage-2
        copies in the pipeline's issue order."""
        ctx = make_context(features=JanusFeatures(topology_aware=False))
        consumed = self.run_pipeline(ctx, rank=0)
        internal = set(ctx.needed_internal(1, 0))
        first_chunk = consumed[: len(internal)]
        assert set(first_chunk) == internal

    def test_credits_never_exceed_capacity(self):
        ctx = make_context(
            features=JanusFeatures(credit_size=2, topology_aware=False)
        )
        self.run_pipeline(ctx, rank=0)
        assert 0 <= ctx.credits[0].level <= 2

    def test_peer_rank_for_odd_machine_sizes(self):
        ctx = make_context(gpus=2)
        scheduler = IntraNodeScheduler(ctx, 0)
        assert scheduler.peer_rank == 1
        scheduler1 = IntraNodeScheduler(ctx, 1)
        assert scheduler1.peer_rank == 0


class TestInterScheduler:
    def run_fetch(self, ctx, machine):
        inter = InterNodeScheduler(ctx, machine)
        chains = [ctx.env.process(chain) for chain in inter.fetch_pipelines()]
        start_iteration(ctx)

        def driver():
            yield AllOf(ctx.env, chains)

        ctx.env.run(until=ctx.env.process(driver()))
        return inter

    def test_fills_cache_for_every_external_expert(self):
        ctx = make_context()
        self.run_fetch(ctx, machine=0)
        for expert in ctx.machine_external_experts(1, 0):
            assert ctx.cached_event(1, 0, expert).triggered
        assert ctx.cache_fills[0] == 4

    def test_cross_node_bytes_match_one_pull_per_expert(self):
        ctx = make_context()
        self.run_fetch(ctx, machine=0)
        expected = 4 * ctx.workload.expert_bytes
        assert ctx.fabric.nic_bytes(1, "out") == pytest.approx(expected)

    def test_chains_split_work_across_nics(self):
        ctx = make_context(gpus=4, num_experts=16)  # 8 external experts
        inter = InterNodeScheduler(ctx, 0)
        chains = inter.fetch_pipelines()
        # A 4-GPU MachineSpec has 2 NICs -> at most 2 chains.
        assert 1 <= len(chains) <= ctx.fabric.cluster.spec.num_nics

    def test_topology_aware_order_staggers_source_machines(self):
        ctx = make_context(
            machines=3, num_experts=12,
            features=JanusFeatures(topology_aware=True),
        )
        # On machine 0, externals come from machines 1 and 2; the staggered
        # order visits machine (0+1)%3=1 first.
        inter = InterNodeScheduler(ctx, 0)
        order = inter._external_order(1)
        placement = ctx.placements[1]
        machines = [
            ctx.layout.machine_of(placement.owner(expert)) for expert in order
        ]
        assert machines[0] == 1
        # And the non-staggered order is plain ascending expert id.
        ctx2 = make_context(
            machines=3, num_experts=12,
            features=JanusFeatures(topology_aware=False),
        )
        inter2 = InterNodeScheduler(ctx2, 0)
        assert inter2._external_order(1) == sorted(inter2._external_order(1))

    def test_grad_collectors_wait_for_all_contributors(self):
        ctx = make_context()
        inter = InterNodeScheduler(ctx, 0)
        collectors = [ctx.env.process(c) for c in inter.grad_collectors()]
        start_iteration(ctx)

        # Nothing completes until every contributing worker reports.
        ctx.env.run(until=1.0)
        assert not any(proc.triggered for proc in collectors)

        for expert in ctx.machine_external_experts(1, 0):
            for rank in ctx.layout.ranks_of_machine(0):
                if expert in ctx.needed_external(1, rank):
                    ctx.grad_contrib_store(1, 0, expert).put(1)

        def driver():
            yield AllOf(ctx.env, collectors)

        ctx.env.run(until=ctx.env.process(driver()))
        assert all(proc.triggered for proc in collectors)
        # One pre-reduced payload per external expert left the machine.
        assert ctx.fabric.nic_bytes(0, "out") == pytest.approx(
            4 * ctx.workload.expert_bytes
        )
