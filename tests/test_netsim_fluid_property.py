"""Property test: the incremental water-filling solver is bit-identical
to a from-scratch recompute.

The fluid network maintains packed per-flow state, per-link load counts
and a memoized group solve incrementally as flows join and leave.  The
correctness claim is that none of those shortcuts can ever change a rate:
at any instant, the rates it assigns equal — exactly, not approximately —
what a *fresh* network (empty caches, flows re-added from scratch) would
compute for the same active-path multiset and capacities.

Rates depend only on (path multiset, capacities), so the reference clones
the live network's active paths into a brand-new ``FluidNetwork`` and
runs one cold solve.  Random schedules interleave arrivals on random
one- or two-link paths with mid-flight capacity rescales, which
exercises joins, departures (compaction), the solve memo across epochs,
and the CSR adjacency cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import FluidNetwork
from repro.simkit import Environment


def _build(links):
    env = Environment()
    net = FluidNetwork(env)
    for link_id, bandwidth in links:
        net.add_link(link_id, bandwidth)
    return env, net


def _fresh_rates(links, active):
    """Rates a brand-new network assigns to the same path multiset."""
    _, reference = _build(links)
    clones = [reference.transfer(flow.path, 1.0) for flow in active]
    reference._assign_rates()
    return [clone.rate for clone in clones]


def _settle(env):
    """Drain the zero-delay recompute scheduled at the current instant."""
    env.run(until=env.now)


@st.composite
def schedules(draw):
    num_links = draw(st.integers(min_value=2, max_value=5))
    links = [
        (f"l{i}", draw(st.floats(min_value=1.0, max_value=500.0)))
        for i in range(num_links)
    ]
    paths = st.lists(
        st.integers(min_value=0, max_value=num_links - 1),
        min_size=1,
        max_size=2,
        unique=True,
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("arrive"),
                    paths,
                    st.floats(min_value=1.0, max_value=1000.0),
                ),
                st.tuples(
                    st.just("rescale"),
                    st.integers(min_value=0, max_value=num_links - 1),
                    st.floats(min_value=1.0, max_value=500.0),
                ),
            ),
            min_size=1,
            max_size=12,
        )
    )
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0),
            min_size=len(ops),
            max_size=len(ops),
        )
    )
    return links, ops, gaps


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_incremental_rates_match_fresh_recompute(schedule):
    links, ops, gaps = schedule
    env, net = _build(links)
    for (op, *payload), gap in zip(ops, gaps):
        if gap > 0:
            # Let flows progress (and possibly finish) before the next op.
            env.run(until=min(env.now + gap, env.peek()) if net._n else env.now + gap)
        if op == "arrive":
            indices, size = payload
            net.transfer(tuple(f"l{i}" for i in indices), size)
        else:
            index, bandwidth = payload
            net.set_capacity(f"l{index}", bandwidth)
        _settle(env)
        active = net.active_flows
        current_links = [(lid, net.capacity(lid)) for lid in net.links()]
        expected = _fresh_rates(current_links, active)
        got = [flow.rate for flow in active]
        assert got == expected  # exact float equality, not approx

    # Drain to completion: every flow must finish (no lost wakeups).
    while net.active_flows:
        env.run(until=env.peek())
        _settle(env)
    assert net._n == 0
