"""Smoke tests: the fast example scripts run end to end."""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "traffic reduction" in out


def test_paradigm_planner_runs(capsys):
    run_example("paradigm_planner.py")
    out = capsys.readouterr().out
    assert "OOM on 80GB A100!" in out       # the Fig. 16 case
    assert "data-centric" in out


def test_train_tiny_moe_runs(capsys):
    run_example("train_tiny_moe.py")
    out = capsys.readouterr().out
    assert "identical training trajectories" in out


def test_pull_protocol_runs(capsys):
    run_example("pull_protocol.py")
    out = capsys.readouterr().out
    assert "sequential fine-grained pulls" in out
    assert "cross-machine bytes moved" in out
