"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.workloads import SyntheticCorpus


class TestSyntheticCorpus:
    def test_deterministic_in_seed_and_index(self):
        a = SyntheticCorpus(64, 16, seed=1)
        b = SyntheticCorpus(64, 16, seed=1)
        np.testing.assert_array_equal(a.sequence(5), b.sequence(5))
        assert not np.array_equal(a.sequence(5), a.sequence(6))
        c = SyntheticCorpus(64, 16, seed=2)
        assert not np.array_equal(a.sequence(5), c.sequence(5))

    def test_example_is_shifted_pair(self):
        corpus = SyntheticCorpus(64, 16, seed=0)
        tokens, targets = corpus.example(3)
        assert tokens.shape == targets.shape == (16,)
        np.testing.assert_array_equal(tokens[1:], targets[:-1])

    def test_tokens_in_vocab(self):
        corpus = SyntheticCorpus(32, 20, seed=0)
        for index in range(10):
            sequence = corpus.sequence(index)
            assert sequence.min() >= 0
            assert sequence.max() < 32

    def test_zipf_head_dominates(self):
        corpus = SyntheticCorpus(256, 64, zipf_exponent=1.2, seed=0)
        sample = np.concatenate([corpus.sequence(i) for i in range(200)])
        counts = np.bincount(sample, minlength=256)
        head = counts[:16].sum()
        assert head > 0.4 * counts.sum()

    def test_motifs_create_repetitions(self):
        plain = SyntheticCorpus(256, 128, motif_prob=0.0, seed=0)
        motif = SyntheticCorpus(256, 128, motif_prob=0.6, seed=0)

        def repeat_rate(corpus):
            repeats = 0
            total = 0
            for index in range(50):
                seq = corpus.sequence(index)
                repeats += int((seq[1:] == seq[:-1]).sum())
                total += len(seq) - 1
            return repeats / total

        assert repeat_rate(motif) > 2 * repeat_rate(plain)

    def test_batches_are_disjoint_examples(self):
        corpus = SyntheticCorpus(64, 8, seed=0)
        tokens0, _ = corpus.batch(0, batch_size=4)
        tokens1, _ = corpus.batch(1, batch_size=4)
        assert tokens0.shape == (4, 8)
        assert not np.array_equal(tokens0, tokens1)

    def test_worker_batches_cover_distinct_data(self):
        corpus = SyntheticCorpus(64, 8, seed=0)
        tokens, targets = corpus.worker_batches(0, world_size=3, batch_size=2)
        assert len(tokens) == len(targets) == 3
        assert not np.array_equal(tokens[0], tokens[1])

    def test_iter_steps_advances(self):
        corpus = SyntheticCorpus(64, 8, seed=0)
        stream = corpus.iter_steps(world_size=2, batch_size=2)
        first = next(stream)[0][0]
        second = next(stream)[0][0]
        assert not np.array_equal(first, second)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(2, 16)
        with pytest.raises(ValueError):
            SyntheticCorpus(64, 1)
        with pytest.raises(ValueError):
            SyntheticCorpus(64, 16, motif_prob=1.0)
        with pytest.raises(ValueError):
            SyntheticCorpus(64, 16, zipf_exponent=0)
        with pytest.raises(ValueError):
            SyntheticCorpus(64, 16).batch(0, 0)

    def test_trainer_learns_motif_structure(self):
        """End-to-end: a tiny MoE model trained on the corpus improves."""
        from repro.config import ModelConfig
        from repro.runtime import (
            DistributedMoETransformer,
            DistributedTrainer,
            RankLayout,
        )
        from repro.tensorlib import Adam

        config = ModelConfig(
            name="corpus-test", batch_size=4, seq_len=8, top_k=2,
            hidden_dim=16, num_blocks=2, experts_per_block={1: 4},
            num_heads=4, vocab_size=32, causal=True,
        )
        layout = RankLayout(2, 2)
        corpus = SyntheticCorpus(32, 8, motif_prob=0.5, seed=3)
        model = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "data-centric"},
            rng=np.random.default_rng(0),
        )
        trainer = DistributedTrainer(model, Adam(model.parameters(), lr=5e-3))
        metrics = trainer.fit(
            corpus.iter_steps(layout.world_size, config.batch_size), steps=6
        )
        assert metrics[-1].loss < metrics[0].loss
