"""Tests for the perf-regression baseline harness and committed snapshot."""

import json
from pathlib import Path

import baseline  # benchmarks/ is on sys.path via tests/conftest.py

BASELINE_FILE = Path(__file__).parent.parent / "benchmarks" / "BENCH_metrics.json"


class TestCompare:
    def _runs(self, **overrides):
        metrics = {"makespan_seconds": 1.0, "pull.issued": 100.0}
        metrics.update(overrides)
        return {"runs": {"model/mode": metrics}}

    def test_identical_captures_pass(self):
        current = self._runs()
        assert baseline.compare(current, self._runs(), tolerance=0.0) == []

    def test_drift_beyond_tolerance_is_reported(self):
        problems = baseline.compare(
            self._runs(makespan_seconds=1.05), self._runs(), tolerance=0.02
        )
        assert len(problems) == 1
        assert "makespan_seconds" in problems[0]

    def test_drift_within_tolerance_passes(self):
        assert baseline.compare(
            self._runs(makespan_seconds=1.01), self._runs(), tolerance=0.02
        ) == []

    def test_zero_valued_metrics_compare_clean(self):
        assert baseline.compare(
            self._runs(**{"pull.issued": 0.0}),
            self._runs(**{"pull.issued": 0.0}),
            tolerance=0.0,
        ) == []

    def test_missing_run_is_flagged(self):
        current = {"runs": {}}
        problems = baseline.compare(current, self._runs(), tolerance=0.1)
        assert any("missing" in line for line in problems)

    def test_new_run_requires_rewrite(self):
        problems = baseline.compare(self._runs(), {"runs": {}}, tolerance=0.1)
        assert any("--write" in line for line in problems)

    def test_metric_set_change_is_flagged(self):
        current = self._runs()
        committed = self._runs()
        del committed["runs"]["model/mode"]["pull.issued"]
        problems = baseline.compare(current, committed, tolerance=0.1)
        assert any("metric set changed" in line for line in problems)


class TestCommittedBaseline:
    def test_snapshot_exists_with_expected_shape(self):
        snapshot = json.loads(BASELINE_FILE.read_text())
        assert snapshot["schema"] == baseline.SCHEMA
        expected_keys = {
            f"{model}/{mode}"
            for model in baseline.MODEL_FACTORIES
            for mode in baseline.MODES
        }
        assert set(snapshot["runs"]) == expected_keys
        for metrics in snapshot["runs"].values():
            assert metrics["makespan_seconds"] > 0
            assert 0.0 <= metrics["overlap_efficiency"] <= 1.0
            assert metrics["egress_bytes_total"] > 0

    def test_fresh_capture_of_one_config_matches_snapshot(self):
        """One exact-match spot check; the full sweep runs in CI."""
        snapshot = json.loads(BASELINE_FILE.read_text())
        fresh = baseline._capture_one("MoE-GPT", "unified")
        committed = snapshot["runs"]["MoE-GPT/unified"]
        assert set(fresh) == set(committed)
        for metric, value in committed.items():
            assert fresh[metric] == value, metric
