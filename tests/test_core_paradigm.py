"""Tests for the §5.1.3 analysis: Comm_EC, Comm_DC, R and paradigm choice."""

import pytest

from repro.config import (
    moe_bert,
    moe_gpt,
    moe_transformer_xl,
    pr_moe_transformer_xl,
)
from repro.core import (
    Paradigm,
    comm_data_centric,
    comm_expert_centric,
    gain_ratio,
    profile_block,
    profile_model,
    select_paradigm,
)


class TestGainRatio:
    def test_paper_r_values_for_fig14_configs(self):
        """§7.3: R = 5.33 (BERT), 5.33 (GPT), 16 (Transformer-xl) on 32 GPUs
        across 4 machines (E=1)."""
        assert gain_ratio(256, 128, 2, 4, 768, 1) == pytest.approx(5.33, abs=0.01)
        assert gain_ratio(256, 64, 4, 4, 768, 1) == pytest.approx(5.33, abs=0.01)
        assert gain_ratio(64, 512, 2, 4, 256, 1) == pytest.approx(16.0)

    def test_paper_gpt3_example(self):
        """§9: GPT-3-scale example gives R = 20.35 (S=2048, H=12288,
        per-worker batch 1M/128 sequences, k=1, E=1, 16 machines)."""
        batch = 1_000_000 / 128
        ratio = gain_ratio(batch, 2048, 1, 16, 12288, 1)
        assert ratio == pytest.approx(20.35, abs=0.01)
        assert select_paradigm(ratio) is Paradigm.DATA_CENTRIC

    def test_r_monotonicity(self):
        base = gain_ratio(64, 128, 2, 4, 512, 1)
        assert gain_ratio(128, 128, 2, 4, 512, 1) == pytest.approx(2 * base)
        assert gain_ratio(64, 256, 2, 4, 512, 1) == pytest.approx(2 * base)
        assert gain_ratio(64, 128, 4, 4, 512, 1) == pytest.approx(2 * base)
        assert gain_ratio(64, 128, 2, 8, 512, 1) == pytest.approx(base / 2)
        assert gain_ratio(64, 128, 2, 4, 1024, 1) == pytest.approx(base / 2)
        assert gain_ratio(64, 128, 2, 4, 512, 2) == pytest.approx(base / 2)

    def test_selection_threshold(self):
        assert select_paradigm(1.01) is Paradigm.DATA_CENTRIC
        assert select_paradigm(1.0) is Paradigm.EXPERT_CENTRIC
        assert select_paradigm(0.5) is Paradigm.EXPERT_CENTRIC

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            gain_ratio(0, 128, 2, 4, 512, 1)
        with pytest.raises(ValueError):
            gain_ratio(64, 128, 2, 4, 512, 0)


class TestCommFormulas:
    def test_comm_dc_formula(self):
        # 8 H^2 E m (n-1) elements x dtype bytes
        assert comm_data_centric(256, 1, 8, 4, 4) == 8 * 256**2 * 8 * 3 * 4

    def test_comm_ec_formula(self):
        # 2 m H T (n-1)/n elements x dtype bytes
        expected = 2 * 8 * 256 * 1000 * (3 / 4) * 4
        assert comm_expert_centric(256, 1000, 8, 4, 4) == pytest.approx(expected)

    def test_ratio_of_formulas_equals_r(self):
        hidden, experts, workers, machines = 512, 2, 8, 4
        batch, seq, k = 64, 256, 2
        tokens = batch * seq * k
        ratio = comm_expert_centric(hidden, tokens, workers, machines) / (
            comm_data_centric(hidden, experts, workers, machines)
        )
        assert ratio == pytest.approx(
            gain_ratio(batch, seq, k, machines, hidden, experts)
        )

    def test_single_machine_rejected(self):
        with pytest.raises(ValueError):
            comm_data_centric(256, 1, 8, 1)
        with pytest.raises(ValueError):
            comm_expert_centric(256, 1000, 8, 1)

    @pytest.mark.parametrize(
        "factory,ec_expected,dc_expected",
        [
            (moe_bert, 9.0, 1.69),
            (moe_gpt, 2.25, 0.42),
            (moe_transformer_xl, 9.0, 0.56),
        ],
    )
    def test_table1_traffic_matches_paper(self, factory, ec_expected, dc_expected):
        """Table 1 (32 experts, 4 machines): E.C. 9 / 2.25 / 9, D.C.
        1.69 / 0.42 / 0.56 — per-machine forward-phase volume in GiB."""
        gib = 1024.0**3
        config = factory(32)
        ec = (
            comm_expert_centric(config.hidden_dim, config.tokens_per_worker, 8, 4)
            * config.num_moe_blocks
            / gib
        )
        dc = (
            comm_data_centric(config.hidden_dim, 1, 8, 4)
            * config.num_moe_blocks
            / gib
        )
        assert ec == pytest.approx(ec_expected, rel=0.02)
        assert dc == pytest.approx(dc_expected, rel=0.02)


class TestProfiles:
    def test_fig14_models_choose_data_centric(self):
        for factory in (moe_bert, moe_gpt, moe_transformer_xl):
            config = factory(32)
            for profile in profile_model(config, 4, 8):
                assert profile.paradigm is Paradigm.DATA_CENTRIC
                assert profile.ratio > 1

    def test_pr_moe_mixes_paradigms(self):
        """§7.5: shallow blocks (E=1) data-centric, deep blocks (E=4)
        expert-centric on the 16-GPU cluster."""
        config = pr_moe_transformer_xl(1)
        profiles = profile_model(config, 2, 8)
        paradigms = [p.paradigm for p in profiles]
        assert paradigms[:2] == [Paradigm.DATA_CENTRIC] * 2
        # Deep blocks: R = 8/E = 2 with n=2 by Eq.1; the paper quotes R=1
        # (computed with n=4).  Either way E=4 blocks have much lower R.
        assert profiles[2].ratio == pytest.approx(profiles[0].ratio / 4)

    def test_traffic_reduction_reported(self):
        profile = profile_block(moe_transformer_xl(32), 0, 4, 8)
        assert profile.traffic_reduction == pytest.approx(profile.ratio)

    def test_profile_block_fields(self):
        config = moe_gpt(32)
        profile = profile_block(config, 10, 4, 8)
        assert profile.block_index == 10
        assert profile.num_experts == 32
        assert profile.experts_per_worker == 1
        assert profile.expert_centric_bytes > profile.data_centric_bytes
