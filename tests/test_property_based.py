"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, Device, MachineSpec
from repro.core import (
    comm_data_centric,
    comm_expert_centric,
    gain_ratio,
    internal_pull_order,
    pcie_peer_schedule,
)
from repro.netsim import FluidNetwork, MemoryTracker, OutOfMemoryError
from repro.runtime import ExpertPlacement, RankLayout
from repro.simkit import Environment
from repro.tensorlib import Tensor
from repro.tensorlib import functional as F
from repro.workloads import balanced_assignment

machines = st.integers(min_value=2, max_value=8)
workers = st.integers(min_value=1, max_value=16)
dims = st.integers(min_value=1, max_value=4096)


class TestParadigmFormulaProperties:
    @given(
        batch=st.integers(1, 2048),
        seq=st.integers(1, 4096),
        k=st.integers(1, 8),
        n=machines,
        hidden=st.integers(64, 8192),
        experts=st.integers(1, 16),
        m=workers,
    )
    @settings(max_examples=60)
    def test_r_equals_formula_ratio(self, batch, seq, k, n, hidden, experts, m):
        """R must equal Comm_EC / Comm_DC for every parameterization."""
        tokens = batch * seq * k
        ratio = comm_expert_centric(hidden, tokens, m, n) / comm_data_centric(
            hidden, experts, m, n
        )
        assert ratio == pytest.approx(
            gain_ratio(batch, seq, k, n, hidden, experts)
        )

    @given(
        batch=st.integers(1, 2048),
        seq=st.integers(1, 4096),
        k=st.integers(1, 8),
        n=machines,
        hidden=st.integers(64, 8192),
        experts=st.integers(1, 16),
    )
    @settings(max_examples=60)
    def test_r_is_positive(self, batch, seq, k, n, hidden, experts):
        assert gain_ratio(batch, seq, k, n, hidden, experts) > 0


class TestPriorityProperties:
    @given(
        m=st.integers(2, 16),
        experts=st.integers(1, 8),
        staggered=st.booleans(),
    )
    @settings(max_examples=60)
    def test_pull_order_is_exactly_the_foreign_slots(self, m, experts, staggered):
        for rank in range(m):
            order = internal_pull_order(rank, m, experts, staggered=staggered)
            own = set(range(rank * experts, (rank + 1) * experts))
            assert set(order) == set(range(m * experts)) - own
            assert len(order) == len(set(order))

    @given(m=st.integers(2, 16), experts=st.integers(1, 4))
    @settings(max_examples=40)
    def test_staggered_orders_never_collide(self, m, experts):
        """At every schedule position, all workers pull from distinct
        owners (the Fig. 7b guarantee)."""
        orders = [internal_pull_order(r, m, experts) for r in range(m)]
        positions = len(orders[0])
        for position in range(positions):
            owners = [orders[r][position] // experts for r in range(m)]
            assert len(set(owners)) == m

    @given(
        count=st.integers(0, 40),
        lane=st.integers(0, 7),
        enabled=st.booleans(),
    )
    @settings(max_examples=60)
    def test_peer_schedule_covers_all_experts_once(self, count, lane, enabled):
        experts = list(range(100, 100 + count))
        schedule = pcie_peer_schedule(experts, lane, enabled=enabled)
        assert sorted(step.expert for step in schedule) == experts

    @given(count=st.integers(1, 40), lane=st.integers(0, 7))
    @settings(max_examples=40)
    def test_peer_schedule_splits_pcie_load_nearly_evenly(self, count, lane):
        schedule = pcie_peer_schedule(list(range(count)), lane)
        pcie = sum(1 for step in schedule if step.via == "pcie")
        assert abs(pcie - count / 2) <= 1


class TestLayoutProperties:
    @given(n=machines, m=workers)
    @settings(max_examples=40)
    def test_rank_round_trip(self, n, m):
        layout = RankLayout(n, m)
        for rank in range(layout.world_size):
            machine = layout.machine_of(rank)
            local = layout.local_rank_of(rank)
            assert rank in layout.ranks_of_machine(machine)
            assert machine * m + local == rank

    @given(
        world=st.integers(1, 64),
        per_worker=st.integers(1, 8),
    )
    @settings(max_examples=40)
    def test_placement_partitions_experts(self, world, per_worker):
        placement = ExpertPlacement(world * per_worker, world)
        seen = []
        for rank in range(world):
            seen.extend(placement.experts_of(rank))
        assert sorted(seen) == list(range(world * per_worker))
        for expert in range(world * per_worker):
            assert expert in placement.experts_of(placement.owner(expert))


class TestClusterRoutingProperties:
    @given(
        n=st.integers(1, 4),
        gpus=st.sampled_from([2, 4, 8]),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_routes_are_short_and_direction_consistent(self, n, gpus, data):
        cluster = Cluster(n, MachineSpec(num_gpus=gpus))
        devices = list(cluster.gpus()) + [
            Device.host(machine) for machine in range(n)
        ]
        src = data.draw(st.sampled_from(devices))
        dst = data.draw(st.sampled_from(devices))
        if src.kind == "host" and dst.kind == "host" and src == dst:
            return
        try:
            path = cluster.route(src, dst)
        except ValueError:
            # host->host same machine is undefined; everything else routes.
            assert src.kind == dst.kind == "host" and src.machine == dst.machine
            return
        assert len(path) <= 2
        if src == dst:
            assert path == []
        else:
            assert path[0].machine == src.machine
            assert path[-1].machine == dst.machine


class TestFluidProperties:
    @given(sizes=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_shared_link_conserves_bytes_and_matches_total_time(self, sizes):
        """All flows on one link: finish time == total bytes / bandwidth,
        and the link's byte counter equals the total."""
        env = Environment()
        net = FluidNetwork(env)
        net.add_link("l", 1000.0)
        flows = [net.transfer(("l",), size) for size in sizes]

        def driver():
            for flow in flows:
                yield flow.done

        env.run(until=env.process(driver()))
        assert env.now == pytest.approx(sum(sizes) / 1000.0, rel=1e-6)
        assert net.link_bytes["l"] == pytest.approx(sum(sizes), rel=1e-6)

    @given(
        sizes=st.lists(st.floats(1.0, 1e6), min_size=2, max_size=8),
        bandwidths=st.lists(st.floats(10.0, 1e4), min_size=2, max_size=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_link_path_bounded_by_bottleneck(self, sizes, bandwidths):
        env = Environment()
        net = FluidNetwork(env)
        net.add_link("a", bandwidths[0])
        net.add_link("b", bandwidths[1])
        flows = [net.transfer(("a", "b"), size) for size in sizes]

        def driver():
            for flow in flows:
                yield flow.done

        env.run(until=env.process(driver()))
        bottleneck = min(bandwidths)
        assert env.now == pytest.approx(sum(sizes) / bottleneck, rel=1e-6)


class TestMemoryProperties:
    @given(
        capacity=st.floats(1.0, 1e12),
        fractions=st.lists(st.floats(0.0, 0.4), min_size=1, max_size=10),
    )
    @settings(max_examples=60)
    def test_tracker_never_exceeds_capacity(self, capacity, fractions):
        tracker = MemoryTracker(capacity)
        for index, fraction in enumerate(fractions):
            size = fraction * capacity
            if size <= tracker.available:
                tracker.allocate(index, size)
            else:
                with pytest.raises(OutOfMemoryError):
                    tracker.allocate(index, size)
        assert tracker.used <= capacity
        assert tracker.peak <= capacity


class TestWorkloadProperties:
    @given(slots=st.integers(0, 100000), experts=st.integers(1, 128))
    @settings(max_examples=60)
    def test_balanced_assignment_invariants(self, slots, experts):
        counts = balanced_assignment(slots, experts)
        assert counts.sum() == slots
        assert counts.max() - counts.min() <= 1
        assert len(counts) == experts


class TestTensorProperties:
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        seed=st.integers(0, 10000),
    )
    @settings(max_examples=40)
    def test_softmax_rows_always_sum_to_one(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((rows, cols)) * 10)
        probs = F.softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert (probs >= 0).all()

    @given(
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        seed=st.integers(0, 10000),
    )
    @settings(max_examples=40)
    def test_gather_scatter_adjoint(self, shape, seed):
        """<scatter(x), y> == <x, gather(y)> — the dispatch/combine pair
        used by the MoE layer is a true adjoint pair."""
        rng = np.random.default_rng(seed)
        rows, dim = shape
        index = rng.integers(0, rows, size=rows + 2)
        x = rng.standard_normal((rows + 2, dim))
        y = rng.standard_normal((rows, dim))
        scattered = Tensor.scatter_rows(rows, index, Tensor(x)).numpy()
        gathered = Tensor(y).gather_rows(index).numpy()
        assert np.vdot(scattered, y) == pytest.approx(np.vdot(x, gathered))
