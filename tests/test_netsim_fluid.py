"""Unit tests for the fluid max-min network model."""

import pytest

from repro.netsim import FluidNetwork
from repro.simkit import Environment


def make_net(links):
    env = Environment()
    net = FluidNetwork(env)
    for link_id, bandwidth in links.items():
        net.add_link(link_id, bandwidth)
    return env, net


def run_flows(env, net, specs):
    """Start flows per spec list [(path, size, latency)] and run to done."""
    flows = [net.transfer(path, size, latency) for path, size, latency in specs]

    def driver():
        for flow in flows:
            yield flow.done

    env.run(until=env.process(driver()))
    return flows


def test_single_flow_duration_is_size_over_bandwidth():
    env, net = make_net({"l": 100.0})
    (flow,) = run_flows(env, net, [(("l",), 1000.0, 0.0)])
    assert flow.completed_at == pytest.approx(10.0)


def test_latency_is_added_once_before_transfer():
    env, net = make_net({"l": 100.0})
    (flow,) = run_flows(env, net, [(("l",), 1000.0, 2.5)])
    assert flow.completed_at == pytest.approx(12.5)


def test_two_flows_share_a_link_fairly():
    env, net = make_net({"l": 100.0})
    flows = run_flows(
        env, net, [(("l",), 1000.0, 0.0), (("l",), 1000.0, 0.0)]
    )
    # Both progress at 50 B/s and complete together at t=20.
    for flow in flows:
        assert flow.completed_at == pytest.approx(20.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    env, net = make_net({"l": 100.0})
    flows = run_flows(
        env, net, [(("l",), 400.0, 0.0), (("l",), 1000.0, 0.0)]
    )
    # Shared until t=8 (400B each at 50B/s); then the long flow runs at
    # 100 B/s for its remaining 600B -> done at t=14.
    assert flows[0].completed_at == pytest.approx(8.0)
    assert flows[1].completed_at == pytest.approx(14.0)


def test_bottleneck_is_path_minimum():
    env, net = make_net({"fast": 1000.0, "slow": 10.0})
    (flow,) = run_flows(env, net, [(("fast", "slow"), 100.0, 0.0)])
    assert flow.completed_at == pytest.approx(10.0)


def test_max_min_gives_unbottlenecked_flow_the_residual():
    # Flow A crosses links X and Y; flow B crosses only X.
    # X has 100, Y has 30. A is limited to 30 by Y; B gets 70 on X.
    env, net = make_net({"x": 100.0, "y": 30.0})
    flows = run_flows(
        env, net, [(("x", "y"), 300.0, 0.0), (("x",), 700.0, 0.0)]
    )
    assert flows[0].completed_at == pytest.approx(10.0)
    assert flows[1].completed_at == pytest.approx(10.0)


def test_staggered_arrivals_reallocate_rates():
    env, net = make_net({"l": 100.0})
    flow_a = net.transfer(("l",), 1000.0)

    def late_start(results):
        yield env.timeout(5)
        flow_b = net.transfer(("l",), 250.0)
        yield flow_b.done
        results.append(flow_b)

    results = []
    env.process(late_start(results))

    def driver():
        yield flow_a.done

    env.run(until=env.process(driver()))
    # A runs alone 0-5 (500B), shares 5-10 (250B), alone after.
    flow_b = results[0]
    assert flow_b.completed_at == pytest.approx(10.0)
    assert flow_a.completed_at == pytest.approx(12.5)


def test_zero_size_transfer_completes_after_latency():
    env, net = make_net({"l": 100.0})
    (flow,) = run_flows(env, net, [(("l",), 0.0, 3.0)])
    assert flow.completed_at == pytest.approx(3.0)


def test_empty_path_local_copy():
    env, net = make_net({})
    (flow,) = run_flows(env, net, [((), 1e9, 0.0)])
    assert flow.completed_at == pytest.approx(0.0)


def test_unknown_link_rejected():
    env, net = make_net({"l": 1.0})
    with pytest.raises(KeyError):
        net.transfer(("ghost",), 10.0)


def test_negative_size_rejected():
    env, net = make_net({"l": 1.0})
    with pytest.raises(ValueError):
        net.transfer(("l",), -5.0)


def test_duplicate_link_rejected():
    env, net = make_net({"l": 1.0})
    with pytest.raises(ValueError):
        net.add_link("l", 2.0)


def test_link_byte_accounting():
    env, net = make_net({"a": 100.0, "b": 100.0})
    run_flows(env, net, [(("a", "b"), 500.0, 0.0), (("a",), 250.0, 0.0)])
    assert net.link_bytes["a"] == pytest.approx(750.0)
    assert net.link_bytes["b"] == pytest.approx(500.0)
    assert net.total_bytes_completed == pytest.approx(750.0)


def test_many_symmetric_flows_complete_together():
    env, net = make_net({f"l{i}": 50.0 for i in range(8)})
    specs = [((f"l{i}",), 500.0, 0.0) for i in range(8)]
    flows = run_flows(env, net, specs)
    for flow in flows:
        assert flow.completed_at == pytest.approx(10.0)


def test_utilization_metric():
    env, net = make_net({"l": 100.0})
    run_flows(env, net, [(("l",), 500.0, 0.0)])
    # 500 bytes over 5 seconds on a 100 B/s link: 100% while active.
    assert net.link_utilization("l", elapsed=5.0) == pytest.approx(1.0)
    assert net.link_utilization("l", elapsed=10.0) == pytest.approx(0.5)


def test_paths_longer_than_two_links_rejected():
    env, net = make_net({"a": 1.0, "b": 1.0, "c": 1.0})
    with pytest.raises(ValueError):
        net.transfer(("a", "b", "c"), 10.0)


class TestStaleTimerGuard:
    """A timer must never force-finish a flow with real bytes remaining.

    The epsilon fallback in ``_on_timer`` exists to absorb floating-point
    residue when the minimum-ETA flow lands microscopically short of zero.
    After a mid-flight ``set_capacity`` rescale the same code path can see
    a flow with *macroscopic* bytes left; it must recompute and re-arm
    instead of declaring the flow done early.
    """

    def test_stale_timer_cannot_force_finish_flow_with_real_bytes(self):
        env, net = make_net({"l": 100.0})
        flow = net.transfer(("l",), 1000.0)
        env.run(until=1.0)
        # Fire the timer callback "early", with the live generation, while
        # 900 bytes are still outstanding (a stale-timer scenario).
        net._on_timer(net._generation)
        assert not flow.done.triggered
        assert flow.remaining == pytest.approx(900.0)
        env.run(until=flow.done)
        assert flow.completed_at == pytest.approx(10.0)

    def test_capacity_drop_midflight_completes_at_rescaled_rate(self):
        env, net = make_net({"l": 100.0})
        flow = net.transfer(("l",), 1000.0)

        def chaos():
            yield env.timeout(5.0)
            net.set_capacity("l", 1.0)

        env.process(chaos(), daemon=True)
        # Probe at the pre-drop ETA: the flow must still be moving the
        # bytes the rescale left it with, not force-finished.  (remaining
        # reads the state as of the last recompute, at t=5.)
        probed = {}

        def probe():
            yield env.timeout(10.0)
            probed["remaining"] = flow.remaining
            probed["done"] = flow.done.triggered

        env.process(probe(), daemon=True)
        env.run(until=flow.done)
        assert probed["done"] is False
        assert probed["remaining"] == pytest.approx(500.0)
        # 500 B at 100 B/s, then 500 B at 1 B/s.
        assert flow.completed_at == pytest.approx(505.0)

    def test_fault_window_capacity_drop_regression(self):
        from repro.cluster import Cluster
        from repro.faults import FaultInjector, FaultPlan, LinkFault
        from repro.netsim import Fabric

        env = Environment()
        fabric = Fabric(env, Cluster(2))
        cluster = fabric.cluster
        src = cluster.gpu_device(0)
        dst = cluster.gpu_device(cluster.spec.num_gpus)  # first GPU, machine 1
        path = cluster.route(src, dst)
        latency = fabric.path_latency(path)
        bandwidth = min(fabric.network.capacity(link) for link in path)
        size = 4.0 * bandwidth  # 4 s of transfer at the nominal rate
        # Halve every NIC once half the bytes are through.
        plan = FaultPlan(
            faults=(LinkFault("nic", 0.5, start=latency + 2.0),)
        )
        FaultInjector(plan, fabric).install()
        flow = fabric.transfer(src, dst, size)
        env.run(until=flow.done)
        # 2 s at full rate moves half the bytes; the rest at half rate
        # takes 4 s more.
        assert flow.completed_at == pytest.approx(latency + 6.0)


class TestSubUlpResidue:
    """Flows whose transfer time underflows float addition must finish.

    Subtraction residue after a recompute scales as rate * ulp(now) —
    independent of flow size — so a small flow on a fast link can be left
    with remaining bytes whose ETA satisfies ``now + eta == now``.  The
    zero-delay timer then never advances the clock and the solver
    livelocks.  ``_on_timer`` treats such flows as finished.
    """

    def test_tiny_flow_on_fast_link_completes_instead_of_livelocking(self):
        # 1e-7 B at 2.5e10 B/s -> eta = 4e-18 s, far below ulp(0.5).
        env, net = make_net({"l": 2.5e10})
        state = {}

        def driver():
            yield env.timeout(0.5)
            state["flow"] = net.transfer(("l",), 1e-7)
            yield state["flow"].done

        proc = env.process(driver())
        # Drive manually with an event budget: a regression livelocks on
        # zero-delay timers, and ``env.run`` would spin forever.
        budget = env.events_processed + 10_000
        while proc.callbacks is not None:
            assert env.events_processed < budget, (
                "fluid solver livelocked on a sub-ULP flow"
            )
            env.step()
        assert state["flow"].done.triggered
        assert state["flow"].completed_at == pytest.approx(0.5)
