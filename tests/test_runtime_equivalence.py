"""Equivalence of the expert-centric and data-centric paradigms.

The paper's correctness claim (§3.2): "the computation result in
expert-centric paradigm is strictly equivalent to the results in
data-centric paradigm ... data-centric paradigm does not affect the
convergence of training and model accuracy."  These tests verify it with
real numerics: same weights, same tokens -> same outputs, same gradients on
every parameter, under both executors and at full-model scale.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.runtime import (
    DataCentricMoE,
    DistributedMoETransformer,
    ExpertCentricMoE,
    RankLayout,
)
from repro.tensorlib import Tensor

RNG = np.random.default_rng(42)

HIDDEN = 16
EXPERTS = 8
TOP_K = 2


def make_pair(layout, top_k=TOP_K, num_experts=EXPERTS):
    """Two executors with identical weights."""
    ec = ExpertCentricMoE(
        HIDDEN, num_experts, top_k, layout, rng=np.random.default_rng(1)
    )
    dc = DataCentricMoE(
        HIDDEN, num_experts, top_k, layout, rng=np.random.default_rng(2)
    )
    dc.import_state(ec.export_state())
    return ec, dc


def worker_tokens(layout, tokens_per_worker=24, requires_grad=False):
    rng = np.random.default_rng(9)
    return [
        Tensor(
            rng.standard_normal((tokens_per_worker, HIDDEN)),
            requires_grad=requires_grad,
        )
        for _ in range(layout.world_size)
    ]


def total_loss(outputs):
    loss = None
    for out in outputs:
        term = (out * out).sum()
        loss = term if loss is None else loss + term
    return loss


class TestForwardEquivalence:
    @pytest.mark.parametrize("machines,workers", [(2, 2), (2, 4), (4, 2)])
    def test_outputs_match(self, machines, workers):
        layout = RankLayout(machines, workers)
        ec, dc = make_pair(layout)
        tokens = worker_tokens(layout)
        ec_out = ec.run(tokens)
        dc_out = dc.run(tokens)
        for a, b in zip(ec_out, dc_out):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-10)

    def test_outputs_match_top1(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout, top_k=1)
        tokens = worker_tokens(layout)
        for a, b in zip(ec.run(tokens), dc.run(tokens)):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-10)

    def test_outputs_match_multiple_experts_per_worker(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout, num_experts=16)  # E = 4 per worker
        tokens = worker_tokens(layout)
        for a, b in zip(ec.run(tokens), dc.run(tokens)):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-10)

    def test_gate_decisions_identical(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        tokens = worker_tokens(layout)
        ec.run(tokens)
        dc.run(tokens)
        for dec_a, dec_b in zip(ec.last_decisions, dc.last_decisions):
            np.testing.assert_array_equal(
                dec_a.expert_indices, dec_b.expert_indices
            )


class TestBackwardEquivalence:
    def test_expert_gradients_match(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        tokens_ec = worker_tokens(layout)
        tokens_dc = worker_tokens(layout)

        total_loss(ec.run(tokens_ec)).backward()
        ec.finish_backward()
        total_loss(dc.run(tokens_dc)).backward()
        dc.finish_backward()

        for expert_a, expert_b in zip(ec.experts, dc.experts):
            for (name, param_a), (_, param_b) in zip(
                expert_a.named_parameters(), expert_b.named_parameters()
            ):
                assert param_a.grad is not None, f"no EC grad for {name}"
                assert param_b.grad is not None, f"no DC grad for {name}"
                np.testing.assert_allclose(
                    param_a.grad, param_b.grad, atol=1e-9,
                    err_msg=f"gradient mismatch on expert param {name}",
                )

    def test_gate_gradients_match(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        total_loss(ec.run(worker_tokens(layout))).backward()
        ec.finish_backward()
        total_loss(dc.run(worker_tokens(layout))).backward()
        dc.finish_backward()
        np.testing.assert_allclose(
            ec.gate.proj.weight.grad, dc.gate.proj.weight.grad, atol=1e-9
        )

    def test_token_gradients_match(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        tokens_ec = worker_tokens(layout, requires_grad=True)
        tokens_dc = worker_tokens(layout, requires_grad=True)
        total_loss(ec.run(tokens_ec)).backward()
        ec.finish_backward()
        total_loss(dc.run(tokens_dc)).backward()
        dc.finish_backward()
        for a, b in zip(tokens_ec, tokens_dc):
            np.testing.assert_allclose(a.grad, b.grad, atol=1e-9)

    def test_finish_backward_twice_rejected(self):
        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        total_loss(ec.run(worker_tokens(layout))).backward()
        ec.finish_backward()
        with pytest.raises(RuntimeError):
            ec.finish_backward()
        total_loss(dc.run(worker_tokens(layout))).backward()
        dc.finish_backward()
        with pytest.raises(RuntimeError):
            dc.finish_backward()


class TestTrainingEquivalence:
    def test_sgd_trajectories_identical(self):
        """Several optimizer steps under each paradigm stay in lockstep."""
        from repro.tensorlib import SGD

        layout = RankLayout(2, 2)
        ec, dc = make_pair(layout)
        opt_ec = SGD(ec.parameters(), lr=0.05)
        opt_dc = SGD(dc.parameters(), lr=0.05)
        for step in range(3):
            rng = np.random.default_rng(100 + step)
            batches = [
                rng.standard_normal((12, HIDDEN))
                for _ in range(layout.world_size)
            ]
            opt_ec.zero_grad()
            total_loss(ec.run([Tensor(b) for b in batches])).backward()
            ec.finish_backward()
            opt_ec.step()

            opt_dc.zero_grad()
            total_loss(dc.run([Tensor(b) for b in batches])).backward()
            dc.finish_backward()
            opt_dc.step()

        for param_a, param_b in zip(ec.parameters(), dc.parameters()):
            np.testing.assert_allclose(param_a.data, param_b.data, atol=1e-9)


def tiny_model_config():
    return ModelConfig(
        name="tiny",
        batch_size=3,
        seq_len=4,
        top_k=2,
        hidden_dim=16,
        num_blocks=3,
        experts_per_block={1: 4},
        num_heads=4,
        vocab_size=40,
        causal=True,
    )


class TestFullModelEquivalence:
    def test_distributed_logits_match_across_paradigms(self):
        config = tiny_model_config()
        layout = RankLayout(2, 2)
        model_ec = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "expert-centric"},
            rng=np.random.default_rng(5),
        )
        model_dc = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "data-centric"},
            rng=np.random.default_rng(6),
        )
        from repro.models import MoETransformer

        reference = MoETransformer(config, rng=np.random.default_rng(7))
        model_ec.load_from_reference(reference)
        model_dc.load_from_reference(reference)

        rng = np.random.default_rng(8)
        batches = [
            rng.integers(0, config.vocab_size, size=(3, 4)) for _ in range(4)
        ]
        logits_ec = model_ec.forward(batches)
        logits_dc = model_dc.forward(batches)
        for a, b in zip(logits_ec, logits_dc):
            np.testing.assert_allclose(a.numpy(), b.numpy(), atol=1e-9)

    def test_distributed_matches_single_process_reference(self):
        config = tiny_model_config()
        layout = RankLayout(2, 2)
        from repro.models import MoETransformer

        reference = MoETransformer(config, rng=np.random.default_rng(7))
        distributed = DistributedMoETransformer(
            config, layout, paradigm_for_block={1: "data-centric"},
            rng=np.random.default_rng(9),
        )
        distributed.load_from_reference(reference)

        rng = np.random.default_rng(8)
        batches = [
            rng.integers(0, config.vocab_size, size=(3, 4)) for _ in range(4)
        ]
        dist_logits = distributed.forward(batches)
        for batch, logits in zip(batches, dist_logits):
            np.testing.assert_allclose(
                reference(batch).numpy(), logits.numpy(), atol=1e-9
            )

    def test_full_model_gradients_match_across_paradigms(self):
        config = tiny_model_config()
        layout = RankLayout(2, 2)
        from repro.models import MoETransformer

        reference = MoETransformer(config, rng=np.random.default_rng(7))
        models = {}
        for paradigm in ("expert-centric", "data-centric"):
            model = DistributedMoETransformer(
                config, layout, paradigm_for_block={1: paradigm},
                rng=np.random.default_rng(3),
            )
            model.load_from_reference(reference)
            rng = np.random.default_rng(8)
            batches = [
                rng.integers(0, config.vocab_size, size=(3, 4))
                for _ in range(4)
            ]
            targets = [
                rng.integers(0, config.vocab_size, size=(3, 4))
                for _ in range(4)
            ]
            loss = model.loss(batches, targets)
            loss.backward()
            model.finish_backward()
            models[paradigm] = model

        grads_ec = [p.grad for p in models["expert-centric"].parameters()]
        grads_dc = [p.grad for p in models["data-centric"].parameters()]
        assert len(grads_ec) == len(grads_dc)
        for grad_a, grad_b in zip(grads_ec, grads_dc):
            assert (grad_a is None) == (grad_b is None)
            if grad_a is not None:
                np.testing.assert_allclose(grad_a, grad_b, atol=1e-8)

    def test_world_size_mismatch_rejected(self):
        config = tiny_model_config()
        model = DistributedMoETransformer(config, RankLayout(2, 2))
        with pytest.raises(ValueError):
            model.forward([np.zeros((2, 4), dtype=int)] * 3)

    def test_unknown_paradigm_rejected(self):
        config = tiny_model_config()
        with pytest.raises(ValueError):
            DistributedMoETransformer(
                config, RankLayout(2, 2),
                paradigm_for_block={1: "token-centric"},
            )
