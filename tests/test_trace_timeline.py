"""Tests for ASCII timeline rendering."""

import pytest

from repro.trace import TraceRecorder, render_block_gantt, render_timeline


def sample_trace():
    trace = TraceRecorder()
    trace.record("compute.dense", 0.0, 0.4, worker=0, block=0)
    trace.record("comm.a2a", 0.4, 0.8, block=0)
    trace.record("compute.expert", 0.8, 1.0, worker=0, block=0)
    trace.mark("expert_ready", 0.5, worker=0, expert=1)
    trace.mark("block_complete", 1.0, worker=0, block=0)
    return trace


class TestRenderTimeline:
    def test_contains_lane_glyphs(self):
        text = render_timeline(sample_trace(), width=40)
        assert "D" in text
        assert "A" in text
        assert "E" in text
        assert "*" in text

    def test_lane_order_and_labels(self):
        text = render_timeline(sample_trace(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("compute.dense")
        assert lines[-2].startswith("events")
        assert "ms" in lines[-1]

    def test_rows_have_fixed_width(self):
        text = render_timeline(sample_trace(), width=50)
        rows = [line for line in text.splitlines() if "|" in line]
        # All bars span the same number of columns.
        bar_lengths = {
            len(line.split("|")[1]) for line in rows
        }
        assert bar_lengths == {50}

    def test_worker_filter(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1, worker=3)
        text = render_timeline(trace, width=40, worker=0)
        dense_row = text.splitlines()[0]
        assert "D" not in dense_row

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(sample_trace(), width=5)

    def test_empty_trace_renders(self):
        text = render_timeline(TraceRecorder(), width=20)
        assert "events" in text


class TestRenderBlockGantt:
    def test_bars_grow_with_completion_time(self):
        trace = TraceRecorder()
        trace.mark("block_complete", 0.2, worker=0, block=0)
        trace.mark("block_complete", 1.0, worker=0, block=1)
        text = render_block_gantt(trace, width=40)
        lines = text.splitlines()
        assert lines[0].count("=") < lines[1].count("=")
        assert "0.20 ms" not in lines[1]

    def test_empty_gantt(self):
        assert "no block completions" in render_block_gantt(TraceRecorder())
