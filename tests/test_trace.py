"""Tests for the span/event trace recorder."""

import pytest

from repro.trace import Span, TraceRecorder


class TestSpan:
    def test_duration(self):
        span = Span("compute.dense", 1.0, 3.5)
        assert span.duration == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Span("compute.dense", 3.0, 1.0)


class TestTraceRecorder:
    def test_record_and_query_by_prefix(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1, worker=0)
        trace.record("compute.expert", 1, 2, worker=0)
        trace.record("comm.a2a", 0, 5, block=1)
        assert len(trace.spans_of("compute")) == 2
        assert len(trace.spans_of("comm.a2a")) == 1

    def test_total_time_sums_durations(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 2)
        trace.record("comm.a2a", 1, 4)  # overlapping
        assert trace.total_time("comm.a2a") == 5

    def test_busy_time_merges_overlaps(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 2)
        trace.record("comm.a2a", 1, 4)
        trace.record("comm.a2a", 10, 12)
        assert trace.busy_time("comm.a2a") == 6  # [0,4] + [10,12]

    def test_busy_time_empty(self):
        assert TraceRecorder().busy_time("comm") == 0

    def test_busy_time_disjoint(self):
        trace = TraceRecorder()
        trace.record("x", 0, 1)
        trace.record("x", 5, 6)
        assert trace.busy_time("x") == 2

    def test_mark_and_events_of(self):
        trace = TraceRecorder()
        trace.mark("expert_ready", 1.5, worker=0, expert=3)
        trace.mark("block_complete", 2.0, worker=0, block=1)
        events = trace.events_of("expert_ready")
        assert len(events) == 1
        assert events[0]["expert"] == 3

    def test_block_completions_take_latest(self):
        trace = TraceRecorder()
        trace.mark("block_complete", 1.0, worker=0, block=0)
        trace.mark("block_complete", 2.0, worker=1, block=0)
        assert trace.block_completions() == {0: 2.0}
        assert trace.block_completions(worker=0) == {0: 1.0}

    def test_expert_arrivals_filter_by_worker(self):
        trace = TraceRecorder()
        trace.mark("expert_ready", 1.0, worker=0, expert=1)
        trace.mark("expert_ready", 2.0, worker=1, expert=1)
        assert len(trace.expert_arrivals()) == 2
        assert len(trace.expert_arrivals(worker=1)) == 1

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("x", 0, 1)
        trace.mark("y", 0)
        trace.clear()
        assert not trace.spans
        assert not trace.events


class TestIterationScoping:
    """A recorder shared across iterations must never double-count."""

    def test_new_iteration_stamps_subsequent_records(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 1)
        assert trace.new_iteration() == 1
        trace.record("comm.a2a", 0, 2)
        trace.mark("block_complete", 1.5, worker=0, block=0)
        assert [span.iteration for span in trace.spans] == [0, 1]
        assert trace.events[-1]["iteration"] == 1

    def test_queries_filter_by_iteration(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 1)
        trace.new_iteration()
        trace.record("comm.a2a", 0, 2)
        assert trace.busy_time("comm.a2a", iteration=0) == 1
        assert trace.busy_time("comm.a2a", iteration=1) == 2
        assert trace.total_time("comm.a2a", iteration=1) == 2
        assert len(trace.spans_of("comm.a2a", iteration=0)) == 1
        # Default scope still covers the whole recording.
        assert trace.busy_time("comm.a2a") == 2  # intervals overlap

    def test_events_and_completions_filter_by_iteration(self):
        trace = TraceRecorder()
        trace.mark("block_complete", 1.0, worker=0, block=0)
        trace.mark("expert_ready", 0.5, worker=0, expert=2)
        trace.new_iteration()
        trace.mark("block_complete", 2.0, worker=0, block=0)
        assert trace.block_completions(iteration=0) == {0: 1.0}
        assert trace.block_completions(iteration=1) == {0: 2.0}
        assert trace.block_completions() == {0: 2.0}
        assert len(trace.expert_arrivals(iteration=1)) == 0
        assert len(trace.expert_arrivals(iteration=0)) == 1

    def test_worker_busy_time_scopes(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1, worker=0)
        trace.new_iteration()
        trace.record("compute.dense", 2, 4, worker=0)
        assert trace.worker_busy_time(0, iteration=0) == 1
        assert trace.worker_busy_time(0, iteration=1) == 2
        assert trace.worker_busy_time(0) == 3

    def test_clear_resets_the_scope(self):
        trace = TraceRecorder()
        trace.new_iteration()
        trace.clear()
        assert trace.iteration == 0
        trace.record("x", 0, 1)
        assert trace.spans[0].iteration == 0

    def test_busy_union_merges_across_prefixes(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 2)
        trace.record("compute.dense", 1, 3)
        assert trace.busy_union("comm.", "compute.") == 3
        assert trace.busy_union("comm.") == 2


class TestEngineSharedRecorder:
    """Engine-level regression: per-iteration queries on a shared recorder
    return the same numbers as per-iteration fresh recorders."""

    def test_shared_recorder_does_not_double_count(self):
        import numpy as np

        from repro.core import engine_for
        from tests.conftest import small_cluster, small_config

        def build(trace=None):
            return engine_for(
                "expert-centric", small_config(), small_cluster(),
                rng=np.random.default_rng(0), imbalance=0.3, trace=trace,
            )

        fresh = build().run(2)
        shared_trace = TraceRecorder()
        shared = build(shared_trace).run(2)

        assert [result.iteration for result in shared] == [0, 1]
        for fresh_result, shared_result in zip(fresh, shared):
            assert (
                shared_result.all_to_all_seconds
                == fresh_result.all_to_all_seconds
            )
        # The unscoped union is NOT the sum of iterations (spans overlap on
        # the simulated clock); the scoped queries are what Fig. 3 needs.
        per_iteration = [
            shared_trace.busy_time("comm.a2a", iteration=i) for i in (0, 1)
        ]
        assert per_iteration[0] == per_iteration[1] > 0
        assert shared_trace.busy_time("comm.a2a") < sum(per_iteration)
        assert shared_trace.block_completions(
            worker=0, iteration=0
        ) == shared_trace.block_completions(worker=0, iteration=1)
