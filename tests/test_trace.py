"""Tests for the span/event trace recorder."""

import pytest

from repro.trace import Span, TraceRecorder


class TestSpan:
    def test_duration(self):
        span = Span("compute.dense", 1.0, 3.5)
        assert span.duration == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Span("compute.dense", 3.0, 1.0)


class TestTraceRecorder:
    def test_record_and_query_by_prefix(self):
        trace = TraceRecorder()
        trace.record("compute.dense", 0, 1, worker=0)
        trace.record("compute.expert", 1, 2, worker=0)
        trace.record("comm.a2a", 0, 5, block=1)
        assert len(trace.spans_of("compute")) == 2
        assert len(trace.spans_of("comm.a2a")) == 1

    def test_total_time_sums_durations(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 2)
        trace.record("comm.a2a", 1, 4)  # overlapping
        assert trace.total_time("comm.a2a") == 5

    def test_busy_time_merges_overlaps(self):
        trace = TraceRecorder()
        trace.record("comm.a2a", 0, 2)
        trace.record("comm.a2a", 1, 4)
        trace.record("comm.a2a", 10, 12)
        assert trace.busy_time("comm.a2a") == 6  # [0,4] + [10,12]

    def test_busy_time_empty(self):
        assert TraceRecorder().busy_time("comm") == 0

    def test_busy_time_disjoint(self):
        trace = TraceRecorder()
        trace.record("x", 0, 1)
        trace.record("x", 5, 6)
        assert trace.busy_time("x") == 2

    def test_mark_and_events_of(self):
        trace = TraceRecorder()
        trace.mark("expert_ready", 1.5, worker=0, expert=3)
        trace.mark("block_complete", 2.0, worker=0, block=1)
        events = trace.events_of("expert_ready")
        assert len(events) == 1
        assert events[0]["expert"] == 3

    def test_block_completions_take_latest(self):
        trace = TraceRecorder()
        trace.mark("block_complete", 1.0, worker=0, block=0)
        trace.mark("block_complete", 2.0, worker=1, block=0)
        assert trace.block_completions() == {0: 2.0}
        assert trace.block_completions(worker=0) == {0: 1.0}

    def test_expert_arrivals_filter_by_worker(self):
        trace = TraceRecorder()
        trace.mark("expert_ready", 1.0, worker=0, expert=1)
        trace.mark("expert_ready", 2.0, worker=1, expert=1)
        assert len(trace.expert_arrivals()) == 2
        assert len(trace.expert_arrivals(worker=1)) == 1

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("x", 0, 1)
        trace.mark("y", 0)
        trace.clear()
        assert not trace.spans
        assert not trace.events
