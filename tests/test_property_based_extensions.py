"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import r_grid
from repro.cluster import Cluster
from repro.config import ModelConfig
from repro.core import JanusFeatures, strategy_engine
from repro.core.memory_model import (
    estimate_data_centric,
    estimate_expert_centric,
    estimate_mixed,
)
from repro.core.tensor_parallel import plan_tensor_parallel
from repro.faults import FaultPlan, MessageLoss, ResilienceConfig
from repro.models import TopKGate
from repro.tensorlib import Tensor
from repro.workloads import SyntheticCorpus


def moe_config(batch, seq, hidden, experts, k):
    return ModelConfig(
        name="prop", batch_size=batch, seq_len=seq, top_k=k,
        hidden_dim=hidden, num_blocks=2, experts_per_block={1: experts},
        num_heads=4,
    )


class TestMemoryModelProperties:
    @given(
        batch=st.sampled_from([8, 32, 128]),
        seq=st.sampled_from([64, 256, 1024]),
        hidden=st.sampled_from([64, 256, 768]),
    )
    @settings(max_examples=30)
    def test_mixed_estimate_bounds(self, batch, seq, hidden):
        """Mixed mode carries the DC fixed buffers plus a pro-rated share
        of the EC All-to-All buffers: at least pure-DC, and never more
        overhead than the two pure modes combined."""
        config = ModelConfig(
            name="m", batch_size=batch, seq_len=seq, top_k=2,
            hidden_dim=hidden, num_blocks=4,
            experts_per_block={1: 32, 3: 32}, num_heads=4,
        )
        ec = estimate_expert_centric(config, 32)
        dc = estimate_data_centric(config, 32)
        mixed = estimate_mixed(config, 32, 1, 1)
        assert mixed.total >= dc.total
        assert (
            mixed.paradigm_extra
            <= ec.paradigm_extra + dc.paradigm_extra + 1e-6
        )
        # The EC share is pro-rated: one of two blocks -> half the slack.
        assert mixed.paradigm_extra - dc.paradigm_extra == pytest.approx(
            ec.paradigm_extra / 2
        )

    @given(seq=st.sampled_from([64, 128, 256, 512, 1024]))
    @settings(max_examples=20)
    def test_ec_estimate_monotone_in_seq_len(self, seq):
        shorter = estimate_expert_centric(
            moe_config(32, seq, 256, 32, 2), 32
        ).total
        longer = estimate_expert_centric(
            moe_config(32, seq * 2, 256, 32, 2), 32
        ).total
        assert longer > shorter


class TestTensorParallelProperties:
    @given(tp=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20)
    def test_aggregate_group_payload_invariant(self, tp):
        config = moe_config(64, 128, 256, 32, 2)
        plan = plan_tensor_parallel(config, 1, 4, 8, tp_degree=tp)
        # tp shards x shard size == one full expert, always.
        assert tp * plan.shard_bytes == pytest.approx(config.expert_bytes)
        # Experts per group x number of groups == total experts.
        assert plan.experts_per_group * (32 // tp) == 32


class TestGateProperties:
    @given(
        tokens=st.integers(4, 60),
        experts=st.sampled_from([2, 4, 8]),
        k=st.integers(1, 2),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_combine_weights_always_normalized(self, tokens, experts, k, seed):
        gate = TopKGate(8, experts, k, rng=np.random.default_rng(seed))
        decision = gate(
            Tensor(np.random.default_rng(seed + 1).standard_normal((tokens, 8)))
        )
        weights = decision.combine_weights.numpy()
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-9)
        assert (weights >= 0).all()

    @given(
        factor=st.floats(0.25, 2.0),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_bound_always_respected(self, factor, seed):
        gate = TopKGate(
            8, 4, 2, rng=np.random.default_rng(seed), capacity_factor=factor
        )
        decision = gate(
            Tensor(np.random.default_rng(seed).standard_normal((40, 8)))
        )
        assert decision.tokens_per_expert(4).max() <= gate.expert_capacity(40)


class TestCorpusProperties:
    @given(
        seed=st.integers(0, 10000),
        index=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_sequences_deterministic_and_in_range(self, seed, index):
        corpus = SyntheticCorpus(64, 12, seed=seed)
        a = corpus.sequence(index)
        b = corpus.sequence(index)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 64
        assert len(a) == 13


class TestCreditDiscipline:
    @given(
        credit_size=st.sampled_from([1, 2, 4, 16]),
        rate=st.sampled_from([0.0, 0.3, 1.0]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=15, deadline=None)
    def test_credits_conserved_under_pull_loss(self, credit_size, rate, seed):
        """§5.1.1 credit discipline survives fault injection: in-flight
        fetches never exceed C (the credit Container can never go
        negative), and every credit is back in the pool once the
        iteration completes — whether pulls succeeded, were retried, or
        fell back to stale copies."""
        config = moe_config(8, 32, 64, 16, 2)
        cluster = Cluster(2)
        plan = FaultPlan(
            seed=seed,
            faults=(MessageLoss(kinds=("pull-request",), rate=rate),),
        )
        engine = strategy_engine(
            "data-centric", config, cluster,
            features=JanusFeatures(credit_size=credit_size),
            check_memory=False,
            fault_plan=plan, resilience=ResilienceConfig(),
        )
        result = engine.run_iteration()
        # All credits released: every worker's pool is full again.
        assert set(result.credit_levels.values()) == {credit_size}
        # In-flight <= C throughout: the pool never went negative.
        assert all(
            0 <= level <= credit_size
            for level in result.credit_min_levels.values()
        )


class TestSweepProperties:
    @given(
        hidden=st.sampled_from([128, 256, 1024]),
        experts=st.integers(1, 8),
        machines=st.integers(2, 8),
    )
    @settings(max_examples=30)
    def test_grid_positive_and_monotone(self, hidden, experts, machines):
        batches = [8, 64, 512]
        seqs = [32, 256, 2048]
        grid = r_grid(batches, seqs, 2, machines, hidden, experts)
        assert (grid > 0).all()
        assert (np.diff(grid, axis=0) > 0).all()
        assert (np.diff(grid, axis=1) > 0).all()
