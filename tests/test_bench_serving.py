"""Tests for the serving benchmark suite (``repro.bench.serving``).

Wall-clock numbers are host-dependent, so the gate layers are exercised
on synthetic captures: the structural win (disaggregated p99 TPOT beats
unified on the skewed trace), completeness, the calibration-rescaled wall
gate, and the digest pin with its NumPy-version and request-count guards.
One live smoke run covers the capture path end to end.
"""

import numpy as np

from repro.bench import (
    SERVING_FULL_CONFIGS,
    SERVING_QUICK_CONFIGS,
    SERVING_SCHEMA,
    ServingBenchConfig,
    check_serving_snapshot,
    check_serving_wins,
    format_serving_suite,
    run_serving_suite,
    time_serving_config,
)


def _entry(tpot_p99, median_s=0.5, requests=8000,
           digest="d" * 64, completed=True):
    return {
        "median_s": median_s,
        "best_s": median_s,
        "samples": [median_s],
        "events": 100_000,
        "events_per_s": 100_000 / median_s,
        "requests": requests,
        "completed_ok": completed,
        "makespan_s": 3.0,
        "ttft_p50_ms": 0.2,
        "ttft_p99_ms": 0.9,
        "tpot_p50_ms": 0.2,
        "tpot_p99_ms": tpot_p99,
        "slo_attainment": 1.0,
        "goodput_rps": requests / 3.0,
        "nic_gb": 1.0,
        "paradigms": {"decode": "expert-centric"},
        "digest": digest,
    }


def _capture(unified_tpot=1.4, disagg_tpot=1.0, calibration_s=0.020,
             numpy_version=None, **entry_kwargs):
    return {
        "schema": SERVING_SCHEMA,
        "calibration_s": calibration_s,
        "host": {
            "python": "3.x",
            "numpy": numpy_version or np.__version__,
        },
        "runs": {
            "skewed/unified": _entry(unified_tpot, **entry_kwargs),
            "skewed/disaggregated": _entry(disagg_tpot, **entry_kwargs),
        },
    }


class TestKeys:
    def test_key_is_trace_slash_topology(self):
        assert ServingBenchConfig(
            "skewed", "disaggregated", 50_000
        ).key == "skewed/disaggregated"

    def test_quick_configs_are_a_subset_of_full_keys(self):
        full = {spec.key for spec in SERVING_FULL_CONFIGS}
        assert {spec.key for spec in SERVING_QUICK_CONFIGS} <= full

    def test_full_suite_contains_the_structural_pair(self):
        keys = {spec.key for spec in SERVING_FULL_CONFIGS}
        assert {"skewed/unified", "skewed/disaggregated"} <= keys


class TestStructuralWins:
    def test_pass_when_disaggregation_wins(self):
        assert check_serving_wins(_capture()) == []

    def test_flagged_when_disaggregation_loses(self):
        problems = check_serving_wins(
            _capture(unified_tpot=1.0, disagg_tpot=1.4)
        )
        assert len(problems) == 1
        assert "does not beat" in problems[0]

    def test_flagged_when_requests_go_unserved(self):
        capture = _capture()
        capture["runs"]["skewed/unified"]["completed_ok"] = False
        problems = check_serving_wins(capture)
        assert any("not every offered request completed" in p
                   for p in problems)

    def test_missing_pair_is_flagged(self):
        capture = _capture()
        del capture["runs"]["skewed/disaggregated"]
        problems = check_serving_wins(capture)
        assert any("missing the skewed" in p for p in problems)


class TestSnapshotGate:
    def test_pass_at_parity(self):
        snap = _capture()
        assert check_serving_snapshot(_capture(), snap) == []

    def test_wall_regression_is_flagged(self):
        snap = _capture()
        current = _capture(median_s=2.5)
        problems = check_serving_snapshot(current, snap, tolerance=0.25)
        assert any("median" in p for p in problems)

    def test_digest_mismatch_flagged_under_same_numpy(self):
        snap = _capture()
        current = _capture(digest="e" * 64)
        problems = check_serving_snapshot(current, snap)
        assert any("bit-reproducible" in p for p in problems)

    def test_digest_skipped_across_numpy_versions(self):
        snap = _capture(numpy_version="0.0.1")
        current = _capture(digest="e" * 64)
        assert check_serving_snapshot(current, snap) == []

    def test_digest_skipped_when_request_counts_differ(self):
        # --quick replays shorter traces under the same keys.
        snap = _capture(requests=50_000)
        current = _capture(requests=8_000, digest="e" * 64)
        assert check_serving_snapshot(current, snap) == []


class TestLiveCapture:
    def test_tiny_suite_runs_and_formats(self):
        spec = ServingBenchConfig("skewed", "unified", 400)
        current = run_serving_suite([spec], runs=1, calibration=0.020)
        assert current["schema"] == SERVING_SCHEMA
        assert current["config"]["machines"] == 4
        assert "requests=400" in current["config"]["traces"]["skewed"]
        entry = current["runs"][spec.key]
        assert entry["completed_ok"] is True
        assert entry["requests"] == 400
        assert entry["events"] > 0
        assert len(entry["digest"]) == 64
        text = format_serving_suite(current)
        assert "skewed/unified" in text
        assert "calibration" in text

    def test_timed_runs_report_identical_simulated_facts(self):
        spec = ServingBenchConfig("skewed", "disaggregated", 300)
        first = time_serving_config(spec, runs=1)
        second = time_serving_config(spec, runs=2)
        assert first["digest"] == second["digest"]
        assert first["tpot_p99_ms"] == second["tpot_p99_ms"]
        assert len(second["samples"]) == 2
