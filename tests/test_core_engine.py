"""Integration tests for the timed engines (small configs for speed)."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import (
    JanusEngine,
    JanusFeatures,
    Paradigm,
    build_workload,
    data_centric_engine,
    engine_for,
    expert_centric_engine,
    paradigm_map,
    unified_engine,
)


from tests.conftest import small_cluster, small_config  # noqa: E402


class TestEngineBasics:
    def test_ec_engine_runs_and_times_are_positive(self):
        result = expert_centric_engine(small_config(), small_cluster()).run_iteration()
        assert result.seconds > 0
        assert result.all_to_all_seconds > 0
        assert result.all_to_all_share <= 1

    def test_dc_engine_runs_without_all_to_all(self):
        result = data_centric_engine(small_config(), small_cluster()).run_iteration()
        assert result.seconds > 0
        assert result.all_to_all_seconds == 0

    def test_iterations_are_deterministic(self):
        engine = data_centric_engine(small_config(), small_cluster())
        first = engine.run_iteration()
        second = engine.run_iteration()
        assert first.seconds == second.seconds
        np.testing.assert_array_equal(
            first.nic_egress_bytes, second.nic_egress_bytes
        )

    def test_run_many(self):
        engine = expert_centric_engine(small_config(), small_cluster())
        results = engine.run(3)
        assert len(results) == 3

    def test_paradigm_map_coverage_enforced(self):
        cluster = small_cluster()
        workload = build_workload(small_config(), cluster)
        with pytest.raises(ValueError):
            JanusEngine(cluster, workload, {1: Paradigm.DATA_CENTRIC})

    def test_engine_for_modes(self):
        cluster = small_cluster()
        for mode in ("expert-centric", "data-centric", "unified"):
            engine = engine_for(mode, small_config(), cluster)
            assert engine.run_iteration().seconds > 0
        with pytest.raises(ValueError):
            engine_for("token-centric", small_config(), cluster)


class TestTrafficAccounting:
    def test_dc_cross_node_traffic_matches_hierarchical_invariant(self):
        """Forward: one pull per (machine, external expert); backward: one
        pre-reduced gradient per (machine, external expert)."""
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        result = data_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        expert_bytes = workload.expert_bytes
        external_per_machine = 2  # 4 experts, 2 local per machine
        expected = (
            2  # machines
            * len(config.moe_block_indices)
            * external_per_machine
            * expert_bytes
            * 2  # forward pull + backward gradient push
        )
        assert result.nic_egress_bytes.sum() == pytest.approx(expected, rel=1e-6)

    def test_non_hierarchical_moves_more_cross_node(self):
        config = small_config(experts_per_block={1: 8, 3: 8})
        cluster = small_cluster(machines=2, gpus=4)
        workload = build_workload(config, cluster)
        with_cache = data_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        without_cache = data_centric_engine(
            config, cluster, workload=workload,
            features=JanusFeatures(hierarchical=False),
        ).run_iteration()
        assert (
            without_cache.nic_egress_bytes.sum()
            > 2 * with_cache.nic_egress_bytes.sum()
        )

    def test_ec_traffic_matches_dispatch_matrices(self):
        config = small_config()
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        result = expert_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        expected = 0.0
        for block in workload.moe_blocks():
            matrix = block.tokens_sent_matrix(
                workload.placement(block.index), workload.token_bytes
            )
            cross = 0.0
            for src in range(workload.world_size):
                for dst in range(workload.world_size):
                    if src // 2 != dst // 2:  # different machines
                        cross += matrix[src, dst]
            expected += cross * 4  # fwd dispatch+combine, bwd mirror
        assert result.nic_egress_bytes.sum() == pytest.approx(expected, rel=1e-6)


class TestParadigmPerformanceShape:
    def test_dc_faster_when_r_large(self):
        """Tokens heavy, experts light -> data-centric wins (R >> 1)."""
        config = small_config(batch_size=256, seq_len=128, hidden_dim=32)
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        ec = expert_centric_engine(config, cluster, workload=workload).run_iteration()
        dc = data_centric_engine(config, cluster, workload=workload).run_iteration()
        assert dc.seconds < ec.seconds

    def test_ec_faster_when_r_small(self):
        """Few tokens, big experts -> expert-centric wins (R < 1)."""
        config = small_config(batch_size=1, seq_len=8, hidden_dim=256)
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        ec = expert_centric_engine(config, cluster, workload=workload).run_iteration()
        dc = data_centric_engine(config, cluster, workload=workload).run_iteration()
        assert ec.seconds < dc.seconds

    def test_unified_never_worse_than_both_pure_modes(self):
        """A PR-MoE-style mixed model: unified picks per block.

        Block 1 has R = 128 (data-centric clearly wins); block 3 has 512
        experts so R = 1 (expert-centric wins -- pulling 511 experts per
        worker is hopeless).  Unified must match or beat both pure modes.
        """
        config = ModelConfig(
            name="mixed", batch_size=256, seq_len=128, top_k=2, hidden_dim=64,
            num_blocks=4, experts_per_block={1: 4, 3: 512}, num_heads=4,
        )
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        kwargs = dict(workload=workload, check_memory=False)
        ec = expert_centric_engine(config, cluster, **kwargs).run_iteration()
        dc = data_centric_engine(config, cluster, **kwargs).run_iteration()
        unified = unified_engine(config, cluster, **kwargs).run_iteration()
        # At this toy scale fixed link latencies dominate, so allow some
        # slack; the realistic-scale assertion lives in the Fig. 17 bench.
        tolerance = 1.10
        assert unified.seconds <= ec.seconds * tolerance
        assert unified.seconds <= dc.seconds * tolerance

    def test_unified_uses_r_metric_per_block(self):
        config = ModelConfig(
            name="mixed", batch_size=16, seq_len=32, top_k=2, hidden_dim=64,
            num_blocks=4, experts_per_block={1: 4, 3: 16}, num_heads=4,
        )
        mapping = paradigm_map(config, small_cluster())
        assert mapping[1] is Paradigm.DATA_CENTRIC
        assert mapping[3] is Paradigm.EXPERT_CENTRIC


class TestFeatureAblation:
    def make_results(self, config=None, cluster=None):
        config = config or small_config(
            batch_size=64, seq_len=64, experts_per_block={1: 8, 3: 8}
        )
        cluster = cluster or small_cluster(machines=2, gpus=4)
        workload = build_workload(config, cluster)
        results = {}
        for name, features in [
            ("base", JanusFeatures(topology_aware=False, prefetch=False)),
            ("topo", JanusFeatures(topology_aware=True, prefetch=False)),
            ("full", JanusFeatures(topology_aware=True, prefetch=True)),
        ]:
            results[name] = data_centric_engine(
                config, cluster, workload=workload, features=features
            ).run_iteration()
        return results

    def test_each_feature_helps_or_is_neutral(self):
        results = self.make_results()
        slack = 1.02
        assert results["topo"].seconds <= results["base"].seconds * slack
        assert results["full"].seconds <= results["topo"].seconds * slack

    def test_prefetch_starts_pulls_before_block_entry(self):
        config = small_config(batch_size=64, seq_len=64)
        cluster = small_cluster()
        workload = build_workload(config, cluster)
        no_prefetch = data_centric_engine(
            config, cluster, workload=workload,
            features=JanusFeatures(prefetch=False),
        ).run_iteration()
        prefetch = data_centric_engine(
            config, cluster, workload=workload,
            features=JanusFeatures(prefetch=True),
        ).run_iteration()
        first_arrival = min(
            event["time"] for event in prefetch.trace.expert_arrivals(0)
        )
        first_block_done = min(
            prefetch.trace.block_completions(0).values()
        )
        # With prefetch, expert pulls complete while early dense blocks are
        # still computing.
        assert first_arrival < first_block_done * 3
        assert prefetch.seconds <= no_prefetch.seconds * 1.02

    def test_credit_size_one_still_progresses(self):
        config = small_config()
        cluster = small_cluster()
        result = data_centric_engine(
            config, cluster,
            features=JanusFeatures(credit_size=1),
        ).run_iteration()
        assert result.seconds > 0

    def test_invalid_credit_size_rejected(self):
        with pytest.raises(ValueError):
            JanusFeatures(credit_size=0)


class TestTrace:
    def test_block_completions_recorded_for_trace_worker(self):
        config = small_config()
        result = data_centric_engine(config, small_cluster()).run_iteration()
        completions = result.trace.block_completions(0)
        assert sorted(completions) == list(range(config.num_blocks))
        times = [completions[b] for b in range(config.num_blocks)]
        assert times == sorted(times)

    def test_expert_arrivals_recorded(self):
        config = small_config()
        result = data_centric_engine(config, small_cluster()).run_iteration()
        arrivals = result.trace.expert_arrivals(0)
        # Worker 0 needs 3 foreign experts per MoE block (4 experts, 1 own).
        assert len(arrivals) == 2 * 3

    def test_ec_trace_has_a2a_spans(self):
        config = small_config()
        result = expert_centric_engine(config, small_cluster()).run_iteration()
        spans = result.trace.spans_of("comm.a2a")
        # 2 MoE blocks x 2 phases x 2 collectives.
        assert len(spans) == 8
