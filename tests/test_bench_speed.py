"""Tests for the wall-clock benchmark harness (``repro.bench``).

The harness measures *host* time, so no test pins absolute numbers; they
cover the capture schema, the calibration-scaled regression gate, history
preservation on ``--write``, and the CLI wiring.
"""

import json

import pytest

from repro.bench import (
    QUICK_CONFIGS,
    SCHEMA,
    BenchConfig,
    check_snapshot,
    format_suite,
    run_suite,
    time_config,
    write_snapshot,
)
from repro.bench.speed import _CALIBRATION_SCALE_BOUNDS


def _capture(median_s, calibration_s=0.010, key="MoE-GPT/data-centric"):
    return {
        "schema": SCHEMA,
        "calibration_s": calibration_s,
        "runs": {
            key: {
                "median_s": median_s,
                "best_s": median_s,
                "samples": [median_s],
                "sim_seconds": 1.0,
                "events": 1000,
                "events_per_s": 1000 / median_s,
            }
        },
    }


class TestTimeConfig:
    def test_reports_median_events_and_sim_seconds(self):
        spec = BenchConfig("MoE-GPT", "expert-centric")
        result = time_config(spec, runs=2)
        assert len(result["samples"]) == 2
        assert result["median_s"] > 0
        assert result["best_s"] <= result["median_s"]
        assert result["events"] > 0
        assert result["sim_seconds"] > 0
        assert result["events_per_s"] == pytest.approx(
            result["events"] / result["median_s"]
        )


class TestRunSuite:
    def test_capture_schema(self):
        spec = BenchConfig("MoE-GPT", "expert-centric")
        current = run_suite([spec], runs=1, jobs=1)
        assert current["schema"] == SCHEMA
        assert current["config"]["experts"] == spec.experts
        assert current["calibration_s"] > 0
        assert current["host"]["cpus"] >= 1
        assert spec.key in current["runs"]
        parallel = current["parallel"]
        assert parallel["jobs"] == 1
        assert parallel["wall_s"] > 0
        assert parallel["speedup"] > 0
        # The table renderer accepts the capture.
        text = format_suite(current)
        assert spec.key in text
        assert "calibration" in text

    def test_quick_configs_are_a_subset_of_models(self):
        assert all(spec.model == "MoE-GPT" for spec in QUICK_CONFIGS)


class TestCheckSnapshot:
    def test_pass_when_at_parity(self):
        snap = _capture(0.100)
        cur = _capture(0.100)
        assert check_snapshot(cur, snap, tolerance=0.25) == []

    def test_flags_regression_beyond_tolerance(self):
        snap = _capture(0.100)
        cur = _capture(0.130)
        problems = check_snapshot(cur, snap, tolerance=0.25)
        assert len(problems) == 1
        assert "MoE-GPT/data-centric" in problems[0]

    def test_calibration_rescales_the_gate(self):
        # Same simulator efficiency on a host 2x slower: calibration
        # doubles, medians double, gate passes.
        snap = _capture(0.100, calibration_s=0.010)
        cur = _capture(0.200, calibration_s=0.020)
        assert check_snapshot(cur, snap, tolerance=0.25) == []

    def test_calibration_scale_is_clamped(self):
        # A wildly slow calibration cannot absorb a 100x regression.
        low, high = _CALIBRATION_SCALE_BOUNDS
        snap = _capture(0.100, calibration_s=0.010)
        cur = _capture(0.100 * high * 2, calibration_s=0.010 * high * 100)
        assert check_snapshot(cur, snap, tolerance=0.25)

    def test_configs_missing_from_snapshot_are_reported(self):
        snap = _capture(0.100, key="MoE-GPT/unified")
        cur = _capture(0.100)  # data-centric, absent from snapshot
        problems = check_snapshot(cur, snap, tolerance=0.25)
        assert "not in committed snapshot" in problems[0]

    def test_quick_capture_skips_unrun_configs(self):
        snap = _capture(0.100)
        snap["runs"]["MoE-BERT/unified"] = dict(
            snap["runs"]["MoE-GPT/data-centric"]
        )
        cur = _capture(0.100)
        assert check_snapshot(cur, snap, tolerance=0.25) == []


class TestWriteSnapshot:
    def test_history_is_preserved(self, tmp_path):
        path = tmp_path / "BENCH_speed.json"
        history = [{"label": "pre-optimization", "runs": {}}]
        first = _capture(0.500)
        first["history"] = history
        path.write_text(json.dumps(first))
        written = write_snapshot(path, _capture(0.100))
        assert written["history"] == history
        on_disk = json.loads(path.read_text())
        assert on_disk["history"] == history
        assert on_disk["runs"]["MoE-GPT/data-centric"]["median_s"] == 0.100

    def test_fresh_write_gets_empty_history(self, tmp_path):
        path = tmp_path / "BENCH_speed.json"
        written = write_snapshot(path, _capture(0.100))
        assert written["history"] == []


class TestBenchCli:
    def test_check_against_written_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_speed.json"
        args = [
            "bench", "--quick", "--runs", "1", "--jobs", "1",
            "--path", str(path),
        ]
        assert main(args + ["--write"]) == 0
        assert path.exists()
        assert main(args + ["--check", "--tolerance", "10.0"]) == 0
        out = capsys.readouterr().out
        assert "bench OK" in out

    def test_check_without_snapshot_exits_2(self, tmp_path):
        from repro.cli import main

        assert main([
            "bench", "--quick", "--runs", "1", "--jobs", "1",
            "--check", "--path", str(tmp_path / "missing.json"),
        ]) == 2
