"""Tests for forward-only (inference/serving) simulation — paper §9."""

import pytest

from repro.cluster import Cluster, MachineSpec
from repro.config import ModelConfig
from repro.core import (
    data_centric_engine,
    expert_centric_engine,
)


def config(**overrides):
    defaults = dict(
        name="infer", batch_size=32, seq_len=32, top_k=2, hidden_dim=64,
        num_blocks=4, experts_per_block={1: 4, 3: 4}, num_heads=4,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


def cluster():
    return Cluster(2, MachineSpec(num_gpus=2))


class TestInferenceMode:
    def test_inference_is_faster_than_training(self):
        for factory in (expert_centric_engine, data_centric_engine):
            engine = factory(config(), cluster())
            training = engine.run_iteration()
            inference = engine.run_inference()
            assert inference.seconds < training.seconds

    def test_dc_inference_has_no_gradient_traffic(self):
        engine = data_centric_engine(config(), cluster())
        workload = engine.workload
        inference = engine.run_inference()
        # Cross-node traffic is exactly the forward expert pulls: one per
        # (machine, external expert, MoE block) — no grad_push half.
        expected = 2 * 2 * 2 * workload.expert_bytes
        assert inference.nic_egress_bytes.sum() == pytest.approx(expected)

    def test_dc_inference_traffic_is_half_of_training(self):
        engine = data_centric_engine(config(), cluster())
        training = engine.run_iteration()
        inference = engine.run_inference()
        assert inference.nic_egress_bytes.sum() == pytest.approx(
            training.nic_egress_bytes.sum() / 2
        )

    def test_ec_inference_runs_half_the_all_to_alls(self):
        engine = expert_centric_engine(config(), cluster())
        training = engine.run_iteration()
        inference = engine.run_inference()
        assert (
            len(inference.trace.spans_of("comm.a2a"))
            == len(training.trace.spans_of("comm.a2a")) / 2
        )

    def test_inference_deterministic(self):
        engine = data_centric_engine(config(), cluster())
        assert engine.run_inference().seconds == engine.run_inference().seconds

    def test_training_after_inference_unaffected(self):
        engine = data_centric_engine(config(), cluster())
        before = engine.run_iteration().seconds
        engine.run_inference()
        after = engine.run_iteration().seconds
        assert before == after
