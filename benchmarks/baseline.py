"""Perf-regression baseline: golden metrics for the Fig. 14 configs.

Runs the Table 1 / Fig. 14 comparison points (32 experts on 4 machines)
under each paradigm with a :class:`~repro.metrics.MetricsRegistry`
attached and captures the numbers that must not silently drift: makespan,
overlap efficiency, All-to-All share, bytes moved and scheduler counter
totals.  The committed snapshot lives in ``benchmarks/BENCH_metrics.json``.

Usage::

    python benchmarks/baseline.py --write              # regenerate baseline
    python benchmarks/baseline.py --check              # compare vs committed
    python benchmarks/baseline.py --check --tolerance 0.02

``--check`` exits non-zero when any metric leaves the tolerance band —
the CI perf-regression gate.  The simulation is deterministic, so on an
unchanged tree the comparison is exact; the band only absorbs intentional
low-risk drift (e.g. float reassociation from a refactor).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from engine_cache import FEATURE_SETS, MODEL_FACTORIES  # noqa: E402

from repro.cluster import Cluster  # noqa: E402
from repro.core import build_workload, engine_for  # noqa: E402
from repro.metrics import MetricsRegistry, overlap_efficiency  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_metrics.json"
SCHEMA = "janus-repro/bench-baseline/v1"

MODES = ("expert-centric", "data-centric", "pipelined-ec", "unified")
EXPERTS = 32
MACHINES = 4

# Counter totals worth pinning per run (0.0 when a paradigm never touches
# the subsystem — e.g. expert-centric issues no pulls).
COUNTERS = (
    "pull.issued",
    "fetch.issued",
    "cache.requests",
    "cache.hits",
    "cache.misses",
    "link.bytes",
)


def _capture_one(model: str, mode: str) -> dict:
    config = MODEL_FACTORIES[model](EXPERTS)
    cluster = Cluster(MACHINES)
    registry = MetricsRegistry()
    engine = engine_for(
        mode, config, cluster,
        workload=build_workload(config, cluster),
        features=FEATURE_SETS["full"],
        metrics=registry,
    )
    result = engine.run_iteration()
    metrics = {
        "makespan_seconds": result.seconds,
        "overlap_efficiency": overlap_efficiency(
            result.trace, iteration=result.iteration
        ),
        "all_to_all_share": result.all_to_all_share,
        "egress_bytes_total": float(result.nic_egress_bytes.sum()),
    }
    for name in COUNTERS:
        metrics[name] = registry.total(name)
    return metrics


def _capture_job(key: str) -> tuple:
    model, mode = key.split("/", 1)
    return key, _capture_one(model, mode)


def capture(jobs: int = 1) -> dict:
    keys = [
        f"{model}/{mode}"
        for model in sorted(MODEL_FACTORIES)
        for mode in MODES
    ]
    jobs = max(1, min(int(jobs), len(keys)))
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = dict(pool.map(_capture_job, keys))
    else:
        results = dict(_capture_job(key) for key in keys)
    runs = {key: results[key] for key in keys}
    return {
        "schema": SCHEMA,
        "config": {"experts": EXPERTS, "machines": MACHINES,
                   "features": "full"},
        "runs": runs,
    }


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Relative drift per metric; returns the list of violations."""
    problems = []
    base_runs = baseline.get("runs", {})
    cur_runs = current["runs"]
    for key in sorted(set(base_runs) | set(cur_runs)):
        if key not in cur_runs:
            problems.append(f"{key}: missing from current capture")
            continue
        if key not in base_runs:
            problems.append(f"{key}: not in committed baseline (re-run --write)")
            continue
        for metric in sorted(set(base_runs[key]) | set(cur_runs[key])):
            expected = base_runs[key].get(metric)
            actual = cur_runs[key].get(metric)
            if expected is None or actual is None:
                problems.append(f"{key}.{metric}: metric set changed")
                continue
            scale = max(abs(expected), abs(actual))
            drift = abs(actual - expected) / scale if scale > 0 else 0.0
            if drift > tolerance:
                problems.append(
                    f"{key}.{metric}: {expected!r} -> {actual!r} "
                    f"({drift:.1%} > {tolerance:.1%})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--write", action="store_true",
                        help="regenerate the committed baseline")
    action.add_argument("--check", action="store_true",
                        help="compare a fresh capture against the baseline")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance band for --check")
    parser.add_argument("--path", type=Path, default=BASELINE_PATH,
                        help="baseline file location")
    parser.add_argument("--jobs", type=int, default=1,
                        help="capture configs in parallel worker processes")
    args = parser.parse_args(argv)

    current = capture(jobs=args.jobs)
    if args.write:
        args.path.write_text(json.dumps(current, indent=1, sort_keys=True) + "\n")
        print(f"baseline written to {args.path} "
              f"({len(current['runs'])} runs)")
        return 0

    if not args.path.exists():
        print(f"no baseline at {args.path}; run --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(args.path.read_text())
    problems = compare(current, baseline, args.tolerance)
    if problems:
        print(f"perf baseline drifted ({len(problems)} metric(s)):",
              file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"baseline OK: {len(current['runs'])} runs within "
          f"{args.tolerance:.1%} of {args.path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
