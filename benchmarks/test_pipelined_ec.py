"""Pipelined expert-centric (chunked All-to-All) benchmark.

The ``pipelined-ec`` strategy splits every dispatch/combine All-to-All
into K token chunks so expert compute on chunk i overlaps the transfer of
chunk i+1 (the Parm/FlowMoE schedule).  On low-R blocks (R < 1, where
data-centric loses, Eq. 1) this recovers part of the communication time
that plain expert-centric serializes, at the price of K kernel launches
per resident expert.

The benchmark model mixes one high-R block (E=1, R=8.0 — data-centric
territory) with one low-R block (E=16, R=0.5 — expert-centric territory),
so the expected ordering is:

    unified(low_r=pipelined-ec) < unified < pipelined-ec < expert-centric

with pure data-centric worst (it pays the full expert traffic on the
low-R block).  The chunk-count sweep shows the overlap-vs-overhead
tradeoff: K=1 degenerates to plain EC, moderate K wins, large K drowns in
kernel-launch overhead.
"""

import functools

import numpy as np

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import ModelConfig
from repro.core import (
    JanusFeatures,
    build_workload,
    engine_for,
    gain_ratio,
    unified_engine,
)

CHUNK_SWEEP = (1, 2, 4, 8, 16)


def mixed_r_config() -> ModelConfig:
    return ModelConfig(
        name="mixedR",
        batch_size=256,
        seq_len=64,
        top_k=2,
        hidden_dim=512,
        num_blocks=8,
        experts_per_block={2: 16, 5: 256},
        num_heads=8,
    )


@functools.lru_cache(maxsize=None)
def _setup():
    config = mixed_r_config()
    cluster = Cluster(2)
    return config, cluster, build_workload(config, cluster)


@functools.lru_cache(maxsize=None)
def run_mode(mode: str, chunks: int = 4):
    config, cluster, workload = _setup()
    kwargs = dict(
        workload=workload,
        features=JanusFeatures(ec_pipeline_chunks=chunks),
        check_memory=False,
    )
    if mode == "unified+pec":
        engine = unified_engine(
            config, cluster, low_r_strategy="pipelined-ec", **kwargs
        )
    else:
        engine = engine_for(mode, config, cluster, **kwargs)
    return engine.run_iteration()


def block_ratios():
    config, cluster, _ = _setup()
    world = cluster.world_size
    return {
        index: gain_ratio(
            config.batch_size, config.seq_len, config.top_k,
            cluster.num_machines, config.hidden_dim,
            config.experts_per_worker(index, world),
        )
        for index in config.moe_block_indices
    }


def run_all_modes():
    modes = (
        "expert-centric", "pipelined-ec", "data-centric", "unified",
        "unified+pec",
    )
    return {mode: run_mode(mode) for mode in modes}


def test_pipelined_ec_between_ec_and_unified(benchmark):
    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)
    ratios = block_ratios()

    seconds = {mode: result.seconds for mode, result in results.items()}
    baseline = seconds["expert-centric"]
    rows = [
        [mode, f"{s * 1e3:.2f}", f"{baseline / s:.2f}x"]
        for mode, s in sorted(seconds.items(), key=lambda kv: -kv[1])
    ]
    ratio_text = ", ".join(
        f"block {index}: R={ratio:.2f}" for index, ratio in ratios.items()
    )
    write_report(
        "pipelined_ec.txt",
        format_table(
            ["Mode", "Iter (ms)", "vs expert-centric"],
            rows,
            title="Pipelined expert-centric (chunked All-to-All, K=4) on "
            f"the mixed-R model ({ratio_text})",
        ),
    )

    # The model has a genuinely low-R block (the pipelined-ec target).
    assert min(ratios.values()) < 1.0
    assert max(ratios.values()) > 1.0

    # Acceptance ordering: pipelined-ec strictly between plain
    # expert-centric and the unified engine's best.
    unified_best = min(seconds["unified"], seconds["unified+pec"])
    assert unified_best < seconds["pipelined-ec"] < seconds["expert-centric"]

    # The N-way selector (pipelined-ec on the low-R side) beats the
    # binary EC/DC unified engine.
    assert seconds["unified+pec"] < seconds["unified"]

    # Pure data-centric pays the expert traffic of the low-R block.
    assert seconds["data-centric"] > seconds["expert-centric"]

    # Chunking must not change traffic volume (up to K partial-sum
    # rounding in the chunked byte counts).
    np.testing.assert_allclose(
        results["pipelined-ec"].nic_egress_bytes,
        results["expert-centric"].nic_egress_bytes,
        rtol=1e-12,
    )


def test_pipelined_ec_chunk_sweep(benchmark):
    def sweep():
        return {
            chunks: run_mode("pipelined-ec", chunks=chunks)
            for chunks in CHUNK_SWEEP
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ec = run_mode("expert-centric").seconds

    rows = [
        [chunks, f"{result.seconds * 1e3:.2f}", f"{ec / result.seconds:.2f}x"]
        for chunks, result in results.items()
    ]
    write_report(
        "pipelined_ec_chunks.txt",
        format_table(
            ["Chunks K", "Iter (ms)", "vs expert-centric"],
            rows,
            title="pipelined-ec chunk-count sweep (overlap gain vs "
            "kernel-launch overhead)",
        ),
    )

    # K=1 is plain EC: one chunk, no overlap, same schedule.
    assert abs(results[1].seconds - ec) / ec < 1e-9
    # Some K must beat plain EC on this comm-heavy model...
    assert min(result.seconds for result in results.values()) < ec
    # ...and the largest K must be worse than the best K (overhead wall).
    best = min(result.seconds for result in results.values())
    assert results[max(CHUNK_SWEEP)].seconds > best
