"""Ablation: how strong is the expert-centric baseline?

Tutel's All-to-All is itself optimized (hierarchical cross-node channels);
the paper's speedups are measured against that *strong* baseline.  This
ablation quantifies the difference on the simulated fabric: a naive flat
All-to-All (one cross-node flow per GPU pair, pinned to the source GPU's
NIC) versus the Tutel-style hierarchical decomposition, and then Janus
against each.
"""

import pytest

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import (
    JanusFeatures,
    build_workload,
    data_centric_engine,
    expert_centric_engine,
)


def run_baselines():
    config = moe_gpt(32)
    cluster = Cluster(4)
    workload = build_workload(config, cluster, imbalance=0.8)
    naive = expert_centric_engine(
        config, cluster, workload=workload,
        features=JanusFeatures(hierarchical_a2a=False),
    ).run_iteration()
    tutel = expert_centric_engine(
        config, cluster, workload=workload,
    ).run_iteration()
    janus = data_centric_engine(
        config, cluster, workload=workload,
    ).run_iteration()
    return naive, tutel, janus


def test_baseline_strength(benchmark):
    naive, tutel, janus = benchmark.pedantic(
        run_baselines, rounds=1, iterations=1
    )

    write_report(
        "ablation_baseline_strength.txt",
        format_table(
            ["System", "iter (ms)", "vs naive EC"],
            [
                ["naive flat All-to-All EC", f"{naive.seconds * 1e3:.1f}", "1.00x"],
                [
                    "hierarchical All-to-All EC (Tutel-like)",
                    f"{tutel.seconds * 1e3:.1f}",
                    f"{naive.seconds / tutel.seconds:.2f}x",
                ],
                [
                    "data-centric Janus",
                    f"{janus.seconds * 1e3:.1f}",
                    f"{naive.seconds / janus.seconds:.2f}x",
                ],
            ],
            title="Baseline strength on MoE-GPT with mild routing "
            "skew (0.8)",
        ),
    )

    # Hierarchical All-to-All beats the naive decomposition (per-GPU NIC
    # hotspots under skew + per-pair message latency)...
    assert tutel.seconds < naive.seconds
    # ...and Janus beats both: the paper's speedups stand against the
    # strong baseline, not a strawman.
    assert janus.seconds < tutel.seconds
    # Traffic volume is identical for the two EC variants (same tokens).
    assert tutel.nic_egress_bytes.sum() == pytest.approx(
        naive.nic_egress_bytes.sum(), rel=1e-6
    )
