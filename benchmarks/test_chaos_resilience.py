"""Chaos resilience: graceful degradation under injected faults.

The §3.2 "less synchronization" claim implies the pull-based data-centric
paradigm should degrade gracefully when the control plane gets lossy: a
dropped pull request stalls only the requesting worker's fetch chain, which
retries with backoff, while All-to-All has no per-message recovery story at
all (every participant blocks).  This bench sweeps pull-request loss rates
across the three engine flavours and reports iteration time and the
retry/fallback accounting, plus one NIC-degradation scenario and the fault
lane of the stress-run timeline.

Pass criteria: no hangs, expert-centric is immune, resilient paradigms stay
within 2x the fault-free baseline up to 20% loss, and the stale-fallback
path fires (and is visible in the trace) under heavy loss.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.control import ControlConfig, Controller, ControlPolicy
from repro.core import build_workload, engine_for
from repro.faults import (
    DegradationPolicy,
    FaultPlan,
    LinkFault,
    MessageLoss,
    ResilienceConfig,
)
from repro.trace import render_timeline
from repro.workloads import DriftSpec

LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
MODES = ("expert-centric", "data-centric", "unified")
STRESS_RATE = 0.5
SEED = 7

_CONFIG = moe_gpt(16)
_CLUSTER = Cluster(2)
_WORKLOAD = build_workload(_CONFIG, _CLUSTER)


def run_under_faults(mode, plan):
    engine = engine_for(
        mode, _CONFIG, _CLUSTER, workload=_WORKLOAD,
        fault_plan=plan, resilience=ResilienceConfig(),
    )
    return engine.run_iteration()


def loss_plan(rate, seed=SEED):
    return FaultPlan(
        seed=seed, faults=(MessageLoss(kinds=("pull-request",), rate=rate),),
    )


def run_sweep():
    results = {}
    for mode in MODES:
        for rate in LOSS_RATES:
            results[(mode, rate)] = run_under_faults(mode, loss_plan(rate))
    results[("unified", STRESS_RATE)] = run_under_faults(
        "unified", loss_plan(STRESS_RATE)
    )
    # Every NIC degraded for the whole run: data-centric pulls hide the
    # slow link behind dense compute, All-to-All sits right on it.
    for label, factor in (("nic/4", 0.25), ("nic/20", 0.05)):
        nic_plan = FaultPlan(seed=SEED, faults=(
            LinkFault(selector="nic", factor=factor),
        ))
        for mode in ("unified", "expert-centric"):
            results[(mode, label)] = run_under_faults(mode, nic_plan)
    return results


def test_chaos_resilience(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for (mode, rate), result in results.items():
        stats = result.fault_stats
        rows.append([
            mode,
            rate if isinstance(rate, str) else f"{rate:.0%}",
            f"{result.seconds * 1e3:.2f}",
            stats.dropped_messages,
            stats.retries,
            stats.stale_fallbacks,
        ])
    stress = results[("unified", STRESS_RATE)]
    report = (
        format_table(
            ["Paradigm", "Fault", "ms/iter", "Dropped", "Retries",
             "Fallbacks"],
            rows,
            title=f"MoE-GPT chaos sweep (seed={SEED}, 2 machines, "
                  "pull-request loss + NIC degradation)",
        )
        + "\n\nunified @ 50% pull-request loss, worker 0 timeline:\n"
        + render_timeline(stress.trace, width=72)
    )
    write_report("chaos_resilience.txt", report)

    baselines = {mode: results[(mode, 0.0)].seconds for mode in MODES}
    for (mode, rate), result in results.items():
        if not isinstance(rate, float):
            continue
        stats = result.fault_stats
        # No hang: the iteration finished with bounded slowdown.
        assert result.seconds < 2 * baselines[mode], (mode, rate)
        # Every drop was answered by a retry or a stale fallback.
        assert stats.retries + stats.stale_fallbacks >= stats.dropped_messages - (
            ResilienceConfig().max_retries * stats.stale_fallbacks
        )
        if mode == "expert-centric":
            # All-to-All never sends pull requests: immune, bit-identical.
            assert result.seconds == baselines[mode]
            assert stats.dropped_messages == 0

    # Loss hurts monotonically-boundedly, not catastrophically: even the
    # 50% stress run stays under 2x the fault-free unified baseline.
    assert stress.seconds < 2 * baselines["unified"]
    # The heavy-loss run exercises the whole resilience ladder...
    stress_stats = stress.fault_stats
    assert stress_stats.dropped_messages > 0
    assert stress_stats.retries > 0
    assert stress_stats.stale_fallbacks > 0
    # ...and the fault events land in the dedicated trace lane.
    assert stress.trace.spans_of("fault.retry")
    assert stress.trace.spans_of("fault.fallback")
    assert "!" in render_timeline(stress.trace, lanes=["fault"], width=72)

    # NIC degradation: the pull paradigm hides a quarter-speed NIC
    # entirely behind dense compute; All-to-All eats it on the critical
    # path (the §3.2 less-synchronization effect under fire).
    assert results[("unified", "nic/4")].seconds == baselines["unified"]
    assert (
        results[("expert-centric", "nic/4")].seconds
        > 1.5 * baselines["expert-centric"]
    )
    # At 20x degradation the pull paradigm degrades gracefully (retries,
    # still < 2x) while All-to-All blows past 5x.
    nic20 = results[("unified", "nic/20")]
    assert baselines["unified"] < nic20.seconds < 2 * baselines["unified"]
    assert nic20.fault_stats.retries > 0
    assert (
        results[("expert-centric", "nic/20")].seconds
        > 5 * baselines["expert-centric"]
    )

    # Determinism: same plan + seed reproduces the stress run exactly.
    rerun = run_under_faults("unified", loss_plan(STRESS_RATE))
    assert rerun.seconds == stress.seconds
    assert rerun.fault_stats.dropped_messages == stress_stats.dropped_messages
    assert rerun.fault_stats.retries == stress_stats.retries


# -- combined fault + drift: degrade under fire, recover on probation --------

RECOVER_AFTER_CLEAN = 2
FAULTED_ITERATIONS = 2
CLEAN_ITERATIONS = 3


def run_fault_drift_recovery():
    """Heavy pull loss on a drifting workload, then the fault plan ends.

    The controller must degrade the pull-based block to expert-centric
    while the plan rages, keep counting clean iterations once it ends, and
    return the block to data-centric on probation — all while the drift
    process keeps reshuffling expert popularity underneath.
    """
    controller = Controller(
        policy=ControlPolicy(
            config=ControlConfig(adapt_load=False, adapt_replicas=False),
            degradation=DegradationPolicy(
                recover_after_clean=RECOVER_AFTER_CLEAN
            ),
        ),
        drift=DriftSpec(kind="flip", skew=1.2, period=2, seed=SEED),
    )
    engine = engine_for(
        "data-centric", _CONFIG, _CLUSTER,
        fault_plan=loss_plan(STRESS_RATE),
        resilience=ResilienceConfig(),
        controller=controller,
    )
    faulted = engine.run(FAULTED_ITERATIONS)
    engine.fault_plan = None            # the outage heals
    clean = engine.run(CLEAN_ITERATIONS)
    return controller, faulted, clean


def test_chaos_fault_drift_recovery(benchmark):
    controller, faulted, clean = benchmark.pedantic(
        run_fault_drift_recovery, rounds=1, iterations=1
    )

    # Under 50% pull loss the block degraded to the All-to-All fallback
    # (recorded on the iteration whose fallbacks triggered it).
    assert faulted[0].fault_stats.stale_fallbacks > 0
    assert faulted[0].fault_stats.degraded_blocks == {10: "expert-centric"}
    assert faulted[1].strategies[10] == "expert-centric"

    causes = [
        cause
        for decision in controller.decisions
        for cause in decision.causes.values()
    ]
    assert "fault" in causes
    assert "recover" in causes

    # Degraded expert-centric issues no pulls, so every post-outage
    # iteration is clean; the trial return lands as soon as the clean
    # streak reaches the target — within the probation window, not later.
    recovered_at = next(
        index
        for index, decision in enumerate(controller.decisions)
        if "recover" in decision.causes.values()
    )
    assert recovered_at < FAULTED_ITERATIONS + RECOVER_AFTER_CLEAN
    assert clean[-1].strategies[10] == "data-centric"
    assert clean[-1].fault_stats.stale_fallbacks == 0
    # The return to data-centric survived: the block is healthy again, on
    # probation rather than ratcheted forever.
    assert controller.policy.state_of(10).mode in ("probation", "normal")
