"""Shared engine-run cache for the benchmark suite.

Several figures evaluate the same (model, cluster, features, mode)
combination; simulated iterations are deterministic, so results are cached
process-wide and each combination is simulated exactly once per pytest run.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.cluster import Cluster
from repro.config import (
    moe_bert,
    moe_gpt,
    moe_transformer_xl,
    pr_moe_transformer_xl,
)
from repro.core import JanusFeatures, build_workload, engine_for

REPORT_DIR = Path(__file__).parent / "reports"

MODEL_FACTORIES = {
    "MoE-BERT": moe_bert,
    "MoE-GPT": moe_gpt,
    "MoE-Transformer-xl": moe_transformer_xl,
}

FEATURE_SETS = {
    "base": JanusFeatures(topology_aware=False, prefetch=False),
    "topo": JanusFeatures(topology_aware=True, prefetch=False),
    "prefetch": JanusFeatures(topology_aware=False, prefetch=True),
    "full": JanusFeatures(topology_aware=True, prefetch=True),
}


@functools.lru_cache(maxsize=None)
def _workload(model: str, experts: int, machines: int, overrides: tuple):
    config = MODEL_FACTORIES[model](experts)
    if overrides:
        config = config.scaled(**dict(overrides))
    return config, build_workload(config, Cluster(machines))


@functools.lru_cache(maxsize=None)
def run_model(
    model: str,
    mode: str,
    experts: int = 32,
    machines: int = 4,
    features: str = "full",
    check_memory: bool = True,
    inference: bool = False,
    **config_overrides,
):
    """Simulate one iteration; cached on all arguments.

    ``mode`` is "expert-centric", "data-centric" or "unified";
    ``features`` names an entry of FEATURE_SETS.  ``inference=True`` runs
    the forward-only (serving) pass instead of a training iteration.
    """
    overrides = tuple(sorted(config_overrides.items()))
    config, workload = _workload(model, experts, machines, overrides)
    engine = engine_for(
        mode,
        config,
        Cluster(machines),
        workload=workload,
        features=FEATURE_SETS[features],
        check_memory=check_memory,
    )
    return engine.run_inference() if inference else engine.run_iteration()


@functools.lru_cache(maxsize=None)
def run_pr_moe(scale: int, mode: str, features: str = "full"):
    """PR-MoE-Transformer-xl (§7.5): scale 1 = 16 GPUs, 2 = 32 GPUs.

    The unified mode uses the paper's conservative selection threshold
    (§7.5 adopts expert-centric for the deep E=4 blocks even though Eq. 1
    puts them slightly above break-even, because the deployed data-centric
    path is capped below the analytic bound by the PCIe cache-fill link).
    """
    config = pr_moe_transformer_xl(scale)
    cluster = Cluster(2 * scale)
    workload = build_workload(config, cluster)
    kwargs = dict(workload=workload, features=FEATURE_SETS[features])
    if mode == "unified":
        kwargs["threshold"] = 2.0
    engine = engine_for(mode, config, cluster, **kwargs)
    return engine.run_iteration()


def write_report(name: str, text: str) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / name).write_text(text + "\n")
    print("\n" + text)
