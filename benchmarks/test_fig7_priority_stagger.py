"""Fig. 7: same-order vs staggered intra-node pull schedules.

Reproduces the paper's illustration as a measurement: m workers each pull
the other workers' experts over NVLink.  In the naive order every worker
starts by pulling from worker 0, serializing on its egress port; Algorithm
1's staggered order keeps exactly one puller per egress port at any time.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster, Device
from repro.core import internal_pull_order
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment

EXPERT_BYTES = 75e6  # a 768-dim fp32 expert (8H^2 * 4)


def pull_schedule_makespan(staggered: bool, workers: int = 8) -> float:
    """Run every worker's pull schedule; each worker pulls sequentially."""
    cluster = Cluster(1)
    env = Environment()
    fabric = Fabric(env, cluster)

    def worker(rank: int):
        order = internal_pull_order(rank, workers, 1, staggered=staggered)
        for slot in order:
            flow = fabric.transfer(
                Device.gpu(0, slot), Device.gpu(0, rank), EXPERT_BYTES
            )
            yield flow.done

    procs = [env.process(worker(rank)) for rank in range(workers)]

    def driver():
        yield AllOf(env, procs)

    env.run(until=env.process(driver()))
    return env.now


def run_both():
    return pull_schedule_makespan(False), pull_schedule_makespan(True)


def test_fig7_staggered_order_beats_same_order(benchmark):
    naive, staggered = benchmark.pedantic(run_both, rounds=1, iterations=1)

    write_report(
        "fig7_priority_stagger.txt",
        format_table(
            ["Schedule", "Makespan (ms)", "Speedup"],
            [
                ["same order (Fig. 7a)", f"{naive * 1e3:.2f}", "1.00x"],
                [
                    "staggered (Fig. 7b / Alg. 1)",
                    f"{staggered * 1e3:.2f}",
                    f"{naive / staggered:.2f}x",
                ],
            ],
            title="Fig. 7: intra-node pull schedule makespan (8 workers)",
        ),
    )

    # Staggering must strictly help, and the staggered schedule should be
    # near the contention-free lower bound: 7 sequential pulls per worker.
    assert staggered < naive
    cluster = Cluster(1)
    lower_bound = 7 * EXPERT_BYTES / cluster.spec.nvlink.bandwidth
    assert staggered < lower_bound * 1.3
