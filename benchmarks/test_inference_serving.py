"""§9 extension: forward-only (serving) passes across every strategy.

The paper argues the same communication design applies to inference.  A
forward-only pass halves the data-centric wire bill (no gradient returns)
and drops the backward All-to-Alls of the expert-centric family; the
paradigm comparison carries over.  Parametrized over the strategy
registry, so new paradigms join the serving comparison by registering.
"""

import pytest

from engine_cache import run_model, write_report
from repro.analysis import format_table
from repro.core import comm_family, strategy_names

STRATEGIES = strategy_names()


def _pair(mode):
    """(training iteration, forward-only pass) — cached across tests."""
    return (
        run_model("MoE-GPT", mode),
        run_model("MoE-GPT", mode, inference=True),
    )


@pytest.mark.parametrize("mode", STRATEGIES)
def test_forward_pass_cheaper_than_training(mode):
    training, inference = _pair(mode)
    # A forward pass is much cheaper than a training iteration (backward
    # compute is 2x forward plus gradient communication).
    assert inference.seconds < 0.6 * training.seconds


@pytest.mark.parametrize("mode", STRATEGIES)
def test_forward_wire_bill(mode):
    training, inference = _pair(mode)
    moved = inference.nic_egress_bytes.sum()
    if comm_family(mode) == "data-centric":
        # Pulls only, no gradient pushes: exactly half the training bill.
        assert moved == pytest.approx(
            training.nic_egress_bytes.sum() / 2
        )
    else:
        # The expert-centric family drops its backward All-to-Alls.
        assert moved < training.nic_egress_bytes.sum()


def test_inference_serving(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: _pair(mode) for mode in STRATEGIES},
        rounds=1, iterations=1,
    )

    rows = []
    for label, (training, inference) in results.items():
        rows.append([
            label,
            f"{training.seconds * 1e3:.1f}",
            f"{inference.seconds * 1e3:.1f}",
            f"{inference.cross_node_gb_per_machine:.2f}",
        ])
    write_report(
        "inference_serving.txt",
        format_table(
            ["Paradigm", "train iter (ms)", "forward pass (ms)",
             "fwd GB/machine"],
            rows,
            title="Forward-only (serving) passes on MoE-GPT (§9)",
        ),
    )

    # Data-centric keeps winning at inference time.
    ec_infer = results["expert-centric"][1]
    dc_infer = results["data-centric"][1]
    assert dc_infer.seconds < ec_infer.seconds
