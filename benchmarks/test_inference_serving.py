"""§9 extension: forward-only (serving) passes under both paradigms.

The paper argues the same communication design applies to inference.  A
forward-only pass halves the data-centric wire bill (no gradient returns)
and drops the backward All-to-Alls of the expert-centric baseline; the
paradigm comparison carries over.
"""

import pytest

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import build_workload, data_centric_engine, expert_centric_engine


def run_serving():
    config = moe_gpt(32)
    cluster = Cluster(4)
    workload = build_workload(config, cluster)
    results = {}
    for label, factory in (
        ("expert-centric", expert_centric_engine),
        ("data-centric", data_centric_engine),
    ):
        engine = factory(config, cluster, workload=workload)
        results[label] = (
            engine.run_iteration(),
            engine.run_inference(),
        )
    return results


def test_inference_serving(benchmark):
    results = benchmark.pedantic(run_serving, rounds=1, iterations=1)

    rows = []
    for label, (training, inference) in results.items():
        rows.append([
            label,
            f"{training.seconds * 1e3:.1f}",
            f"{inference.seconds * 1e3:.1f}",
            f"{inference.cross_node_gb_per_machine:.2f}",
        ])
    write_report(
        "inference_serving.txt",
        format_table(
            ["Paradigm", "train iter (ms)", "forward pass (ms)",
             "fwd GB/machine"],
            rows,
            title="Forward-only (serving) passes on MoE-GPT (§9)",
        ),
    )

    for label, (training, inference) in results.items():
        # A forward pass is much cheaper than a training iteration
        # (backward compute is 2x forward plus gradient communication).
        assert inference.seconds < 0.6 * training.seconds
    ec_train, ec_infer = results["expert-centric"]
    dc_train, dc_infer = results["data-centric"]
    # Data-centric keeps winning at inference time.
    assert dc_infer.seconds < ec_infer.seconds
    # And its forward wire bill is exactly half the training bill
    # (pulls only, no gradient pushes).
    assert dc_infer.nic_egress_bytes.sum() == pytest.approx(
        dc_train.nic_egress_bytes.sum() / 2
    )
