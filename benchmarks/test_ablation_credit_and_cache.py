"""Ablations of the two buffer-management design choices.

1. **Credit-based buffer size** (§5.1.1): C bounds how many in-flight
   experts a worker may hold.  Tiny C serializes fetch and compute; large C
   buys overlap until bandwidth saturates, at the cost of GPU buffer memory
   (C experts).
2. **Hierarchical cache** (§5.1.2): disabling the per-machine Cache Manager
   forces every worker to pull remote experts itself, multiplying
   cross-node traffic by (up to) the number of workers per machine.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import JanusFeatures, build_workload, data_centric_engine

CREDITS = (1, 2, 4, 16, 64)


def run_credit_sweep():
    config = moe_gpt(32)
    cluster = Cluster(4)
    workload = build_workload(config, cluster)
    results = {}
    for credit in CREDITS:
        features = JanusFeatures(credit_size=credit)
        results[credit] = data_centric_engine(
            config, cluster, workload=workload, features=features
        ).run_iteration()
    return results


def test_credit_size_ablation(benchmark):
    results = benchmark.pedantic(run_credit_sweep, rounds=1, iterations=1)

    rows = [
        [
            credit,
            f"{result.seconds * 1e3:.1f}",
            f"{credit * 18.9:.0f}",
        ]
        for credit, result in results.items()
    ]
    write_report(
        "ablation_credit_size.txt",
        format_table(
            ["C (credits)", "iter (ms)", "buffer (MB)"],
            rows,
            title="Credit-buffer size ablation on MoE-GPT (§5.1.1)",
        ),
    )

    times = [results[c].seconds for c in CREDITS]
    # More credits never hurt (monotone non-increasing, small tolerance).
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier * 1.02
    # And the sweep spans a real effect: C=1 is measurably slower than
    # the saturated end.
    assert times[0] > times[-1] * 1.02
    # Saturation: the last doubling gains almost nothing.
    assert times[-1] >= times[-2] * 0.95


def run_cache_ablation():
    config = moe_gpt(32)
    cluster = Cluster(4)
    workload = build_workload(config, cluster)
    with_cache = data_centric_engine(
        config, cluster, workload=workload
    ).run_iteration()
    without_cache = data_centric_engine(
        config, cluster, workload=workload,
        features=JanusFeatures(hierarchical=False),
    ).run_iteration()
    return with_cache, without_cache


def test_hierarchical_cache_ablation(benchmark):
    with_cache, without_cache = benchmark.pedantic(
        run_cache_ablation, rounds=1, iterations=1
    )

    write_report(
        "ablation_hierarchical_cache.txt",
        format_table(
            ["Variant", "iter (ms)", "cross-node GB/machine"],
            [
                [
                    "hierarchical cache (Janus)",
                    f"{with_cache.seconds * 1e3:.1f}",
                    f"{with_cache.cross_node_gb_per_machine:.2f}",
                ],
                [
                    "per-worker direct pulls",
                    f"{without_cache.seconds * 1e3:.1f}",
                    f"{without_cache.cross_node_gb_per_machine:.2f}",
                ],
            ],
            title="Hierarchical-communication ablation on MoE-GPT (§5.1.2)",
        ),
    )

    # 8 workers/machine each pulling every external expert themselves vs
    # one machine-level pull: traffic multiplies by ~8 (pulls; gradients
    # stay per-worker in both variants' accounting here).
    ratio = (
        without_cache.cross_node_gb_per_machine
        / with_cache.cross_node_gb_per_machine
    )
    assert ratio > 4
    # And the NIC pressure costs wall time too.
    assert without_cache.seconds > with_cache.seconds
