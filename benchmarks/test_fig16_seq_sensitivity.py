"""Fig. 16: sensitivity to sequence length, including the Tutel OOM.

§7.4 fixes per-model (B, k) — MoE-BERT: B=256, k=4; MoE-GPT: B=32, k=8;
MoE-Transformer-xl: B=64, k=2 — and sweeps S in {256, 512}.  Findings:
iteration time grows with S for both systems, Tutel grows faster, and
Tutel runs out of GPU memory on MoE-BERT at S=512 (the All-to-All token
buffers exceed the A100's 80 GB) while Janus trains it fine.
"""

from engine_cache import run_model, write_report
from repro.analysis import format_table
from repro.netsim import OutOfMemoryError

SWEEP = {
    "MoE-BERT": dict(batch_size=256, top_k=4),
    "MoE-GPT": dict(batch_size=32, top_k=8),
    "MoE-Transformer-xl": dict(batch_size=64, top_k=2),
}
SEQ_LENS = (256, 512)


def run_sweep():
    results = {}
    for model, fixed in SWEEP.items():
        for seq_len in SEQ_LENS:
            overrides = dict(fixed, seq_len=seq_len)
            try:
                tutel = run_model(model, "expert-centric", **overrides)
            except OutOfMemoryError:
                tutel = None
            janus = run_model(model, "unified", **overrides)
            results[(model, seq_len)] = (tutel, janus)
    return results


def test_fig16_seq_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for (model, seq_len), (tutel, janus) in results.items():
        tutel_ms = "OOM" if tutel is None else f"{tutel.seconds * 1e3:.1f}"
        speedup = (
            "-" if tutel is None
            else f"{tutel.seconds / janus.seconds:.2f}x"
        )
        rows.append(
            [model, seq_len, tutel_ms, f"{janus.seconds * 1e3:.1f}", speedup]
        )
    write_report(
        "fig16_seq_sensitivity.txt",
        format_table(
            ["Model", "S", "Tutel (ms)", "Janus (ms)", "Speedup"],
            rows,
            title="Fig. 16: end-to-end iteration time vs sequence length "
            "(OOM = out of GPU memory)",
        ),
    )

    # The paper's headline: Tutel OOMs on MoE-BERT at S=512, Janus doesn't.
    assert results[("MoE-BERT", 512)][0] is None
    assert results[("MoE-BERT", 512)][1] is not None
    # Everything else runs under both systems.
    for (model, seq_len), (tutel, janus) in results.items():
        if (model, seq_len) == ("MoE-BERT", 512):
            continue
        assert tutel is not None, f"unexpected OOM: {model} S={seq_len}"
        assert janus is not None

    for model in SWEEP:
        tutel_short, janus_short = results[(model, 256)]
        tutel_long, janus_long = results[(model, 512)]
        # Time grows with sequence length.
        assert janus_long.seconds > janus_short.seconds
        if tutel_long is not None:
            assert tutel_long.seconds > tutel_short.seconds
            # Tutel is more sensitive to S than Janus.
            assert (
                tutel_long.seconds / tutel_short.seconds
                > janus_long.seconds / janus_short.seconds
            )
