"""Fig. 17: unified Janus on PR-MoE-Transformer-xl.

§7.5: PR-MoE has shallow MoE blocks with few experts (E=1, high R — data-
centric wins) and deep MoE blocks with many experts (E=4, low R — expert-
centric wins).  Janus unifies both: it runs the shallow blocks data-centric
and the deep blocks expert-centric, beating both pure paradigms.  The paper
reports 2.06x / 1.44x speedup over pure expert-centric on the 16-GPU /
32-GPU clusters, with the gain shrinking as machines are added (R falls
with n, Eq. 1).
"""

from engine_cache import run_pr_moe, write_report
from repro.analysis import format_table
from repro.core import Paradigm

MODES = ("expert-centric", "data-centric", "unified")


def run_pr_sweep():
    results = {}
    for scale, gpus in ((1, 16), (2, 32)):
        for mode in MODES:
            results[(gpus, mode)] = run_pr_moe(scale, mode)
    return results


def test_fig17_prmoe_unified(benchmark):
    results = benchmark.pedantic(run_pr_sweep, rounds=1, iterations=1)

    rows = []
    for (gpus, mode), result in results.items():
        baseline = results[(gpus, "expert-centric")].seconds
        rows.append(
            [
                gpus,
                mode,
                f"{result.seconds * 1e3:.1f}",
                f"{baseline / result.seconds:.2f}x",
            ]
        )
    write_report(
        "fig17_prmoe_unified.txt",
        format_table(
            ["GPUs", "Paradigm", "Iter (ms)", "vs expert-centric"],
            rows,
            title="Fig. 17: PR-MoE-Transformer-xl under pure and unified "
            "paradigms (paper: unified 2.06x / 1.44x)",
        ),
    )

    for gpus in (16, 32):
        ec = results[(gpus, "expert-centric")].seconds
        dc = results[(gpus, "data-centric")].seconds
        unified = results[(gpus, "unified")].seconds
        # The paper's core claim: unified beats (or matches) both pure
        # paradigms on the mixed-R model...
        assert unified <= ec * 1.01
        assert unified <= dc * 1.01
        # ...and genuinely improves on the expert-centric baseline.  (The
        # magnitude is smaller than the paper's 2.06x/1.44x: the simulated
        # All-to-All runs near NIC line rate while the paper's testbed
        # measured ~51% goodput, so our expert-centric baseline is
        # relatively stronger — see EXPERIMENTS.md.)
        assert ec / unified > 1.04

    # The unified paradigm map mixes both paradigms: shallow E=1 blocks
    # data-centric, deep E=4 blocks expert-centric (§7.5).
    for gpus in (16, 32):
        unified = results[(gpus, "unified")]
        paradigms = [unified.paradigms[b] for b in sorted(unified.paradigms)]
        assert paradigms[:2] == [Paradigm.DATA_CENTRIC] * 2
        assert paradigms[2:] == [Paradigm.EXPERT_CENTRIC] * 2

    # Iteration time grows with the cluster size in every mode (the paper's
    # scalability observation).
    for mode in MODES:
        assert results[(32, mode)].seconds > results[(16, mode)].seconds
