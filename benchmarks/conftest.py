"""Benchmark suite configuration: make engine_cache importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
