"""Fig. 13: computation-communication overlap of the prefetch strategy.

The paper observes MoE-GPT's forward phase with prefetch on and
topology-awareness off: the model has 11 dense blocks before its single MoE
block (block index 10, 1-indexed 11th), so by the time computation reaches
the MoE block the worker has already pulled all experts it needs — the pull
time is fully hidden behind the dense compute (~74.9 ms of overlap in the
paper's trace, a 1.36x forward speedup).

This bench regenerates both sub-figures: per-block completion timestamps
and per-expert arrival timestamps for one worker, plus the overlap.
"""

from engine_cache import run_model, write_report
from repro.analysis import format_table
from repro.trace import render_block_gantt

MOE_BLOCK = 10  # 0-indexed 11th block


def run_traces():
    prefetch = run_model("MoE-GPT", "data-centric", features="prefetch")
    no_prefetch = run_model("MoE-GPT", "data-centric", features="base")
    return prefetch, no_prefetch


def test_fig13_overlap_timeline(benchmark):
    prefetch, no_prefetch = benchmark.pedantic(run_traces, rounds=1, iterations=1)

    completions = prefetch.trace.block_completions(worker=0)
    arrivals = sorted(
        event["time"] for event in prefetch.trace.expert_arrivals(worker=0)
    )
    gate_reached = completions[MOE_BLOCK - 1]

    block_rows = [
        [block, f"{time * 1e3:.2f}"]
        for block, time in sorted(completions.items())
    ]
    arrival_rows = [
        [index, f"{time * 1e3:.2f}", "yes" if time <= gate_reached else "no"]
        for index, time in enumerate(arrivals)
    ]
    hidden = sum(1 for t in arrivals if t <= gate_reached)
    overlap_ms = min(arrivals[-1], gate_reached) * 1e3
    report = (
        format_table(
            ["Block", "Completed (ms)"],
            block_rows,
            title="Fig. 13 (top): forward block completion times, worker 0",
        )
        + "\n\n"
        + format_table(
            ["Pull #", "Arrived (ms)", "Before MoE block?"],
            arrival_rows,
            title="Fig. 13 (bottom): expert pull completion times, worker 0",
        )
        + f"\n\npulls hidden behind dense compute: {hidden}/{len(arrivals)}"
        + f"\noverlap window: {overlap_ms:.1f} ms"
        + f"\nforward+backward iteration: prefetch "
        + f"{prefetch.seconds * 1e3:.1f} ms vs no-prefetch "
        + f"{no_prefetch.seconds * 1e3:.1f} ms "
        + f"({no_prefetch.seconds / prefetch.seconds:.2f}x)"
        + "\n\n"
        + render_block_gantt(prefetch.trace, worker=0, width=50)
    )
    write_report("fig13_overlap_timeline.txt", report)

    # Paper's observation (Fig. 13): by the time the 11 leading blocks
    # complete, the worker has already pulled a substantial batch of
    # experts (12 of 32 in the paper's trace; the count is bounded by the
    # credit buffer, which holds the pulled-but-unconsumed experts).
    assert hidden >= 8, f"only {hidden}/{len(arrivals)} pulls hidden"
    assert hidden >= prefetch.features.credit_size * 0.75
    # Block completions are monotone and the MoE block is the slow one.
    times = [completions[b] for b in sorted(completions)]
    assert times == sorted(times)
    durations = {
        block: completions[block] - completions.get(block - 1, 0.0)
        for block in completions
    }
    assert durations[MOE_BLOCK] == max(durations.values())
    # Prefetch speeds up the forward phase (paper: 1.36x) and never hurts
    # end to end.
    fwd_prefetch = max(completions.values())
    fwd_no_prefetch = max(no_prefetch.trace.block_completions(0).values())
    assert fwd_prefetch < fwd_no_prefetch
    assert prefetch.seconds <= no_prefetch.seconds
