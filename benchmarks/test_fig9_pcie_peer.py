"""Fig. 8/9: PCIe-switch-aware peer scheduling for stage-2 copies.

Two GPUs under one PCIe switch must copy the same set of cached external
experts from CPU memory.  Naively both pull every expert over the shared
switch uplink; with the peer scheme each pulls half over PCIe and the other
half from its peer over NVLink, roughly halving the uplink load.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster, Device
from repro.core import pcie_peer_schedule
from repro.netsim import Fabric
from repro.simkit import AllOf, Environment

EXPERT_BYTES = 75e6
NUM_EXPERTS = 8


def stage2_makespan(peer_scheme: bool) -> float:
    cluster = Cluster(1)
    env = Environment()
    fabric = Fabric(env, cluster)
    host = Device.host(0)
    experts = list(range(NUM_EXPERTS))
    ready = {
        (rank, expert): env.event()
        for rank in (0, 1)
        for expert in experts
    }

    def worker(rank: int):
        peer = rank ^ 1
        schedule = pcie_peer_schedule(experts, rank, enabled=peer_scheme)
        for step in schedule:
            if step.via == "peer":
                yield ready[(peer, step.expert)]
                flow = fabric.transfer(
                    Device.gpu(0, peer), Device.gpu(0, rank), EXPERT_BYTES
                )
            else:
                flow = fabric.transfer(host, Device.gpu(0, rank), EXPERT_BYTES)
            yield flow.done
            ready[(rank, step.expert)].succeed()

    procs = [env.process(worker(rank)) for rank in (0, 1)]

    def driver():
        yield AllOf(env, procs)

    env.run(until=env.process(driver()))
    return env.now


def run_both():
    return stage2_makespan(False), stage2_makespan(True)


def test_fig9_peer_scheme_beats_direct_pcie(benchmark):
    direct, peer = benchmark.pedantic(run_both, rounds=1, iterations=1)

    write_report(
        "fig9_pcie_peer.txt",
        format_table(
            ["Scheme", "Makespan (ms)", "Speedup"],
            [
                ["both via PCIe (Fig. 8 before)", f"{direct * 1e3:.2f}", "1.00x"],
                [
                    "peer scheduling (Fig. 8 after)",
                    f"{peer * 1e3:.2f}",
                    f"{direct / peer:.2f}x",
                ],
            ],
            title="Fig. 9: stage-2 copy makespan for one PCIe pair "
            f"({NUM_EXPERTS} cached experts)",
        ),
    )

    # The peer scheme must approach the ~2x bound of halving the uplink
    # load (NVLink is ~10x faster than PCIe, so peer copies are nearly
    # free by comparison).
    assert peer < direct
    assert direct / peer > 1.5
