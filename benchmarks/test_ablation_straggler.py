"""Ablation: stragglers and compute jitter (§3.2 "less synchronization").

The paper argues a key data-centric advantage: All-to-All is synchronous,
so "fast machines have to wait for slow machines", while pull-based expert
movement needs no lockstep.  Two experiments separate the effects:

1. **Constant straggler** — machine 0 permanently slowed.  Both paradigms
   must absorb its longer compute (the iteration ends with a weight-update
   barrier either way), so both inflate by a similar absolute amount; the
   synchronous engine pays at least as much (it stalls at every
   All-to-All, not just at the end).

2. **Per-task compute jitter** — every kernel's duration gets lognormal
   noise.  Here the structural difference shows: the synchronous engine
   pays the *maximum* jitter at every barrier (sum of per-phase maxima),
   while the asynchronous pipeline averages noise out and only the final
   barrier takes a maximum — so expert-centric degrades faster and the
   Janus speedup widens with jitter.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import Paradigm, build_workload, JanusEngine

SPEEDS = (1.0, 0.7, 0.5)
JITTERS = (0.0, 0.2, 0.4)


def _engine(cluster, workload, config, paradigm, **kwargs):
    return JanusEngine(
        cluster,
        workload,
        {i: paradigm for i in config.moe_block_indices},
        **kwargs,
    )


def run_experiments():
    config = moe_gpt(32)
    cluster = Cluster(4)
    workload = build_workload(config, cluster)
    straggler = {}
    for speed in SPEEDS:
        for paradigm in (Paradigm.EXPERT_CENTRIC, Paradigm.DATA_CENTRIC):
            straggler[(speed, paradigm)] = _engine(
                cluster, workload, config, paradigm,
                machine_speed={0: speed},
            ).run_iteration()
    jitter = {}
    for sigma in JITTERS:
        for paradigm in (Paradigm.EXPERT_CENTRIC, Paradigm.DATA_CENTRIC):
            jitter[(sigma, paradigm)] = _engine(
                cluster, workload, config, paradigm,
                compute_jitter=sigma, jitter_seed=3,
            ).run_iteration()
    return straggler, jitter


def test_synchronization_sensitivity(benchmark):
    straggler, jitter = benchmark.pedantic(
        run_experiments, rounds=1, iterations=1
    )

    straggler_rows = [
        [
            f"{speed:.1f}",
            f"{straggler[(speed, Paradigm.EXPERT_CENTRIC)].seconds * 1e3:.1f}",
            f"{straggler[(speed, Paradigm.DATA_CENTRIC)].seconds * 1e3:.1f}",
        ]
        for speed in SPEEDS
    ]
    jitter_rows = [
        [
            f"{sigma:.1f}",
            f"{jitter[(sigma, Paradigm.EXPERT_CENTRIC)].seconds * 1e3:.1f}",
            f"{jitter[(sigma, Paradigm.DATA_CENTRIC)].seconds * 1e3:.1f}",
            f"{jitter[(sigma, Paradigm.EXPERT_CENTRIC)].seconds / jitter[(sigma, Paradigm.DATA_CENTRIC)].seconds:.2f}x",
        ]
        for sigma in JITTERS
    ]
    write_report(
        "ablation_straggler.txt",
        format_table(
            ["machine-0 speed", "EC (ms)", "DC (ms)"],
            straggler_rows,
            title="Constant straggler on MoE-GPT (machine 0 slowed)",
        )
        + "\n\n"
        + format_table(
            ["jitter sigma", "EC (ms)", "DC (ms)", "speedup"],
            jitter_rows,
            title="Per-task compute jitter on MoE-GPT (§3.2 async advantage)",
        ),
    )

    # Constant straggler: the synchronous engine's absolute penalty is at
    # least the asynchronous engine's.
    ec_penalty = (
        straggler[(0.5, Paradigm.EXPERT_CENTRIC)].seconds
        - straggler[(1.0, Paradigm.EXPERT_CENTRIC)].seconds
    )
    dc_penalty = (
        straggler[(0.5, Paradigm.DATA_CENTRIC)].seconds
        - straggler[(1.0, Paradigm.DATA_CENTRIC)].seconds
    )
    assert ec_penalty >= dc_penalty * 0.95
    assert ec_penalty > 0 and dc_penalty > 0

    # Jitter: expert-centric degrades relatively faster, so the Janus
    # speedup widens monotonically with sigma.
    speedups = [
        jitter[(sigma, Paradigm.EXPERT_CENTRIC)].seconds
        / jitter[(sigma, Paradigm.DATA_CENTRIC)].seconds
        for sigma in JITTERS
    ]
    assert speedups == sorted(speedups)
    ec_growth = (
        jitter[(0.4, Paradigm.EXPERT_CENTRIC)].seconds
        / jitter[(0.0, Paradigm.EXPERT_CENTRIC)].seconds
    )
    dc_growth = (
        jitter[(0.4, Paradigm.DATA_CENTRIC)].seconds
        / jitter[(0.0, Paradigm.DATA_CENTRIC)].seconds
    )
    assert ec_growth > dc_growth
