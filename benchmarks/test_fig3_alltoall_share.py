"""Fig. 3: iteration latency and the share taken by All-to-All.

The paper profiles the three models under the expert-centric paradigm on
2 machines (16 experts) and 4 machines (32 experts) and reports that
All-to-All occupies 38.5% - 68.4% of the iteration.  This bench regenerates
the same bars from the timed expert-centric engine.
"""

from engine_cache import MODEL_FACTORIES, run_model, write_report
from repro.analysis import format_table

SETTINGS = [(16, 2), (32, 4)]


def run_all():
    results = {}
    for model in MODEL_FACTORIES:
        for experts, machines in SETTINGS:
            results[(model, experts)] = run_model(
                model, "expert-centric", experts=experts, machines=machines
            )
    return results


def test_fig3_alltoall_share(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (model, experts), result in results.items():
        rows.append(
            [
                model,
                experts,
                f"{result.seconds * 1e3:.1f}",
                f"{result.all_to_all_seconds * 1e3:.1f}",
                f"{result.all_to_all_share:.1%}",
            ]
        )
    write_report(
        "fig3_alltoall_share.txt",
        format_table(
            ["Model", "#Expert", "Iter (ms)", "A2A (ms)", "A2A share"],
            rows,
            title="Fig. 3: iteration latency and All-to-All share "
            "(expert-centric)",
        ),
    )

    shares = [r.all_to_all_share for r in results.values()]
    # Paper: 38.5% - 68.4%.  The simulated range must sit in the same band
    # (communication-dominant but not total).
    assert min(shares) > 0.25
    assert max(shares) < 0.80
    assert max(shares) > 0.45

    # All-to-All time is a large, non-trivial fraction for every model.
    for (model, experts), result in results.items():
        assert result.all_to_all_seconds > 0
        assert result.seconds > result.all_to_all_seconds
