"""Fig. 14: end-to-end iteration time, Janus vs Tutel.

Table 1 configs (32 experts, 32 GPUs on 4 machines); the paper reports
Janus speedups of 1.28x (MoE-BERT), 1.48x (MoE-GPT) and 1.52x
(MoE-Transformer-xl) over Tutel, with all blocks satisfying R > 1
(R = 5.33 / 5.33 / 16).

Reproduced shape: Janus (unified, which selects data-centric everywhere
here) beats the expert-centric baseline on every model by a factor in the
paper's band.
"""

from engine_cache import MODEL_FACTORIES, run_model, write_report
from repro.analysis import format_speedup_bars, format_table
from repro.core import gain_ratio


def run_end_to_end():
    results = {}
    for model in MODEL_FACTORIES:
        results[model] = (
            run_model(model, "expert-centric"),
            run_model(model, "unified"),
        )
    return results


def test_fig14_end_to_end(benchmark):
    results = benchmark.pedantic(run_end_to_end, rounds=1, iterations=1)

    rows = []
    speedups = {}
    for model, (tutel, janus) in results.items():
        speedup = tutel.seconds / janus.seconds
        speedups[model] = speedup
        config = MODEL_FACTORIES[model](32)
        ratio = gain_ratio(
            config.batch_size, config.seq_len, config.top_k, 4,
            config.hidden_dim, 1,
        )
        rows.append(
            [
                model,
                f"{ratio:.2f}",
                f"{tutel.seconds * 1e3:.1f}",
                f"{janus.seconds * 1e3:.1f}",
                f"{speedup:.2f}x",
            ]
        )
    report = (
        format_table(
            ["Model", "R", "Tutel (ms)", "Janus (ms)", "Speedup"],
            rows,
            title="Fig. 14: end-to-end iteration time (paper speedups: "
            "1.28x / 1.48x / 1.52x)",
        )
        + "\n\n"
        + format_speedup_bars(
            list(speedups), list(speedups.values()),
            title="Janus speedup over Tutel",
        )
    )
    write_report("fig14_end_to_end.txt", report)

    for model, speedup in speedups.items():
        # Paper band 1.28-1.52; accept the same order with slack.
        assert 1.15 < speedup < 2.1, f"{model}: {speedup:.2f}x"

    # Janus's paradigm map must have chosen data-centric for every block
    # of these models (all R > 1).
    for model, (_, janus) in results.items():
        from repro.core import Paradigm

        assert all(
            paradigm is Paradigm.DATA_CENTRIC
            for paradigm in janus.paradigms.values()
        )
