"""Fig. 15: sensitivity to batch size.

§7.4 fixes per-model (S, k) — MoE-BERT: S=256, k=4; MoE-GPT: S=128, k=8;
MoE-Transformer-xl: S=256, k=2 — and sweeps B in {64, 128}.  The paper's
findings: iteration time grows with B for both systems, but Tutel
(expert-centric) grows faster because the All-to-All volume grows with the
computation, so Janus's speedup widens with batch size.
"""

from engine_cache import run_model, write_report
from repro.analysis import format_table

SWEEP = {
    "MoE-BERT": dict(seq_len=256, top_k=4),
    "MoE-GPT": dict(seq_len=128, top_k=8),
    "MoE-Transformer-xl": dict(seq_len=256, top_k=2),
}
BATCHES = (64, 128)


def run_sweep():
    results = {}
    for model, fixed in SWEEP.items():
        for batch in BATCHES:
            overrides = dict(fixed, batch_size=batch)
            results[(model, batch)] = (
                run_model(model, "expert-centric", **overrides),
                run_model(model, "unified", **overrides),
            )
    return results


def test_fig15_batch_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for (model, batch), (tutel, janus) in results.items():
        rows.append(
            [
                model,
                batch,
                f"{tutel.seconds * 1e3:.1f}",
                f"{janus.seconds * 1e3:.1f}",
                f"{tutel.seconds / janus.seconds:.2f}x",
            ]
        )
    write_report(
        "fig15_batch_sensitivity.txt",
        format_table(
            ["Model", "B", "Tutel (ms)", "Janus (ms)", "Speedup"],
            rows,
            title="Fig. 15: end-to-end iteration time vs batch size",
        ),
    )

    for model in SWEEP:
        tutel_small, janus_small = results[(model, 64)]
        tutel_large, janus_large = results[(model, 128)]
        # Iteration time increases with batch size in both systems.
        assert tutel_large.seconds > tutel_small.seconds
        assert janus_large.seconds > janus_small.seconds
        # Tutel is more sensitive: its time grows by a larger factor...
        tutel_growth = tutel_large.seconds / tutel_small.seconds
        janus_growth = janus_large.seconds / janus_small.seconds
        assert tutel_growth > janus_growth, (
            f"{model}: tutel x{tutel_growth:.2f} vs janus x{janus_growth:.2f}"
        )
        # ...so the Janus speedup widens with batch size.
        speedup_small = tutel_small.seconds / janus_small.seconds
        speedup_large = tutel_large.seconds / janus_large.seconds
        assert speedup_large > speedup_small
