"""Scalability sweep: machines 2 → 4 → 8 (the §7.5 scaling observation).

Eq. 1's gain ratio falls with the number of machines n (more machines means
more cross-node token traffic per machine under expert-centric, but also
more expert broadcast targets under data-centric).  We sweep MoE-GPT over
cluster sizes with a fixed per-worker batch (weak scaling) and check:

* iteration time grows with the cluster in both paradigms (more cross-node
  communication per machine);
* data-centric keeps winning at every scale (R stays well above 1 here);
* per-machine cross-node traffic follows the closed forms' (n-1) and
  (n-1)/n scalings.
"""

import pytest

from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import (
    build_workload,
    comm_data_centric,
    data_centric_engine,
    expert_centric_engine,
    gain_ratio,
)

MACHINES = (2, 4, 8)


def run_sweep():
    results = {}
    for machines in MACHINES:
        config = moe_gpt(machines * 8)  # keep E = 1 per worker
        cluster = Cluster(machines)
        workload = build_workload(config, cluster)
        ec = expert_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        dc = data_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        results[machines] = (config, ec, dc)
    return results


def test_scalability(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for machines, (config, ec, dc) in results.items():
        ratio = gain_ratio(
            config.batch_size, config.seq_len, config.top_k,
            machines, config.hidden_dim, 1,
        )
        rows.append([
            machines * 8,
            f"{ratio:.2f}",
            f"{ec.seconds * 1e3:.1f}",
            f"{dc.seconds * 1e3:.1f}",
            f"{ec.seconds / dc.seconds:.2f}x",
            f"{dc.cross_node_gb_per_machine:.2f}",
        ])
    write_report(
        "scalability.txt",
        format_table(
            ["GPUs", "R", "EC (ms)", "DC (ms)", "speedup", "DC GB/machine"],
            rows,
            title="Weak-scaling sweep on MoE-GPT (experts = world size)",
        ),
    )

    times_ec = [results[m][1].seconds for m in MACHINES]
    times_dc = [results[m][2].seconds for m in MACHINES]
    # Cross-node load per machine grows with n, so iteration time does too.
    assert times_ec == sorted(times_ec)
    assert times_dc == sorted(times_dc)
    # Data-centric wins at every scale here (R = 21.3 / 10.7 / 5.3 > 1).
    for ec_time, dc_time in zip(times_ec, times_dc):
        assert dc_time < ec_time

    # Measured DC traffic follows Comm_DC's (n-1) scaling exactly.
    for machines, (config, _, dc) in results.items():
        expected = (
            comm_data_centric(config.hidden_dim, 1, 8, machines)
            * config.num_moe_blocks
            * 2  # pulls + gradient returns
            / 1e9
        )
        assert dc.cross_node_gb_per_machine == pytest.approx(
            expected, rel=1e-6
        )
