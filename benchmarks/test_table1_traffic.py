"""Table 1: cross-machine traffic per machine, expert- vs data-centric.

Regenerates the Table 1 traffic rows (per-machine forward-phase All-to-All
volume, GiB) for the three models at 16 experts / 2 machines and 32 experts
/ 4 machines, and checks them against the paper's printed values:

    E.C.:  6 / 9   (BERT),  1.5 / 2.25 (GPT),  6 / 9   (Transformer-xl)
    D.C.:  0.56/1.69,       0.14/0.42,         0.19/0.56
"""

import pytest

from engine_cache import MODEL_FACTORIES, write_report
from repro.analysis import format_table, table1

PAPER_VALUES = {
    # (model, experts): (ec_gib, dc_gib)
    ("MoE-BERT", 16): (6.0, 0.56),
    ("MoE-BERT", 32): (9.0, 1.69),
    ("MoE-GPT", 16): (1.5, 0.14),
    ("MoE-GPT", 32): (2.25, 0.42),
    ("MoE-Transformer-xl", 16): (6.0, 0.19),
    ("MoE-Transformer-xl", 32): (9.0, 0.56),
}


def build_rows():
    return table1(MODEL_FACTORIES)


def test_table1_traffic(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table = format_table(
        ["Model", "#Expert", "#GPU", "Size(B)", "E.C.(GiB)", "D.C.(GiB)", "Reduction"],
        [
            [
                row.model,
                row.num_experts,
                row.num_gpus,
                f"{row.model_size_b:.2f}",
                f"{row.expert_centric_gib:.2f}",
                f"{row.data_centric_gib:.2f}",
                f"{row.reduction:.1f}x",
            ]
            for row in rows
        ],
        title="Table 1: per-machine cross-node traffic (forward phase)",
    )
    write_report("table1_traffic.txt", table)

    for row in rows:
        ec_expected, dc_expected = PAPER_VALUES[(row.model, row.num_experts)]
        assert row.expert_centric_gib == pytest.approx(ec_expected, rel=0.05)
        assert row.data_centric_gib == pytest.approx(dc_expected, rel=0.05)
        # Headline claim: up to 16x traffic reduction (Transformer-xl).
        assert row.reduction > 1

    xl16 = next(
        row for row in rows
        if row.model == "MoE-Transformer-xl" and row.num_experts == 16
    )
    assert xl16.reduction == pytest.approx(32.0, rel=0.05)
    xl32 = next(
        row for row in rows
        if row.model == "MoE-Transformer-xl" and row.num_experts == 32
    )
    assert xl32.reduction == pytest.approx(16.0, rel=0.05)


def test_model_sizes_match_table1(benchmark):
    """Table 1 'Model size (B)': 0.42/0.73, 0.23/0.31, 0.11/0.21."""
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    paper_sizes = {
        ("MoE-BERT", 16): 0.42,
        ("MoE-BERT", 32): 0.73,
        ("MoE-GPT", 16): 0.23,
        ("MoE-GPT", 32): 0.31,
        ("MoE-Transformer-xl", 16): 0.11,
        ("MoE-Transformer-xl", 32): 0.21,
    }
    for row in rows:
        expected = paper_sizes[(row.model, row.num_experts)]
        assert row.model_size_b == pytest.approx(expected, rel=0.35), (
            f"{row.model} x{row.num_experts}: {row.model_size_b:.2f}B "
            f"vs paper {expected}B"
        )
