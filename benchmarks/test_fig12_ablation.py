"""Fig. 12: ablation of the Janus optimizations.

For each model (32 experts, 4 machines) the paper reports speedup over the
expert-centric baseline as the strategies stack:

    Data-Centric (fine-grained only):  1.26x / 1.58x / 1.79x
    + Topology-aware:                  incremental gain
    + Prefetch (all optimizations):    1.31x / 1.63x / 1.81x

The reproduced *shape*: data-centric alone contributes the bulk of the
speedup; topology awareness and prefetch each add an incremental gain on
top; every model lands in the 1.2x-2.1x band.
"""

from engine_cache import MODEL_FACTORIES, run_model, write_report
from repro.analysis import format_table

VARIANTS = [
    ("Data-Centric", "base"),
    ("+ Topology-aware", "topo"),
    ("+ Prefetch (all)", "full"),
]


def run_ablation():
    results = {}
    for model in MODEL_FACTORIES:
        baseline = run_model(model, "expert-centric")
        results[model] = {"baseline": baseline}
        for label, features in VARIANTS:
            results[model][label] = run_model(
                model, "data-centric", features=features
            )
    return results


def test_fig12_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for model, runs in results.items():
        baseline = runs["baseline"].seconds
        row = [model, f"{baseline * 1e3:.1f}"]
        for label, _ in VARIANTS:
            speedup = baseline / runs[label].seconds
            row.append(f"{speedup:.2f}x")
        rows.append(row)
    write_report(
        "fig12_ablation.txt",
        format_table(
            ["Model", "EC iter (ms)"] + [label for label, _ in VARIANTS],
            rows,
            title="Fig. 12: speedup over the expert-centric baseline as "
            "optimizations stack (32 experts, 4 machines)",
        ),
    )

    for model, runs in results.items():
        baseline = runs["baseline"].seconds
        speedups = [baseline / runs[label].seconds for label, _ in VARIANTS]
        # Data-centric alone already wins (paper: 1.26-1.79x).
        assert speedups[0] > 1.15, f"{model}: DC base speedup {speedups[0]:.2f}"
        # Each added strategy helps (or is at worst neutral).
        assert speedups[1] >= speedups[0] * 0.99
        assert speedups[2] >= speedups[1] * 0.99
        # Full Janus stays in the paper's band (1.31-1.81, allow 1.2-2.1).
        assert 1.2 < speedups[2] < 2.1, f"{model}: full {speedups[2]:.2f}"
        # The data-centric paradigm contributes the bulk of the gain.
        dc_gain = speedups[0] - 1.0
        extra_gain = speedups[2] - speedups[0]
        assert dc_gain > extra_gain
