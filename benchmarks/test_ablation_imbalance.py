"""Ablation: routing imbalance (§3.1, first observation).

The paper observes that expert token assignments are imbalanced and that
All-to-All, being synchronous, is paced by the busiest worker — one reason
expert-centric training is slow.  The data-centric paradigm is immune by
construction: every expert is the same size, so pull traffic stays balanced
no matter how skewed the routing is.

This ablation sweeps Zipf skew over the routing distribution and measures
both engines on MoE-GPT.
"""

import numpy as np
from engine_cache import write_report
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import moe_gpt
from repro.core import build_workload, data_centric_engine, expert_centric_engine
from repro.workloads import assignment_imbalance

SKEWS = (0.0, 0.8, 1.4)


def run_sweep():
    config = moe_gpt(32)
    cluster = Cluster(4)
    results = {}
    for skew in SKEWS:
        workload = build_workload(
            config, cluster, imbalance=skew, rng=np.random.default_rng(7)
        )
        block = workload.moe_blocks()[0]
        load_ratio = assignment_imbalance(block.routing.sum(axis=0))
        ec = expert_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        dc = data_centric_engine(
            config, cluster, workload=workload
        ).run_iteration()
        results[skew] = (load_ratio, ec, dc)
    return results


def test_imbalance_hurts_expert_centric_more(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for skew, (load_ratio, ec, dc) in results.items():
        rows.append([
            f"{skew:.1f}",
            f"{load_ratio:.2f}",
            f"{ec.seconds * 1e3:.1f}",
            f"{dc.seconds * 1e3:.1f}",
            f"{ec.seconds / dc.seconds:.2f}x",
        ])
    write_report(
        "ablation_imbalance.txt",
        format_table(
            ["Zipf skew", "max/mean load", "EC (ms)", "DC (ms)", "speedup"],
            rows,
            title="Routing-imbalance ablation on MoE-GPT "
            "(§3.1: All-to-All is paced by the busiest worker)",
        ),
    )

    balanced = results[0.0]
    worst = results[max(SKEWS)]
    # Skew concentrates load on hot experts.
    assert worst[0] > 2 * balanced[0]
    # Expert-centric slows down under skew...
    assert worst[1].seconds > balanced[1].seconds * 1.1
    # ...and relatively more than data-centric: the Janus advantage widens.
    ec_degradation = worst[1].seconds / balanced[1].seconds
    dc_degradation = worst[2].seconds / balanced[2].seconds
    assert ec_degradation > dc_degradation
    speedup_balanced = balanced[1].seconds / balanced[2].seconds
    speedup_worst = worst[1].seconds / worst[2].seconds
    assert speedup_worst > speedup_balanced
