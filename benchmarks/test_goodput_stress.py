"""§3.1 observation 2: All-to-All goodput, intra- vs inter-machine.

The paper stress-tests All-to-All goodput inside one 8-GPU machine (NVLink)
and across four machines (NIC-bound RDMA), measuring 1846.58 Gbps vs
101.9 Gbps (~18x).  This bench reruns the stress test on the simulated
fabric; the reproduced shape is the order-of-magnitude gap showing that
inter-machine All-to-All leaves the intra-machine links mostly idle.
"""

from engine_cache import write_report
from repro.analysis import format_table
from repro.netsim import measure_all_to_all_goodput


def run_stress():
    intra = measure_all_to_all_goodput(1, payload_bytes_per_pair=32e6, rounds=4)
    inter = measure_all_to_all_goodput(4, payload_bytes_per_pair=32e6, rounds=4)
    return intra, inter


def test_goodput_gap(benchmark):
    intra, inter = benchmark.pedantic(run_stress, rounds=1, iterations=1)

    write_report(
        "goodput_stress.txt",
        format_table(
            ["Setting", "GPUs", "Goodput (Gbps/GPU)"],
            [
                ["intra-machine (NVLink)", 8, f"{intra.goodput_gbps:.1f}"],
                ["inter-machine (4x8, RDMA)", 32, f"{inter.goodput_gbps:.1f}"],
                ["ratio", "-", f"{intra.goodput_gbps / inter.goodput_gbps:.1f}x"],
            ],
            title="All-to-All goodput stress test (paper: 1846.58 vs "
            "101.9 Gbps, ~18x)",
        ),
    )

    ratio = intra.goodput_gbps / inter.goodput_gbps
    # Paper measures ~18x; the simulated fabric must reproduce a gap of the
    # same order (an order of magnitude or more).
    assert ratio > 8
    # And the inter-machine number must be NIC-bound: no GPU can beat the
    # 200 Gbps NIC it shares with its pair partner.
    assert inter.goodput_gbps < 200
    # Intra-machine goodput is far above what any NIC could carry.
    assert intra.goodput_gbps > 400
