"""All-to-All goodput stress test (paper §3.1, second observation).

The paper stress-tests All-to-All goodput in two settings: within a single
8-GPU machine (NVLink only) and across four 8-GPU machines (NIC-bound), and
reports 1846.58 Gbps vs 101.9 Gbps — an ~18x gap showing the intra-machine
links sit mostly idle during inter-machine All-to-All.  This module
reproduces that experiment on the simulated fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster, MachineSpec, a100_machine_spec
from ..simkit import Environment
from ..units import to_gbps
from .collectives import all_to_all, uniform_matrix
from .fabric import Fabric

__all__ = ["GoodputResult", "measure_all_to_all_goodput"]


@dataclass(frozen=True)
class GoodputResult:
    """Outcome of one goodput stress test."""

    num_machines: int
    gpus_per_machine: int
    payload_bytes_per_pair: float
    elapsed_seconds: float
    total_bytes: float

    @property
    def goodput_bytes_per_s(self) -> float:
        """Aggregate goodput: useful payload moved per wall second,
        normalized per participating GPU (matching how NCCL-style busbw is
        reported per rank)."""
        world = self.num_machines * self.gpus_per_machine
        return self.total_bytes / self.elapsed_seconds / world

    @property
    def goodput_gbps(self) -> float:
        return to_gbps(self.goodput_bytes_per_s)


def measure_all_to_all_goodput(
    num_machines: int,
    payload_bytes_per_pair: float = 32e6,
    rounds: int = 4,
    spec: MachineSpec = None,
) -> GoodputResult:
    """Run ``rounds`` uniform All-to-Alls and measure per-GPU goodput."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    cluster = Cluster(num_machines, spec or a100_machine_spec())
    env = Environment()
    fabric = Fabric(env, cluster)
    matrix = uniform_matrix(cluster.world_size, payload_bytes_per_pair)

    def driver():
        for _ in range(rounds):
            yield all_to_all(fabric, matrix)

    start = env.now
    env.run(until=env.process(driver()))
    elapsed = env.now - start
    total = matrix.sum() * rounds
    return GoodputResult(
        num_machines=num_machines,
        gpus_per_machine=cluster.gpus_per_machine,
        payload_bytes_per_pair=payload_bytes_per_pair,
        elapsed_seconds=elapsed,
        total_bytes=total,
    )
