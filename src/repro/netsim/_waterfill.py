"""Compiled water-filling kernel (optional, bit-identical).

The progressive-filling loop in :mod:`repro.netsim.fluid` is inherently
sequential — each round fixes one bottleneck link and updates the
residual capacity and load of the links its flows cross — so it cannot
be vectorized across rounds.  At fleet scale (128 machines) a solve runs
hundreds of rounds and the per-round numpy-call overhead dominates the
whole simulation.  This module compiles the identical loop to native
code at first use (plain ``cc -O2 -ffp-contract=off``, no third-party
build system) and binds it through :mod:`ctypes`.

Bit-identity with the pure-python loop is a hard requirement (the golden
tests and ``baseline --tolerance 0`` pin simulated times exactly), so
the C code reproduces the float semantics operation for operation:

* shares are ``residual / load`` where ``load > 0`` else ``+inf`` — the
  same single IEEE-754 division numpy performs;
* the bottleneck is the *first* index achieving the minimal share
  (numpy ``argmin`` tie-break).  The kernel keeps a lazy-invalidation
  binary heap ordered by ``(share, link index)``; lexicographic order on
  that pair is exactly "lowest index among minimal shares".  A NaN share
  maps to a ``-inf`` heap key, matching ``argmin``'s "first NaN wins"
  rule, and then terminates the loop through the same ``isfinite``
  check;
* per-link crossing counts accumulate in selected-group order (the
  order ``np.bincount`` adds its weights), and the residual/load update
  computes ``residual - (share * count)`` as two separate operations —
  ``-ffp-contract=off`` forbids the compiler from fusing them into an
  FMA, which would round differently;
* links untouched by a round keep their residual/load words bitwise
  unchanged, so recomputing their share next round is the same division
  of the same operands — the heap can therefore skip them entirely.

If no C compiler is available (or ``REPRO_WATERFILL=python`` is set)
the callers fall back to the pure-python loops; nothing else changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
from pathlib import Path
from typing import Optional

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* 16-byte heap entry: share key + link index.  Lexicographic order on
   (key, idx) == "lowest link index among minimal shares" == the numpy
   argmin tie-break the pure-python loop relies on. */
typedef struct { double key; int64_t idx; } entry;

static int entry_lt(entry a, entry b) {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
}

static void heap_push(entry *h, int64_t *len, entry e) {
    int64_t i = (*len)++;
    h[i] = e;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (entry_lt(h[i], h[p])) {
            entry t = h[p]; h[p] = h[i]; h[i] = t;
            i = p;
        } else {
            break;
        }
    }
}

static entry heap_pop(entry *h, int64_t *len) {
    entry top = h[0];
    int64_t n = --(*len);
    h[0] = h[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && entry_lt(h[l], h[m])) m = l;
        if (r < n && entry_lt(h[r], h[m])) m = r;
        if (m == i) break;
        entry t = h[m]; h[m] = h[i]; h[i] = t;
        i = m;
    }
    return top;
}

static double share_of(double residual, double load) {
    return load > 0.0 ? residual / load : INFINITY;
}

/* NaN sorts below everything: numpy argmin returns the first NaN. */
static double key_of(double share) {
    return isnan(share) ? -INFINITY : share;
}

int64_t waterfill(
    int64_t nl, int64_t ng,
    double *residual,            /* [nl] capacities, clobbered */
    double *load,                /* [nl] crossing-flow counts, clobbered */
    const int64_t *gpaths,       /* [ng*2] link ids per group, -1 = none */
    const double *gcountf,       /* [ng] flow multiplicity per group */
    const int64_t *sorted_groups,/* CSR payload: groups sorted by link */
    const int64_t *starts,       /* [nl+1] CSR row starts */
    double *grates,              /* [ng] out, pre-zeroed */
    int64_t unfixed_flows,
    /* caller-provided scratch */
    double *keys,                /* [nl] */
    unsigned char *fixed_link,   /* [nl] zeroed */
    unsigned char *gunfixed,     /* [ng] set to 1 */
    double *counts,              /* [nl] zeroed */
    int64_t *touched,            /* [2*ng + 2] */
    entry *heap                  /* [nl + 2*ng + 4] */
) {
    int64_t heap_len = 0;
    int64_t rounds = 0;
    for (int64_t i = 0; i < nl; i++) {
        double k = key_of(share_of(residual[i], load[i]));
        keys[i] = k;
        entry e; e.key = k; e.idx = i;
        heap_push(heap, &heap_len, e);
    }
    while (1) {
        int64_t bottleneck = -1;
        while (heap_len > 0) {
            entry e = heap_pop(heap, &heap_len);
            if (fixed_link[e.idx]) continue;       /* fixed in a past round */
            if (e.key != keys[e.idx]) continue;    /* stale entry */
            bottleneck = e.idx;
            break;
        }
        if (bottleneck < 0) break;                 /* every link fixed */
        double share = share_of(residual[bottleneck], load[bottleneck]);
        if (!isfinite(share)) break;
        if (0.0 > share) share = 0.0;              /* == max(share, 0.0) */
        int64_t ntouched = 0;
        int64_t fixed_count = 0;
        int64_t any = 0;
        for (int64_t k = starts[bottleneck]; k < starts[bottleneck + 1];
             k++) {
            int64_t g = sorted_groups[k];
            if (!gunfixed[g]) continue;
            any = 1;
            grates[g] = share;
            gunfixed[g] = 0;
            double w = gcountf[g];
            fixed_count += (int64_t) w;
            for (int64_t c = 0; c < 2; c++) {
                int64_t link = gpaths[2 * g + c];
                if (link < 0) continue;
                if (counts[link] == 0.0) touched[ntouched++] = link;
                counts[link] += w;
            }
        }
        if (!any) break;
        for (int64_t t = 0; t < ntouched; t++) {
            int64_t link = touched[t];
            double c = counts[link];
            counts[link] = 0.0;
            /* Two rounded ops, exactly like numpy's
               "residual -= share * counts": no FMA (-ffp-contract=off). */
            double sub = share * c;
            residual[link] = residual[link] - sub;
            load[link] = load[link] - c;
            if (link == bottleneck) continue;      /* pinned to 0 below */
            double k = key_of(share_of(residual[link], load[link]));
            keys[link] = k;
            entry e; e.key = k; e.idx = link;
            heap_push(heap, &heap_len, e);
        }
        residual[bottleneck] = 0.0;
        load[bottleneck] = 0.0;
        fixed_link[bottleneck] = 1;
        unfixed_flows -= fixed_count;
        rounds++;
        if (unfixed_flows <= 0) break;
    }
    return rounds;
}
"""

# src/repro/netsim/_waterfill.py -> repo root / build / waterfill
_BUILD_DIR = Path(__file__).resolve().parents[3] / "build" / "waterfill"

_kernel: Optional[ctypes.CDLL] = None
_kernel_probed = False


def _compile() -> Optional[ctypes.CDLL]:
    """Compile the kernel into the repo build dir; None on any failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    lib_path = _BUILD_DIR / f"waterfill_{digest}.so"
    try:
        if not lib_path.exists():
            _BUILD_DIR.mkdir(parents=True, exist_ok=True)
            src_path = _BUILD_DIR / f"waterfill_{digest}.c"
            src_path.write_text(_C_SOURCE)
            tmp_path = lib_path.with_suffix(f".tmp{os.getpid()}.so")
            subprocess.run(
                [
                    os.environ.get("CC", "cc"),
                    "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                    "-o", str(tmp_path), str(src_path), "-lm",
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)  # atomic vs concurrent builds
        lib = ctypes.CDLL(str(lib_path))
    except Exception:
        return None
    fn = lib.waterfill
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        [ctypes.c_int64, ctypes.c_int64]
        + [ctypes.c_void_p] * 7
        + [ctypes.c_int64]
        + [ctypes.c_void_p] * 6
    )
    return lib


def kernel() -> Optional[ctypes.CDLL]:
    """The compiled kernel, or None (no compiler / opted out)."""
    global _kernel, _kernel_probed
    if not _kernel_probed:
        _kernel_probed = True
        if os.environ.get("REPRO_WATERFILL", "").lower() not in (
            "python", "off", "0",
        ):
            _kernel = _compile()
    return _kernel


class Scratch:
    """Reusable kernel work buffers, sized with geometric headroom.

    A solve runs thousands of times per iteration at fleet scale;
    allocating multi-hundred-KB scratch arrays per call costs more in
    page faults than the filling loop itself.  One Scratch instance is
    kept per network and regrown only when the link/group tables do.
    ``counts`` is zero between calls by construction: the kernel zeroes
    every touched slot before any of its exit paths.
    """

    def __init__(self, num_links: int, num_groups: int):
        nl = num_links * 3 // 2 + 64
        ng = num_groups * 3 // 2 + 64
        self.nl = nl
        self.ng = ng
        self.residual = np.empty(nl)
        self.load = np.empty(nl)
        self.keys = np.empty(nl)
        self.fixed = np.empty(nl, dtype=np.uint8)
        self.counts = np.zeros(nl)
        self.gcountf = np.empty(ng)
        self.gunfixed = np.empty(ng, dtype=np.uint8)
        self.touched = np.empty(2 * ng + 2, dtype=np.int64)
        self.heap = np.empty(2 * (nl + 2 * ng + 4))  # (double, int64) pairs

    def fits(self, num_links: int, num_groups: int) -> bool:
        return num_links <= self.nl and num_groups <= self.ng


def run(
    lib: ctypes.CDLL,
    scratch: Scratch,
    capacity: np.ndarray,
    load_counts: np.ndarray,
    gpaths: np.ndarray,
    gcount: np.ndarray,
    sorted_groups: np.ndarray,
    starts: np.ndarray,
    grates: np.ndarray,
    unfixed_flows: int,
) -> int:
    """Invoke the compiled filling loop; mutates ``grates`` in place."""
    nl = capacity.shape[0]
    ng = grates.shape[0]
    residual = scratch.residual[:nl]
    np.copyto(residual, capacity)
    load = scratch.load[:nl]
    np.copyto(load, load_counts, casting="unsafe")  # int64 -> float64
    gcountf = scratch.gcountf[:ng]
    np.copyto(gcountf, gcount, casting="unsafe")
    scratch.fixed[:nl] = 0
    scratch.gunfixed[:ng] = 1

    def ptr(array: np.ndarray) -> ctypes.c_void_p:
        return ctypes.c_void_p(array.ctypes.data)

    return int(
        lib.waterfill(
            nl, ng,
            ptr(residual), ptr(load), ptr(gpaths), ptr(gcountf),
            ptr(sorted_groups), ptr(starts), ptr(grates),
            int(unfixed_flows),
            ptr(scratch.keys), ptr(scratch.fixed), ptr(scratch.gunfixed),
            ptr(scratch.counts), ptr(scratch.touched), ptr(scratch.heap),
        )
    )
