"""Fluid (max-min fair share) network simulation.

Concurrent transfers are modelled as fluid flows: every active flow crossing
a link shares that link's capacity max-min fairly, and rates are recomputed
whenever a flow starts or finishes (progressive filling / water filling).
This is the standard flow-level abstraction used by network simulators and it
reproduces exactly the contention effects the paper's scheduling strategies
manipulate: egress serialization on NVSwitch ports (Fig. 7), sharing of the
PCIe-switch uplink (Fig. 8/9), and the NIC bottleneck for cross-machine
pulls.

Per-flow latency (the sum of link latencies on the path) is charged once, as
a startup delay before the flow begins moving bytes.

Implementation notes (this module is the simulator's hottest path — the
solver reruns on every flow arrival/departure):

* Link ids are interned to integer indices at registration; capacities,
  per-link byte counters and per-link load counts live in numpy arrays that
  grow geometrically (``add_link`` is amortized O(1)).
* Per-flow state (packed ``(F, 2)`` path matrix, remaining bytes, rates)
  is maintained *incrementally* as flows join and leave instead of being
  rebuilt for every water-filling pass; ``Flow.remaining``/``Flow.rate``
  are views into those arrays while the flow is active.
* Flows are grouped by identical path: the water-filling rounds run over
  path *groups* (with multiplicities), and solves are memoized by
  (capacity epoch, group-count signature) — flow populations recur, so a
  recompute frequently reuses the cached per-group rates of an earlier
  identical population.  All shortcuts are arranged to be bit-identical to
  a fresh global recompute (same float operations in the same order),
  which the golden-metrics battery and a hypothesis property test pin
  down.
* Coalescing (default, ``coalesce=True``): the path group acts as a
  macro-flow and the packed member rows are its byte ledger.  Finishing
  members are *tombstoned* (rate zeroed, live bit cleared, group count and
  link loads decremented) in O(finished) instead of compacting the whole
  ledger per completion event, and the arrays are compacted only when at
  least half the rows are dead (amortized O(1) per flow).  The solver
  additionally restricts each filling pass to links with at least one
  crossing flow.  Both shortcuts are bit-identical to the uncoalesced
  path (``coalesce=False`` keeps it alive for the property battery):
  tombstoned rows have rate exactly 0 so they move no bytes and touch no
  link counters, compaction only relocates rows, and inactive links can
  never be the bottleneck of a filling round.
* Rate recomputation is deferred to the end of the simulated instant
  (``Environment.defer_to_instant_end``): a burst of arrivals/finishes at
  one timestamp — spread over any number of kernel events — triggers one
  water-filling pass for the whole cohort, not one per event.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from . import _waterfill
from ..simkit import Environment, Event

# Memoized-solve cache ceiling in bytes of cached rate arrays; entries
# are also capped at 4096.  Hitting either bound evicts the whole cache
# (and recycles the arrays) rather than tracking LRU order — signatures
# either recur constantly (steady state: the cache never fills) or
# almost never (fleet-scale churn: nothing is worth keeping).
_SOLVE_CACHE_BUDGET = 64 << 20

__all__ = ["Flow", "FluidNetwork"]

_EPSILON = 1e-12
# The _on_timer fallback may only force-finish a flow whose remaining bytes
# are within this relative band of its size — i.e. genuine floating-point
# residue.  A stale timer observing a flow with real bytes left (e.g. after
# a mid-flight set_capacity rescale) must reschedule instead.
_FORCE_FINISH_REL = 1e-9


class Flow:
    """One transfer in flight.

    Attributes:
        path: directed link ids the flow crosses (may be empty for a
            device-local copy).
        size: total bytes.
        remaining: bytes still to move.
        rate: current fair-share rate in bytes/second (0 until activated).
        done: event triggered with the flow when the last byte lands.
    """

    _ids = itertools.count()

    __slots__ = (
        "id", "path", "path_index", "size", "latency",
        "tag", "created_at", "started_at", "completed_at", "done",
        "_net", "_row", "_remaining", "_rate",
    )

    def __init__(
        self,
        env: Environment,
        path: Tuple[Hashable, ...],
        path_index: Tuple[int, ...],
        size: float,
        latency: float,
        tag: Optional[Hashable] = None,
    ):
        self.id = next(Flow._ids)
        self.path = path
        self.path_index = path_index
        self.size = float(size)
        self.latency = latency
        self.tag = tag
        self.created_at = env.now
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.done: Event = env.event()
        # While active, remaining/rate live in the network's packed arrays;
        # _net/_row point at the row.  Before activation and after
        # completion the cached scalars below are authoritative.
        self._net: Optional["FluidNetwork"] = None
        self._row = -1
        self._remaining = float(size)
        self._rate = 0.0

    @property
    def remaining(self) -> float:
        """Bytes still to move (live view while the flow is active)."""
        net = self._net
        if net is not None:
            return float(net._remaining[self._row])
        return self._remaining

    @property
    def rate(self) -> float:
        """Current fair-share rate (live view while the flow is active)."""
        net = self._net
        if net is not None:
            return float(net._rates[self._row])
        return self._rate

    @property
    def duration(self) -> Optional[float]:
        """Wall time from creation to completion (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    def __repr__(self) -> str:
        return (
            f"<Flow {self.id} size={self.size:.0f}B "
            f"remaining={self.remaining:.0f}B rate={self.rate:.3g}B/s>"
        )


class _LinkBytesView:
    """Read-only mapping from link id to total bytes moved over it."""

    def __init__(self, network: "FluidNetwork"):
        self._network = network

    def __getitem__(self, link_id: Hashable) -> float:
        index = self._network._index[link_id]
        return float(self._network._link_bytes[index])

    def __contains__(self, link_id: Hashable) -> bool:
        return link_id in self._network._index

    def items(self):
        for link_id, index in self._network._index.items():
            yield link_id, float(self._network._link_bytes[index])


class FluidNetwork:
    """Max-min fair bandwidth sharing over a set of directed links."""

    def __init__(self, env: Environment, coalesce: bool = True):
        self.env = env
        # Coalesced mode (default) tombstones finished ledger rows and
        # water-fills over active links only; ``coalesce=False`` keeps the
        # eager row-compaction/dense-solve path alive as the bit-identical
        # reference for the equivalence property battery.
        self.coalesce = coalesce
        self._index: Dict[Hashable, int] = {}
        # Per-link arrays; only the first _num_links entries are valid.
        self._capacity = np.zeros(0)
        self._link_bytes = np.zeros(0)
        self._load_counts = np.zeros(0, dtype=np.int64)
        self._num_links = 0
        self._capacity_epoch = 0
        # Per-flow packed state; rows parallel _active, first _n valid.
        self._active: List[Flow] = []
        self._paths = np.full((0, 2), -1, dtype=np.int64)
        self._remaining = np.zeros(0)
        self._rates = np.zeros(0)
        self._sizes = np.zeros(0)
        self._gids = np.zeros(0, dtype=np.int64)
        # Tombstone ledger (coalesced mode): _live marks rows whose flow is
        # still in flight; _active carries None at dead rows so row indices
        # stay aligned until the next compaction.
        self._live = np.zeros(0, dtype=bool)
        self._live_count = 0
        self._dead_count = 0
        self._n = 0
        # Path groups: flows with identical path share a group; the solver
        # runs over groups with multiplicities.  Groups are never deleted.
        self._group_of: Dict[Tuple[int, ...], int] = {}
        self._group_paths = np.full((0, 2), -1, dtype=np.int64)
        self._group_count = np.zeros(0, dtype=np.int64)
        self._num_groups = 0
        # Memoized solves keyed by (capacity epoch, trimmed group-count
        # signature): flow populations recur, so identical signatures are
        # common across non-consecutive recomputes.  The cache is bounded
        # by entry count and by bytes (fleet-scale rate arrays run to
        # hundreds of KB each); evicted arrays are recycled through
        # ``_grates_pool`` so solves write into warm pages.
        self._solve_cache: Dict[Tuple[int, bytes], np.ndarray] = {}
        self._solve_cache_bytes = 0
        self._grates_pool: List[np.ndarray] = []
        # Highest group id that ever held a flow: upper bound for the
        # populated-signature width (avoids an O(groups) nonzero scan on
        # every recompute instant).
        self._gid_hi = -1
        # Resolved link-id tuples -> packed index tuples (routes repeat).
        self._path_cache: Dict[Tuple[Hashable, ...], Tuple[int, ...]] = {}
        # link -> crossing-groups CSR adjacency; both the group table and
        # the link set are append-only, so it is rebuilt only on growth.
        self._csr_groups: Optional[np.ndarray] = None
        self._csr_starts: Optional[np.ndarray] = None
        self._csr_gvalid: Optional[np.ndarray] = None
        self._csr_rowsum: Optional[np.ndarray] = None
        self._csr_shape = (-1, -1)
        # Reusable work buffers for the compiled solver (see _waterfill).
        self._solve_scratch: Optional[_waterfill.Scratch] = None
        self._last_update = env.now
        self._generation = 0
        self._recompute_pending = False
        self.total_bytes_completed = 0.0

    # -- topology -----------------------------------------------------------

    def add_link(self, link_id: Hashable, bandwidth: float) -> None:
        """Register a directed link with ``bandwidth`` bytes/second."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if link_id in self._index:
            raise ValueError(f"duplicate link id: {link_id!r}")
        index = self._num_links
        if index == self._capacity.shape[0]:
            grown = max(16, 2 * index)
            self._capacity = _grow(self._capacity, grown)
            self._link_bytes = _grow(self._link_bytes, grown)
            self._load_counts = _grow(self._load_counts, grown)
        self._index[link_id] = index
        self._capacity[index] = float(bandwidth)
        self._link_bytes[index] = 0.0
        self._load_counts[index] = 0
        self._num_links = index + 1
        self._capacity_epoch += 1

    def capacity(self, link_id: Hashable) -> float:
        return float(self._capacity[self._index[link_id]])

    def links(self) -> List[Hashable]:
        """All registered link ids, in registration order."""
        return list(self._index)

    def set_capacity(self, link_id: Hashable, bandwidth: float) -> None:
        """Rescale a link's bandwidth mid-flight (fault injection).

        Bytes already moved are accounted at the old rates before the
        change; active flows crossing the link are re-waterfilled at the
        new capacity from the current instant.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        index = self._index[link_id]
        self._advance()
        self._capacity[index] = float(bandwidth)
        self._capacity_epoch += 1
        self._schedule_recompute()

    @property
    def link_bytes(self) -> _LinkBytesView:
        return _LinkBytesView(self)

    @property
    def active_flows(self) -> List[Flow]:
        if self._dead_count:
            return [flow for flow in self._active if flow is not None]
        return list(self._active)

    # -- transfers ----------------------------------------------------------

    def resolve_path(
        self, path: Iterable[Hashable]
    ) -> Tuple[Tuple[Hashable, ...], Tuple[int, ...]]:
        """Intern ``path`` and return ``(path tuple, packed index tuple)``.

        Callers that issue many transfers over the same route (the fabric,
        the collectives) resolve once and pass ``path_index`` to
        :meth:`transfer`, skipping the per-call cache lookup.
        """
        path = tuple(path)
        path_index = self._path_cache.get(path)
        if path_index is None:
            try:
                path_index = tuple(self._index[link_id] for link_id in path)
            except KeyError as exc:
                raise KeyError(f"unknown link id: {exc.args[0]!r}") from None
            if len(path_index) > 2:
                raise ValueError(
                    f"paths are at most two links, got {len(path_index)}"
                )
            self._path_cache[path] = path_index
        return path, path_index

    def transfer(
        self,
        path: Iterable[Hashable],
        size: float,
        latency: float = 0.0,
        tag: Optional[Hashable] = None,
        path_index: Optional[Tuple[int, ...]] = None,
    ) -> Flow:
        """Start a transfer of ``size`` bytes over ``path``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-size transfers and empty paths complete after ``latency`` only.
        ``path_index`` is the pre-resolved result of :meth:`resolve_path`;
        when given, ``path`` must already be the interned tuple.
        """
        if path_index is None:
            path, path_index = self.resolve_path(path)
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        flow = Flow(self.env, path, path_index, size, latency, tag=tag)
        if latency > 0:
            # The latency stage is a plain timer callback, not a Process:
            # at fleet scale every point-to-point flow passes through here.
            timer = self.env.timeout(latency, value=flow)
            timer.callbacks.append(self._activate_event)
        else:
            self._activate(flow)
        return flow

    def _activate_event(self, event) -> None:
        self._activate(event._value)

    def _activate(self, flow: Flow) -> None:
        flow.started_at = self.env.now
        if flow.size <= 0 or not flow.path:
            # Local copy or pure-latency message: completes instantly once
            # the latency delay has elapsed.
            self._finish(flow)
            return
        self._advance()
        self._append_row(flow)
        self._schedule_recompute()

    # -- packed per-flow state ----------------------------------------------

    def _append_row(self, flow: Flow) -> None:
        row = self._n
        if row == self._remaining.shape[0]:
            grown = max(32, 2 * row)
            self._paths = _grow(self._paths, grown, fill=-1)
            self._remaining = _grow(self._remaining, grown)
            self._rates = _grow(self._rates, grown)
            self._sizes = _grow(self._sizes, grown)
            self._gids = _grow(self._gids, grown)
            self._live = _grow(self._live, grown)
        path_index = flow.path_index
        self._paths[row] = -1
        self._paths[row, : len(path_index)] = path_index
        self._remaining[row] = flow._remaining
        self._rates[row] = 0.0
        self._sizes[row] = flow.size
        gid = self._group_of.get(path_index)
        if gid is None:
            gid = self._intern_group(path_index)
        self._gids[row] = gid
        self._group_count[gid] += 1
        if gid > self._gid_hi:
            self._gid_hi = gid
        for index in path_index:
            self._load_counts[index] += 1
        self._live[row] = True
        self._live_count += 1
        self._n = row + 1
        self._active.append(flow)
        flow._net = self
        flow._row = row

    def _intern_group(self, path_index: Tuple[int, ...]) -> int:
        gid = self._num_groups
        if gid == self._group_count.shape[0]:
            grown = max(16, 2 * gid)
            self._group_paths = _grow(self._group_paths, grown, fill=-1)
            self._group_count = _grow(self._group_count, grown)
        self._group_paths[gid] = -1
        self._group_paths[gid, : len(path_index)] = path_index
        self._group_count[gid] = 0
        self._num_groups = gid + 1
        self._group_of[path_index] = gid
        return gid

    def _remove_rows(self, finished_mask: np.ndarray) -> List[Flow]:
        """Retire the masked rows and return their flows.

        Coalesced mode tombstones in O(finished); the uncoalesced
        reference compacts the ledger eagerly (O(active) per call).
        """
        if self.coalesce:
            return self._retire_rows(finished_mask)
        n = self._n
        keep = ~finished_mask
        finished: List[Flow] = []
        kept: List[Flow] = []
        for flow, done in zip(self._active, finished_mask):
            (finished if done else kept).append(flow)
        for flow in finished:
            self._group_count[self._gids[flow._row]] -= 1
            for index in flow.path_index:
                self._load_counts[index] -= 1
        k = len(kept)
        self._paths[:k] = self._paths[:n][keep]
        self._remaining[:k] = self._remaining[:n][keep]
        self._rates[:k] = self._rates[:n][keep]
        self._sizes[:k] = self._sizes[:n][keep]
        self._gids[:k] = self._gids[:n][keep]
        first = int(np.argmax(finished_mask))
        for row in range(first, k):
            kept[row]._row = row
        self._active = kept
        self._n = k
        self._live_count = k
        return finished

    def _retire_rows(self, finished_mask: np.ndarray) -> List[Flow]:
        """Tombstone the masked rows: zero their rate, clear their live
        bit and release their group/link bookkeeping.  The dead rows keep
        their position (so live rows never move and no float is touched)
        until :meth:`_compact` reclaims them."""
        rows = np.flatnonzero(finished_mask)
        active = self._active
        finished = [active[int(row)] for row in rows]
        for row in rows:
            active[int(row)] = None
        # In-place scatter-decrements: exact integer arithmetic, and no
        # O(num_groups)/O(num_links) bincount allocation per instant.
        np.subtract.at(self._group_count, self._gids[rows], 1)
        paths = self._paths[rows]
        links = paths[paths >= 0]
        if links.size:
            np.subtract.at(self._load_counts, links, 1)
        self._rates[rows] = 0.0
        self._live[rows] = False
        self._dead_count += rows.size
        self._live_count -= rows.size
        if self._live_count == 0:
            self._active = []
            self._n = 0
            self._dead_count = 0
        elif self._dead_count >= 64 and 2 * self._dead_count >= self._n:
            self._compact()
        return finished

    def _compact(self) -> None:
        """Reclaim tombstoned rows, preserving live-row order (and hence
        every downstream float operation's order)."""
        n = self._n
        live = self._live[:n]
        k = self._live_count
        self._paths[:k] = self._paths[:n][live]
        self._remaining[:k] = self._remaining[:n][live]
        self._rates[:k] = self._rates[:n][live]
        self._sizes[:k] = self._sizes[:n][live]
        self._gids[:k] = self._gids[:n][live]
        self._live[:k] = True
        self._active = [flow for flow in self._active if flow is not None]
        for row, flow in enumerate(self._active):
            flow._row = row
        self._n = k
        self._dead_count = 0

    # -- recompute scheduling ------------------------------------------------

    def _schedule_recompute(self) -> None:
        """Coalesce rate recomputation: many flows starting or finishing at
        the same instant (e.g. the prefetch burst at iteration start) cause
        one water-filling pass, not one per flow.  The pass is deferred to
        the end of the instant, so the whole same-timestamp cohort —
        across any number of kernel events — shares a single solve."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.env.defer_to_instant_end(self._do_recompute)

    def _do_recompute(self) -> None:
        self._recompute_pending = False
        self._advance()
        self._reschedule()

    # -- fluid mechanics ----------------------------------------------------

    def _advance(self) -> None:
        """Move bytes for all active flows since the last update."""
        now = self.env.now
        dt = now - self._last_update
        n = self._n
        if dt > 0 and n:
            moved = self._rates[:n] * dt
            positive = moved > 0
            if positive.any():
                remaining = self._remaining[:n]
                np.maximum(remaining - moved, 0.0, out=remaining)
                # Accumulate per-link bytes in (flow, link-in-path) order —
                # the same float addition order as a per-flow loop.
                paths = self._paths[:n]
                mask = (paths >= 0) & positive[:, None]
                np.add.at(
                    self._link_bytes,
                    paths[mask],
                    np.broadcast_to(moved[:, None], (n, 2))[mask],
                )
        self._last_update = now

    def _assign_rates(self) -> None:
        """Water-filling max-min fair allocation (incremental, vectorized).

        The filling rounds run over path *groups* (flows with an identical
        link tuple) with multiplicities, which is arithmetically identical
        to running over individual flows: a round fixes every unfixed flow
        crossing the bottleneck at the same share, and the residual update
        subtracts ``share * crossing_flow_count`` per link either way.

        Solves are memoized by (capacity epoch, group-count signature
        trimmed to the last populated group).  A signature hit reuses the
        cached per-group rates — the outcome of a fresh recompute would be
        bit-identical because water-filling is a deterministic function of
        (group paths, group counts, capacities): group paths are immutable
        once interned, the epoch pins the capacities, and groups past the
        trim point are empty so they add no link load and shift no
        bottleneck (appended links/groups never reorder earlier indices,
        so argmin tie-breaks are stable too).
        """
        n = self._n
        if not n:
            return
        num_groups = self._num_groups
        gcount = self._group_count[:num_groups]
        # _gid_hi bounds the last populated group from above; trailing
        # zeros in the signature only cost the occasional duplicate cache
        # entry, never a false hit.
        width = self._gid_hi + 1
        key = (self._capacity_epoch, gcount[:width].tobytes())
        grates = self._solve_cache.get(key)
        if grates is None:
            grates = self._solve(num_groups, gcount)
            if (
                len(self._solve_cache) >= 4096
                or self._solve_cache_bytes >= _SOLVE_CACHE_BUDGET
            ):
                self._evict_solve_cache()
            self._solve_cache[key] = grates
            self._solve_cache_bytes += grates.nbytes
        # Every active flow's group lies inside the trimmed signature, so a
        # cached array from a smaller group table still covers all gids.
        rates = self._rates[:n]
        if self._dead_count:
            # Only live rows take the solved rate: a tombstoned row's rate
            # stays exactly 0 (what makes it invisible to _advance and the
            # completion timer), and its group may be empty — i.e. beyond
            # the cached array's trim width — so it must not index grates.
            live = self._live[:n]
            rates[live] = grates[self._gids[:n][live]]
        else:
            rates[:] = grates[self._gids[:n]]

    def _evict_solve_cache(self) -> None:
        """Drop every cached solve, recycling the arrays still large
        enough for the current group table into the grates pool."""
        pool = self._grates_pool
        num_groups = self._num_groups
        for cached in self._solve_cache.values():
            base = cached.base if cached.base is not None else cached
            if base.shape[0] >= num_groups and len(pool) < 256:
                pool.append(base)
        self._solve_cache.clear()
        self._solve_cache_bytes = 0

    def _solve(self, num_groups: int, gcount: np.ndarray) -> np.ndarray:
        """One full water-filling pass; returns per-group rates."""
        lib = _waterfill.kernel()
        if lib is not None:
            return self._solve_compiled(num_groups, gcount, lib)
        if self.coalesce:
            return self._solve_active(num_groups, gcount)
        return self._solve_dense(num_groups, gcount)

    def _solve_compiled(
        self, num_groups: int, gcount: np.ndarray, lib
    ) -> np.ndarray:
        """Water-filling via the compiled kernel (see ``_waterfill``).

        Runs the dense-solver semantics — full link space, cached CSR
        adjacency — but with the per-round work in native code, where a
        lazy-invalidation heap replaces the O(links) argmin scan.  The
        kernel performs the identical IEEE-754 operations in the
        identical order, so the rates are bitwise those of
        :meth:`_solve_dense` (and, by the coalescing invariant, of
        :meth:`_solve_active`).
        """
        num_links = self._num_links
        self._ensure_csr(num_groups)
        scratch = self._solve_scratch
        if scratch is None or not scratch.fits(num_links, num_groups):
            scratch = _waterfill.Scratch(num_links, num_groups)
            self._solve_scratch = scratch
        # The result lands in the memoization cache, so it needs its own
        # array — but recycling evicted buffers keeps their pages warm
        # (fresh multi-hundred-KB allocations fault in new pages on every
        # solve at fleet scale, which costs more than the solve itself).
        pool = self._grates_pool
        while pool and pool[-1].shape[0] < num_groups:
            pool.pop()  # group table outgrew this buffer
        if pool:
            grates = pool.pop()[:num_groups]
            grates[:] = 0.0
        else:
            grates = np.zeros(num_groups * 3 // 2 + 64)[:num_groups]
        _waterfill.run(
            lib, scratch, self._capacity[:num_links],
            self._load_counts[:num_links],
            self._group_paths[:num_groups], gcount,
            self._csr_groups, self._csr_starts, grates,
            int(gcount.sum()),
        )
        return grates

    def _solve_active(self, num_groups: int, gcount: np.ndarray) -> np.ndarray:
        """Water-filling restricted to links with at least one crossing
        flow.

        Bit-identical to :meth:`_solve_dense`: a link with zero load has an
        infinite share in every dense round, so it can never be the argmin
        bottleneck (ties on the share value break toward the lowest link
        index, and the compacted arrays keep ascending link order), it
        receives no residual/load updates that matter, and groups crossing
        only inactive links are never candidates in either solver.  The
        per-round cost drops from O(all links ever registered) to O(links
        with active flows) — at fleet scale most links are idle outside
        their phase (e.g. NVLink during the cross-machine pull wave).
        """
        num_links = self._num_links
        load_full = self._load_counts[:num_links]
        active = np.flatnonzero(load_full > 0)
        na = int(active.size)
        grates = np.zeros(num_groups)
        if na == 0:
            return grates
        gpaths = self._group_paths[:num_groups]
        # Remap the group->link adjacency into compact active-link space.
        pos = np.full(num_links, -1, dtype=np.int64)
        pos[active] = np.arange(na, dtype=np.int64)
        gvalid = gpaths >= 0
        mapped = pos[gpaths[gvalid]]
        flat_groups = np.broadcast_to(
            np.arange(num_groups, dtype=np.int64)[:, None],
            (num_groups, 2),
        )[gvalid]
        adjacent = mapped >= 0
        flat_links = mapped[adjacent]
        flat_groups = flat_groups[adjacent]
        order = np.argsort(flat_links, kind="stable")
        sorted_groups = flat_groups[order]
        starts = np.searchsorted(
            flat_links[order], np.arange(na + 1, dtype=np.int64)
        )
        # Per-group active-link paths (compact index space) and degree.
        cpaths = np.full((num_groups, 2), -1, dtype=np.int64)
        np.place(cpaths, gvalid, mapped)
        cvalid = cpaths >= 0
        rowsum = cvalid.sum(axis=1)

        residual = self._capacity[active].copy()
        load = load_full[active].astype(float)
        gcount_f = gcount.astype(float)
        gunfixed = np.ones(num_groups, dtype=bool)
        unfixed_flows = int(gcount.sum())
        shares = np.empty(na)
        while True:
            positive = load > 0
            np.divide(residual, load, out=shares, where=positive)
            shares[~positive] = np.inf
            bottleneck = int(shares.argmin())
            share = shares[bottleneck]
            if not np.isfinite(share):
                break
            share = max(share, 0.0)
            candidates = sorted_groups[
                starts[bottleneck]: starts[bottleneck + 1]
            ]
            selected = candidates[gunfixed[candidates]]
            if not selected.size:
                break
            grates[selected] = share
            touched = cpaths[selected][cvalid[selected]]
            counts = np.bincount(
                touched,
                weights=gcount_f[selected].repeat(rowsum[selected]),
                minlength=na,
            )
            residual -= share * counts
            load -= counts
            residual[bottleneck] = 0.0
            load[bottleneck] = 0.0
            gunfixed[selected] = False
            unfixed_flows -= int(gcount[selected].sum())
            if unfixed_flows <= 0:
                break
        return grates

    def _ensure_csr(self, num_groups: int) -> None:
        """Build the link -> crossing groups adjacency (CSR over sorted
        flat links); valid until the next link or group is interned."""
        num_links = self._num_links
        if self._csr_shape == (num_groups, num_links):
            return
        gpaths = self._group_paths[:num_groups]
        gvalid = gpaths >= 0
        flat_links = gpaths[gvalid]
        flat_groups = np.broadcast_to(
            np.arange(num_groups, dtype=np.int64)[:, None],
            (num_groups, 2),
        )[gvalid]
        order = np.argsort(flat_links, kind="stable")
        sorted_links = flat_links[order]
        self._csr_groups = flat_groups[order]
        self._csr_starts = np.searchsorted(
            sorted_links, np.arange(num_links + 1, dtype=np.int64)
        )
        self._csr_gvalid = gvalid
        self._csr_rowsum = gvalid.sum(axis=1)
        self._csr_shape = (num_groups, num_links)

    def _solve_dense(self, num_groups: int, gcount: np.ndarray) -> np.ndarray:
        """Water-filling over every registered link (uncoalesced
        reference)."""
        num_links = self._num_links
        gpaths = self._group_paths[:num_groups]
        self._ensure_csr(num_groups)
        sorted_groups = self._csr_groups
        starts = self._csr_starts
        gvalid = self._csr_gvalid
        rowsum = self._csr_rowsum

        residual = self._capacity[:num_links].copy()
        load = self._load_counts[:num_links].astype(float)
        gcount_f = gcount.astype(float)
        grates = np.zeros(num_groups)
        gunfixed = np.ones(num_groups, dtype=bool)
        unfixed_flows = int(gcount.sum())
        shares = np.empty(num_links)
        while True:
            positive = load > 0
            np.divide(residual, load, out=shares, where=positive)
            shares[~positive] = np.inf
            bottleneck = int(shares.argmin())
            share = shares[bottleneck]
            if not np.isfinite(share):
                break
            # Floating-point residue can push a residual slightly negative;
            # never hand out a negative rate.
            share = max(share, 0.0)
            candidates = sorted_groups[
                starts[bottleneck]: starts[bottleneck + 1]
            ]
            selected = candidates[gunfixed[candidates]]
            if not selected.size:
                break
            grates[selected] = share
            touched = gpaths[selected][gvalid[selected]]
            counts = np.bincount(
                touched,
                weights=gcount_f[selected].repeat(rowsum[selected]),
                minlength=num_links,
            )
            residual -= share * counts
            load -= counts
            residual[bottleneck] = 0.0
            load[bottleneck] = 0.0
            gunfixed[selected] = False
            unfixed_flows -= int(gcount[selected].sum())
            if unfixed_flows <= 0:
                break
        return grates

    def _reschedule(self) -> None:
        """Recompute rates and arm a timer for the next flow completion."""
        self._assign_rates()
        self._generation += 1
        n = self._n
        if not n:
            return
        rates = self._rates[:n]
        moving = rates > 0
        if not moving.any():
            return
        next_done = float(
            (self._remaining[:n][moving] / rates[moving]).min()
        )
        timer = self.env.timeout(max(next_done, 0.0), value=self._generation)
        timer.callbacks.append(self._on_timer_event)

    def _on_timer_event(self, event) -> None:
        self._on_timer(event._value)

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer reschedule
        self._advance()
        n = self._n
        remaining = self._remaining[:n]
        sizes = self._sizes[:n]
        finished_mask = remaining <= _EPSILON * sizes + _EPSILON
        if self._dead_count:
            # Tombstoned rows sit at ~0 remaining; only live rows finish.
            finished_mask &= self._live[:n]
        if not finished_mask.any():
            # The timer was armed for the minimum-ETA flow; if floating
            # point residue kept its remaining microscopically above the
            # threshold, finish it anyway rather than looping on
            # zero-length timers.  Guard: only genuine residue qualifies —
            # a stale timer looking at a flow with real bytes left (e.g.
            # its rate was rescaled by set_capacity mid-flight) must
            # recompute and re-arm instead of force-finishing.
            rates = self._rates[:n]
            moving = np.flatnonzero(rates > 0)
            if moving.size:
                etas = remaining[moving] / rates[moving]
                candidate = int(moving[int(etas.argmin())])
                # The relative band covers drift on large flows; the ETA
                # clause covers small ones, where ``remaining -= rate*dt``
                # cancellation leaves ~rate*ulp(now) bytes — more than any
                # relative tolerance of a few-hundred-byte flow, yet with
                # a completion time below the clock's float resolution
                # (``now + eta == now``).  A timer for such a flow can
                # never advance the clock, so finishing is the only
                # faithful move; anything with a representable ETA still
                # recomputes and re-arms.
                now = self.env.now
                eta = float(etas.min())
                if now + eta <= now:
                    # The whole sub-ulp cohort finishes together.  Retiring
                    # rows only frees capacity, so any flow whose ETA is
                    # already below the clock's resolution stays there as
                    # its peers retire — finishing them one timer round at
                    # a time would land every one at this same ``now``
                    # while paying a full solve per flow (the fleet-scale
                    # cascade pathology).
                    finished_mask[moving[now + etas <= now]] = True
                elif (
                    remaining[candidate]
                    <= _FORCE_FINISH_REL * sizes[candidate] + _EPSILON
                ):
                    finished_mask[candidate] = True
                else:
                    self._schedule_recompute()
                    return
        if finished_mask.any():
            for flow in self._remove_rows(finished_mask):
                self._finish(flow)
        self._schedule_recompute()

    def _finish(self, flow: Flow) -> None:
        flow._net = None
        flow._remaining = 0.0
        flow._rate = 0.0
        flow.completed_at = self.env.now
        self.total_bytes_completed += flow.size
        flow.done.succeed(flow)

    # -- introspection -------------------------------------------------------

    def link_utilization(self, link_id: Hashable, elapsed: float) -> float:
        """Average utilization of a link over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        index = self._index[link_id]
        return float(
            self._link_bytes[index] / (self._capacity[index] * elapsed)
        )


def _grow(array: np.ndarray, size: int, fill=0) -> np.ndarray:
    """Return ``array`` grown to ``size`` rows, new entries set to ``fill``.

    Works for both 1-D scalar arrays and 2-D row matrices (the trailing
    dimensions are preserved); only the leading dimension grows.
    """
    grown = np.full((size,) + array.shape[1:], fill, dtype=array.dtype)
    grown[: array.shape[0]] = array
    return grown
