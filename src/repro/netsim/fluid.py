"""Fluid (max-min fair share) network simulation.

Concurrent transfers are modelled as fluid flows: every active flow crossing
a link shares that link's capacity max-min fairly, and rates are recomputed
whenever a flow starts or finishes (progressive filling / water filling).
This is the standard flow-level abstraction used by network simulators and it
reproduces exactly the contention effects the paper's scheduling strategies
manipulate: egress serialization on NVSwitch ports (Fig. 7), sharing of the
PCIe-switch uplink (Fig. 8/9), and the NIC bottleneck for cross-machine
pulls.

Per-flow latency (the sum of link latencies on the path) is charged once, as
a startup delay before the flow begins moving bytes.

Implementation note: link ids are interned to integer indices at
registration and the water-filling solver runs on numpy arrays — the solver
is on the hot path (it reruns on every flow arrival/departure).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..simkit import Environment, Event

__all__ = ["Flow", "FluidNetwork"]

_EPSILON = 1e-12


class Flow:
    """One transfer in flight.

    Attributes:
        path: directed link ids the flow crosses (may be empty for a
            device-local copy).
        size: total bytes.
        remaining: bytes still to move.
        rate: current fair-share rate in bytes/second (0 until activated).
        done: event triggered with the flow when the last byte lands.
    """

    _ids = itertools.count()

    __slots__ = (
        "id", "path", "path_index", "size", "remaining", "latency",
        "rate", "tag", "created_at", "started_at", "completed_at", "done",
    )

    def __init__(
        self,
        env: Environment,
        path: Tuple[Hashable, ...],
        path_index: Tuple[int, ...],
        size: float,
        latency: float,
        tag: Optional[Hashable] = None,
    ):
        self.id = next(Flow._ids)
        self.path = path
        self.path_index = path_index
        self.size = float(size)
        self.remaining = float(size)
        self.latency = latency
        self.rate = 0.0
        self.tag = tag
        self.created_at = env.now
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.done: Event = env.event()

    @property
    def duration(self) -> Optional[float]:
        """Wall time from creation to completion (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    def __repr__(self) -> str:
        return (
            f"<Flow {self.id} size={self.size:.0f}B "
            f"remaining={self.remaining:.0f}B rate={self.rate:.3g}B/s>"
        )


class _LinkBytesView:
    """Read-only mapping from link id to total bytes moved over it."""

    def __init__(self, network: "FluidNetwork"):
        self._network = network

    def __getitem__(self, link_id: Hashable) -> float:
        index = self._network._index[link_id]
        return float(self._network._link_bytes[index])

    def __contains__(self, link_id: Hashable) -> bool:
        return link_id in self._network._index

    def items(self):
        for link_id, index in self._network._index.items():
            yield link_id, float(self._network._link_bytes[index])


class FluidNetwork:
    """Max-min fair bandwidth sharing over a set of directed links."""

    def __init__(self, env: Environment):
        self.env = env
        self._index: Dict[Hashable, int] = {}
        self._capacity_list: List[float] = []
        self._capacity: np.ndarray = np.zeros(0)
        self._bytes_list: List[float] = []
        self._link_bytes: np.ndarray = np.zeros(0)
        self._active: List[Flow] = []
        self._last_update = env.now
        self._generation = 0
        self._recompute_pending = False
        self.total_bytes_completed = 0.0

    # -- topology -----------------------------------------------------------

    def add_link(self, link_id: Hashable, bandwidth: float) -> None:
        """Register a directed link with ``bandwidth`` bytes/second."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if link_id in self._index:
            raise ValueError(f"duplicate link id: {link_id!r}")
        self._index[link_id] = len(self._capacity_list)
        self._capacity_list.append(float(bandwidth))
        self._capacity = np.asarray(self._capacity_list)
        self._link_bytes = np.zeros(len(self._capacity_list))
        self._link_bytes[: len(self._bytes_list)] = self._bytes_list
        self._bytes_list = list(self._link_bytes)

    def capacity(self, link_id: Hashable) -> float:
        return self._capacity_list[self._index[link_id]]

    def links(self) -> List[Hashable]:
        """All registered link ids, in registration order."""
        return list(self._index)

    def set_capacity(self, link_id: Hashable, bandwidth: float) -> None:
        """Rescale a link's bandwidth mid-flight (fault injection).

        Bytes already moved are accounted at the old rates before the
        change; active flows crossing the link are re-waterfilled at the
        new capacity from the current instant.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        index = self._index[link_id]
        self._advance()
        self._capacity_list[index] = float(bandwidth)
        self._capacity = np.asarray(self._capacity_list)
        self._schedule_recompute()

    @property
    def link_bytes(self) -> _LinkBytesView:
        return _LinkBytesView(self)

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._active)

    # -- transfers ----------------------------------------------------------

    def transfer(
        self,
        path: Iterable[Hashable],
        size: float,
        latency: float = 0.0,
        tag: Optional[Hashable] = None,
    ) -> Flow:
        """Start a transfer of ``size`` bytes over ``path``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-size transfers and empty paths complete after ``latency`` only.
        """
        path = tuple(path)
        try:
            path_index = tuple(self._index[link_id] for link_id in path)
        except KeyError as exc:
            raise KeyError(f"unknown link id: {exc.args[0]!r}") from None
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        flow = Flow(self.env, path, path_index, size, latency, tag=tag)
        if latency > 0:
            self.env.process(self._activate_after(flow, latency))
        else:
            self._activate(flow)
        return flow

    def _activate_after(self, flow: Flow, delay: float):
        yield self.env.timeout(delay)
        self._activate(flow)

    def _activate(self, flow: Flow) -> None:
        flow.started_at = self.env.now
        if flow.size <= 0 or not flow.path:
            # Local copy or pure-latency message: completes instantly once
            # the latency delay has elapsed.
            self._finish(flow)
            return
        self._advance()
        self._active.append(flow)
        self._schedule_recompute()

    def _schedule_recompute(self) -> None:
        """Coalesce rate recomputation: many flows starting or finishing at
        the same instant (e.g. the prefetch burst at iteration start) cause
        one water-filling pass, not one per flow."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        timer = self.env.timeout(0.0)
        timer.callbacks.append(self._do_recompute)

    def _do_recompute(self, _event) -> None:
        self._recompute_pending = False
        self._advance()
        self._reschedule()

    # -- fluid mechanics ----------------------------------------------------

    def _advance(self) -> None:
        """Move bytes for all active flows since the last update."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            link_bytes = self._link_bytes
            for flow in self._active:
                moved = flow.rate * dt
                if moved > 0:
                    flow.remaining = max(0.0, flow.remaining - moved)
                    for index in flow.path_index:
                        link_bytes[index] += moved
        self._last_update = now

    def _assign_rates(self) -> None:
        """Water-filling max-min fair allocation (vectorized).

        Every route in the fabric is at most two links, so flow paths are
        packed into a padded (F, 2) index array and each filling round runs
        as a handful of numpy operations.
        """
        flows = self._active
        if not flows:
            return
        num_flows = len(flows)
        num_links = len(self._capacity)
        paths = np.full((num_flows, 2), -1, dtype=np.int64)
        for row, flow in enumerate(flows):
            index = flow.path_index
            paths[row, : len(index)] = index
        valid = paths >= 0
        flat_links = paths[valid].ravel()

        residual = self._capacity.copy()
        load = np.bincount(flat_links, minlength=num_links).astype(float)
        rates = np.zeros(num_flows)
        unfixed = np.ones(num_flows, dtype=bool)
        shares = np.empty(num_links)
        while True:
            positive = load > 0
            np.divide(residual, load, out=shares, where=positive)
            shares[~positive] = np.inf
            bottleneck = int(shares.argmin())
            share = shares[bottleneck]
            if not np.isfinite(share):
                break
            # Floating-point residue can push a residual slightly negative;
            # never hand out a negative rate.
            share = max(share, 0.0)
            selected = unfixed & (paths == bottleneck).any(axis=1)
            if not selected.any():
                break
            rates[selected] = share
            touched = paths[selected][valid[selected]].ravel()
            counts = np.bincount(touched, minlength=num_links)
            residual -= share * counts
            load -= counts
            residual[bottleneck] = 0.0
            load[bottleneck] = 0.0
            unfixed &= ~selected
            if not unfixed.any():
                break
        for flow, rate in zip(flows, rates):
            flow.rate = float(rate)

    def _reschedule(self) -> None:
        """Recompute rates and arm a timer for the next flow completion."""
        self._assign_rates()
        self._generation += 1
        generation = self._generation
        next_done = None
        for flow in self._active:
            if flow.rate <= 0:
                continue
            eta = flow.remaining / flow.rate
            if next_done is None or eta < next_done:
                next_done = eta
        if next_done is None:
            return
        timer = self.env.timeout(max(next_done, 0.0))
        timer.callbacks.append(lambda _evt: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer reschedule
        self._advance()
        finished = [
            flow
            for flow in self._active
            if flow.remaining <= _EPSILON * flow.size + _EPSILON
        ]
        if not finished:
            # The timer was armed for the minimum-ETA flow; if floating
            # point residue kept its remaining microscopically above the
            # threshold, finish it anyway rather than looping on
            # zero-length timers.
            moving = [flow for flow in self._active if flow.rate > 0]
            if moving:
                finished = [min(moving, key=lambda f: f.remaining / f.rate)]
        for flow in finished:
            self._active.remove(flow)
        for flow in finished:
            self._finish(flow)
        self._schedule_recompute()

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.completed_at = self.env.now
        self.total_bytes_completed += flow.size
        flow.done.succeed(flow)

    # -- introspection -------------------------------------------------------

    def link_utilization(self, link_id: Hashable, elapsed: float) -> float:
        """Average utilization of a link over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        index = self._index[link_id]
        return float(
            self._link_bytes[index] / (self._capacity_list[index] * elapsed)
        )
