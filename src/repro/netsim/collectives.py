"""Collective communication on the simulated fabric.

The only collective MoE expert parallelism needs is All-to-All (token
dispatch and combine).  It is *synchronous*: the operation completes when the
busiest participant has sent and received everything (§3.1 of the paper) —
modelled here by waiting on every constituent flow.

Flows are decomposed hierarchically to keep the fluid solver fast while
preserving where contention happens:

* intra-machine traffic: one flow per (src GPU, dst GPU) pair over NVLink;
* inter-machine traffic: per (src machine, dst machine) pair, the GPU-pair
  bytes are aggregated and split across the machine's NICs (NCCL/Tutel
  similarly aggregate cross-node All-to-All traffic per NIC channel).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..cluster import Device
from ..simkit import AllOf, Event
from .fabric import Fabric

__all__ = ["all_reduce", "all_to_all", "all_to_all_proc", "uniform_matrix"]


def uniform_matrix(world_size: int, bytes_per_pair: float) -> np.ndarray:
    """Send matrix where every rank sends the same amount to every other."""
    matrix = np.full((world_size, world_size), float(bytes_per_pair))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def all_to_all(
    fabric: Fabric,
    send_bytes: Sequence[Sequence[float]],
    hierarchical: bool = True,
) -> Event:
    """Start an All-to-All; returns an event triggered when it completes.

    ``send_bytes[i][j]`` is the payload GPU of global rank ``i`` sends to
    global rank ``j``.  The matrix must be ``world_size`` square.

    ``hierarchical=True`` (default) models the optimized cross-node path
    used by Tutel/NCCL channels: per machine pair, the GPU payloads are
    aggregated and striped evenly over the machine's NICs.
    ``hierarchical=False`` is the naive flat decomposition: every GPU pair
    is its own cross-node flow pinned to the *source GPU's* NIC, so NIC
    load follows the (generally uneven) per-GPU send pattern and small
    per-pair messages pay per-flow latency — the behaviour hierarchical
    All-to-All papers (Tutel, SE-MoE) optimize away.
    """
    cluster = fabric.cluster
    matrix = np.asarray(send_bytes, dtype=float)
    world = cluster.world_size
    if matrix.shape != (world, world):
        raise ValueError(
            f"send matrix must be {world}x{world}, got {matrix.shape}"
        )
    if (matrix < 0).any():
        raise ValueError("send matrix entries must be non-negative")

    done_events: List[Event] = []

    # Intra-machine flows: GPU pair granularity over NVLink.
    for machine in range(cluster.num_machines):
        base = machine * cluster.gpus_per_machine
        for src_local in range(cluster.gpus_per_machine):
            for dst_local in range(cluster.gpus_per_machine):
                if src_local == dst_local:
                    continue
                size = matrix[base + src_local, base + dst_local]
                if size <= 0:
                    continue
                flow = fabric.transfer(
                    Device.gpu(machine, src_local),
                    Device.gpu(machine, dst_local),
                    size,
                    tag=("a2a-intra", machine, src_local, dst_local),
                )
                done_events.append(flow.done)

    if hierarchical:
        # Inter-machine flows: aggregate per machine pair, stripe over NICs.
        num_nics = cluster.spec.num_nics
        for src_machine in range(cluster.num_machines):
            for dst_machine in range(cluster.num_machines):
                if src_machine == dst_machine:
                    continue
                src_base = src_machine * cluster.gpus_per_machine
                dst_base = dst_machine * cluster.gpus_per_machine
                total = matrix[
                    src_base : src_base + cluster.gpus_per_machine,
                    dst_base : dst_base + cluster.gpus_per_machine,
                ].sum()
                if total <= 0:
                    continue
                per_nic = total / num_nics
                for nic in range(num_nics):
                    path, latency, path_index = fabric.nic_route(
                        src_machine, dst_machine, nic
                    )
                    flow = fabric.network.transfer(
                        path,
                        per_nic,
                        latency=latency,
                        tag=("a2a-inter", src_machine, dst_machine, nic),
                        path_index=path_index,
                    )
                    done_events.append(flow.done)
    else:
        # Naive flat decomposition: one flow per cross-machine GPU pair,
        # each pinned to the NIC of its source GPU.
        for src_rank in range(world):
            src = cluster.gpu_device(src_rank)
            for dst_rank in range(world):
                dst = cluster.gpu_device(dst_rank)
                if src.machine == dst.machine:
                    continue
                size = matrix[src_rank, dst_rank]
                if size <= 0:
                    continue
                flow = fabric.transfer(
                    src, dst, size,
                    tag=("a2a-flat", src_rank, dst_rank),
                )
                done_events.append(flow.done)

    return AllOf(fabric.env, done_events)


def all_reduce(
    fabric: Fabric,
    bytes_per_rank: float,
    hierarchical: bool = True,
) -> Event:
    """Start a ring all-reduce of ``bytes_per_rank`` per participant.

    Models the dense-gradient all-reduce of data parallelism with the
    standard ring cost: each rank exchanges ``2*(N-1)/N`` of its payload
    with its ring neighbours (reduce-scatter + all-gather).

    ``hierarchical=True`` (default) is the NCCL-style two-level ring:
    a local NVLink ring inside every machine (``2*(g-1)/g`` of the payload
    per adjacent GPU pair) plus one inter-machine ring over the NICs
    (``2*(n-1)/n`` of the payload, striped evenly across the NICs the way
    the hierarchical All-to-All stripes).  ``hierarchical=False`` runs one
    flat ring over the global rank order, so cross-machine hops carry the
    full ``2*(W-1)/W`` payload on a single NIC each.
    """
    if bytes_per_rank < 0:
        raise ValueError("bytes_per_rank must be non-negative")
    cluster = fabric.cluster
    world = cluster.world_size
    done_events: List[Event] = []
    if bytes_per_rank == 0 or world <= 1:
        return AllOf(fabric.env, done_events)

    if hierarchical:
        g = cluster.gpus_per_machine
        if g > 1:
            local_bytes = 2.0 * (g - 1) / g * bytes_per_rank
            for machine in range(cluster.num_machines):
                for src_local in range(g):
                    flow = fabric.transfer(
                        Device.gpu(machine, src_local),
                        Device.gpu(machine, (src_local + 1) % g),
                        local_bytes,
                        tag=("ar-intra", machine, src_local),
                    )
                    done_events.append(flow.done)
        n = cluster.num_machines
        if n > 1:
            inter_bytes = 2.0 * (n - 1) / n * bytes_per_rank
            num_nics = cluster.spec.num_nics
            per_nic = inter_bytes / num_nics
            for machine in range(n):
                dst_machine = (machine + 1) % n
                for nic in range(num_nics):
                    path, latency, path_index = fabric.nic_route(
                        machine, dst_machine, nic
                    )
                    flow = fabric.network.transfer(
                        path,
                        per_nic,
                        latency=latency,
                        tag=("ar-inter", machine, dst_machine, nic),
                        path_index=path_index,
                    )
                    done_events.append(flow.done)
    else:
        ring_bytes = 2.0 * (world - 1) / world * bytes_per_rank
        for rank in range(world):
            flow = fabric.transfer(
                cluster.gpu_device(rank),
                cluster.gpu_device((rank + 1) % world),
                ring_bytes,
                tag=("ar-flat", rank),
            )
            done_events.append(flow.done)

    return AllOf(fabric.env, done_events)


def all_to_all_proc(fabric: Fabric, send_bytes: Sequence[Sequence[float]]):
    """Process form: ``yield env.process(all_to_all_proc(...))``."""
    start = fabric.env.now
    yield all_to_all(fabric, send_bytes)
    return fabric.env.now - start
