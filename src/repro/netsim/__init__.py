"""Flow-level network simulation over the cluster topology."""

from .collectives import all_reduce, all_to_all, all_to_all_proc, uniform_matrix
from .fabric import Fabric
from .fluid import Flow, FluidNetwork
from .goodput import GoodputResult, measure_all_to_all_goodput
from .memory import MemoryTracker, OutOfMemoryError

__all__ = [
    "Fabric",
    "Flow",
    "FluidNetwork",
    "GoodputResult",
    "MemoryTracker",
    "OutOfMemoryError",
    "all_reduce",
    "all_to_all",
    "all_to_all_proc",
    "measure_all_to_all_goodput",
    "uniform_matrix",
]
