"""Device memory accounting.

Used by the timed engines to reproduce the paper's out-of-memory behaviour
(Fig. 16: Tutel OOMs training MoE-BERT at S=512 because the All-to-All
receive buffers for the exchanged tokens exceed GPU memory, while Janus only
ever materializes one expert at a time plus its token activations).
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = ["OutOfMemoryError", "MemoryTracker"]


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the tracked device capacity."""

    def __init__(self, requested: float, available: float, capacity: float):
        super().__init__(
            f"out of memory: requested {requested / 1e9:.2f} GB with only "
            f"{available / 1e9:.2f} GB free of {capacity / 1e9:.2f} GB"
        )
        self.requested = requested
        self.available = available
        self.capacity = capacity


class MemoryTracker:
    """Tracks named allocations against a fixed capacity (bytes)."""

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self._allocations: Dict[Hashable, float] = {}
        self.peak = 0.0

    @property
    def used(self) -> float:
        return sum(self._allocations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.used

    def allocate(self, name: Hashable, size: float) -> None:
        """Reserve ``size`` bytes under ``name``; raises on exhaustion."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if size > self.available:
            raise OutOfMemoryError(size, self.available, self.capacity)
        self._allocations[name] = float(size)
        self.peak = max(self.peak, self.used)

    def free(self, name: Hashable) -> float:
        """Release the allocation and return its size."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        return self._allocations.pop(name)

    def holds(self, name: Hashable) -> bool:
        return name in self._allocations

    def would_fit(self, size: float) -> bool:
        return size <= self.available

    def reset(self) -> None:
        self._allocations.clear()
