"""Binds a static :class:`~repro.cluster.Cluster` to live simulation state.

A :class:`Fabric` owns:

* one :class:`~repro.netsim.fluid.FluidNetwork` with a bandwidth server per
  directed link of the cluster, and
* one serial compute stream per GPU (kernels on a stream execute in order;
  DMA/copy engines are separate, which is what allows computation and
  communication to overlap — the fact Janus's fine-grained scheduling
  exploits).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..cluster import Cluster, Device, LinkId
from ..simkit import Environment, Resource
from .fluid import Flow, FluidNetwork

__all__ = ["Fabric"]


class Fabric:
    """Live simulation resources for one cluster."""

    def __init__(self, env: Environment, cluster: Cluster):
        self.env = env
        self.cluster = cluster
        self.network = FluidNetwork(env)
        self._latency: Dict[LinkId, float] = {}
        for link_id, bandwidth, latency in cluster.iter_links():
            self.network.add_link(link_id, bandwidth)
            self._latency[link_id] = latency
        self.compute_streams: Dict[Device, Resource] = {
            gpu: Resource(env, capacity=1) for gpu in cluster.gpus()
        }
        # Set by FaultInjector.install(); None on the (default) happy path.
        self.fault_injector = None
        # Routes are a pure function of the immutable topology, and link
        # indices are assigned in ``cluster.iter_links()`` order — i.e.
        # identically in every Fabric built from the same cluster.  The
        # memo of (src, dst, nic_index) -> (path tuple, summed latency,
        # packed link-index tuple) therefore lives on the *cluster*, so
        # fresh fabrics (one per simulated iteration) skip the LinkId
        # construction, the latency sum and the fluid path interning for
        # every route the fleet has already used: at 128 machines that
        # is ~70k routes per iteration.
        memo = getattr(cluster, "_fabric_route_memo", None)
        if memo is None:
            memo = ({}, {})
            cluster._fabric_route_memo = memo
        self._route_cache: Dict[tuple, tuple] = memo[0]
        # (src machine, dst machine, nic) -> same triple, for collectives
        # that stripe machine-pair traffic over the NICs directly.
        self._nic_route_cache: Dict[tuple, tuple] = memo[1]

    # -- communication -------------------------------------------------------

    def path_latency(self, path: Iterable[LinkId]) -> float:
        return sum(self._latency[link_id] for link_id in path)

    def nic_route(self, src_machine: int, dst_machine: int, nic: int):
        """Cached ``(path, latency, path_index)`` for one NIC-to-NIC hop.

        The hot loops of the collectives issue one flow per (machine
        pair, NIC); resolving the pair of :class:`LinkId` objects, the
        latency sum and the fluid-network path interning once per route
        keeps that staging O(1) dictionary-free per flow.
        """
        key = (src_machine, dst_machine, nic)
        cached = self._nic_route_cache.get(key)
        if cached is None:
            path, path_index = self.network.resolve_path((
                LinkId("nic", src_machine, nic, "out"),
                LinkId("nic", dst_machine, nic, "in"),
            ))
            cached = (path, self.path_latency(path), path_index)
            self._nic_route_cache[key] = cached
        return cached

    def transfer(
        self,
        src: Device,
        dst: Device,
        size: float,
        nic_index: Optional[int] = None,
        tag=None,
    ) -> Flow:
        """Start a point-to-point transfer; wait on ``.done``."""
        if self.fault_injector is not None:
            dropped = self.fault_injector.intercept(src, dst, size, tag)
            if dropped is not None:
                return dropped
        key = (src, dst, nic_index)
        cached = self._route_cache.get(key)
        if cached is None:
            path, path_index = self.network.resolve_path(
                self.cluster.route(src, dst, nic_index=nic_index)
            )
            cached = (path, self.path_latency(path), path_index)
            self._route_cache[key] = cached
        path, latency, path_index = cached
        return self.network.transfer(
            path, size, latency=latency, tag=tag, path_index=path_index
        )

    def transfer_proc(self, src: Device, dst: Device, size: float, **kwargs):
        """Process form of :meth:`transfer` (``yield env.process(...)``)."""
        flow = self.transfer(src, dst, size, **kwargs)
        yield flow.done
        return flow

    # -- computation ----------------------------------------------------------

    def compute(self, gpu: Device, seconds: float):
        """Occupy ``gpu``'s compute stream for ``seconds`` (a process)."""
        if gpu.kind != "gpu":
            raise ValueError(f"compute target must be a GPU, got {gpu}")
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        stream = self.compute_streams[gpu]
        with stream.request() as slot:
            yield slot
            if self.fault_injector is not None:
                seconds = self.fault_injector.compute_duration(
                    gpu.machine, seconds, self.env.now
                )
            yield self.env.timeout(seconds)

    def flops_time(self, flops: float) -> float:
        """Seconds a GPU needs for ``flops`` floating point operations."""
        return flops / self.cluster.spec.gpu.flops

    # -- accounting -----------------------------------------------------------

    def nic_bytes(self, machine: int, direction: str = "out") -> float:
        """Total bytes through all of a machine's NICs in one direction."""
        total = 0.0
        for nic in range(self.cluster.spec.num_nics):
            link_id = LinkId("nic", machine, nic, direction)
            total += self.network.link_bytes[link_id]
        return total

    def total_cross_machine_bytes(self) -> float:
        """Sum of NIC egress bytes across all machines."""
        return sum(
            self.nic_bytes(machine, "out")
            for machine in range(self.cluster.num_machines)
        )
