"""Parameter sweeps over the gain ratio R (Eq. 1).

The paper's Discussion (§9) argues about where data-centric wins as batch
size, sequence length and model size move; these helpers compute R over a
grid and render it as an ASCII heatmap so a user can see the paradigm
boundary for their own configuration at a glance.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.paradigm import gain_ratio

__all__ = ["r_grid", "render_r_heatmap"]


def r_grid(
    batch_sizes: Sequence[int],
    seq_lens: Sequence[int],
    top_k: int,
    num_machines: int,
    hidden_dim: int,
    experts_per_worker: int,
) -> np.ndarray:
    """R over a (batch, seq) grid; shape (len(batch_sizes), len(seq_lens))."""
    grid = np.zeros((len(batch_sizes), len(seq_lens)))
    for row, batch in enumerate(batch_sizes):
        for col, seq in enumerate(seq_lens):
            grid[row, col] = gain_ratio(
                batch, seq, top_k, num_machines, hidden_dim,
                experts_per_worker,
            )
    return grid


_GLYPHS = " .:-=+*#%@"


def render_r_heatmap(
    grid: np.ndarray,
    batch_sizes: Sequence[int],
    seq_lens: Sequence[int],
    threshold: float = 1.0,
) -> str:
    """ASCII heatmap of log10(R); cells at or below ``threshold`` show
    ``e`` (expert-centric wins), others a density glyph."""
    if grid.shape != (len(batch_sizes), len(seq_lens)):
        raise ValueError("grid shape must match the axis lengths")
    log_grid = np.log10(np.maximum(grid, 1e-12))
    top = max(log_grid.max(), 1.0)
    lines: List[str] = []
    header = "B \\ S " + " ".join(f"{seq:>6d}" for seq in seq_lens)
    lines.append(header)
    for row, batch in enumerate(batch_sizes):
        cells = []
        for col in range(len(seq_lens)):
            if grid[row, col] <= threshold:
                cells.append("     e")
            else:
                level = log_grid[row, col] / top
                glyph = _GLYPHS[
                    min(len(_GLYPHS) - 1, max(1, int(level * len(_GLYPHS))))
                ]
                cells.append(f"{grid[row, col]:5.1f}{glyph}")
        lines.append(f"{batch:>5d} " + " ".join(cells))
    lines.append(
        f"('e' = expert-centric region, R <= {threshold}; "
        "numbers = R where data-centric wins)"
    )
    return "\n".join(lines)
