"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_speedup_bars"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[col]) for row in cells)) if cells else len(header)
        for col, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_speedup_bars(
    labels: Sequence[str],
    speedups: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """Render speedups as ASCII bars (for figure-style benchmark output)."""
    if len(labels) != len(speedups):
        raise ValueError("labels and speedups must align")
    peak = max(speedups) if speedups else 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in labels), default=0)
    for label, speedup in zip(labels, speedups):
        bar = "#" * max(1, int(round(width * speedup / peak)))
        lines.append(f"{label.ljust(label_width)}  {speedup:5.2f}x  {bar}")
    return "\n".join(lines)
