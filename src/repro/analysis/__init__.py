"""Analysis and reporting: traffic tables, speedups, text reports."""

from .report import format_speedup_bars, format_table
from .sweep import r_grid, render_r_heatmap
from .traffic import TrafficRow, model_size_billion, table1, table1_row

__all__ = [
    "TrafficRow",
    "format_speedup_bars",
    "format_table",
    "model_size_billion",
    "r_grid",
    "render_r_heatmap",
    "table1",
    "table1_row",
]
