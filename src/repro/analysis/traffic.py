"""Traffic analysis: regenerates the paper's Table 1 numbers.

Combines the closed-form §5.1.3 volumes with live measurements from either
the functional runtime's CommLog or the timed engine's NIC counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import ModelConfig
from ..core.paradigm import comm_data_centric, comm_expert_centric

__all__ = ["TrafficRow", "table1_row", "table1", "model_size_billion"]

GIB = 1024.0**3


def model_size_billion(config: ModelConfig, world_size: int) -> float:
    """Total parameter count in billions (Table 1's "Model size (B)").

    Dense replica + all experts of every MoE block.
    """
    hidden = config.hidden_dim
    dense_per_block = (
        4 * hidden * hidden + 2 * hidden * config.ffn_mult * hidden + 4 * hidden
    )
    embeddings = (config.vocab_size + config.seq_len) * hidden
    head = config.vocab_size * hidden
    dense = dense_per_block * config.num_blocks + embeddings + head
    experts = sum(
        config.num_experts(index) * config.expert_param_count
        for index in config.moe_block_indices
    )
    return (dense + experts) / 1e9


@dataclass(frozen=True)
class TrafficRow:
    """One column of Table 1 (a model at a given expert count)."""

    model: str
    batch_size: int
    seq_len: int
    top_k: int
    hidden_dim: int
    num_moe_blocks: int
    num_experts: int
    num_gpus: int
    model_size_b: float
    expert_centric_gib: float
    data_centric_gib: float

    @property
    def reduction(self) -> float:
        return self.expert_centric_gib / self.data_centric_gib


def table1_row(
    config: ModelConfig,
    num_machines: int,
    workers_per_machine: int = 8,
) -> TrafficRow:
    """Per-machine forward-phase cross-node traffic (GiB), as in Table 1."""
    world = num_machines * workers_per_machine
    ec_total = 0.0
    dc_total = 0.0
    for index in config.moe_block_indices:
        ec_total += comm_expert_centric(
            config.hidden_dim,
            config.tokens_per_worker,
            workers_per_machine,
            num_machines,
            config.dtype_bytes,
        )
        dc_total += comm_data_centric(
            config.hidden_dim,
            config.experts_per_worker(index, world),
            workers_per_machine,
            num_machines,
            config.dtype_bytes,
        )
    return TrafficRow(
        model=config.name,
        batch_size=config.batch_size,
        seq_len=config.seq_len,
        top_k=config.top_k,
        hidden_dim=config.hidden_dim,
        num_moe_blocks=config.num_moe_blocks,
        num_experts=config.num_experts(config.moe_block_indices[0]),
        num_gpus=world,
        model_size_b=model_size_billion(config, world),
        expert_centric_gib=ec_total / GIB,
        data_centric_gib=dc_total / GIB,
    )


def table1(model_factories: Dict[str, object]) -> List[TrafficRow]:
    """Both Table 1 columns (16 experts / 2 machines, 32 experts / 4)."""
    rows: List[TrafficRow] = []
    for factory in model_factories.values():
        for experts, machines in ((16, 2), (32, 4)):
            rows.append(table1_row(factory(experts), machines))
    return rows
