"""Discrete-event simulation kernel.

A small, dependency-free process-based discrete-event engine in the style of
SimPy.  Processes are Python generators that ``yield`` events; the
:class:`Environment` advances simulated time and resumes processes when the
events they wait on are triggered.

The kernel is deterministic: events scheduled at the same simulated time are
processed in insertion order (a monotonically increasing sequence number
breaks ties in the event heap).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StalledSimulationError",
]


class SimulationError(Exception):
    """Raised for malformed use of the simulation kernel."""


class StalledSimulationError(SimulationError):
    """The event queue drained while processes were still blocked.

    A stall is almost always a lost wakeup: a process is waiting on an event
    nobody will ever trigger (the canonical example is a
    ``PullTransport.pull`` to a device that was never ``serve()``d).  The
    exception names the blocked processes so the deadlock is diagnosable
    instead of silently returning control to the caller.
    """

    def __init__(self, processes, reason: str = "event queue exhausted"):
        self.processes = list(processes)
        names = ", ".join(p.name for p in self.processes) or "<none>"
        super().__init__(
            f"simulation stalled: {reason} with "
            f"{len(self.processes)} blocked process(es): {names}"
        )


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """An event that may be triggered once with a value or an exception.

    Processes wait on events by yielding them.  Callbacks registered through
    :attr:`callbacks` run when the event is processed by the environment.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value is not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Event.__init__ inlined: timeouts are the hottest event kind.
        self.env = env
        self.callbacks = []
        self._value = value
        self._exception = None
        self._defused = False
        self.delay = delay
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a process at the current time."""

    __slots__ = ()

    def __init__(
        self, env: "Environment", process: "Process", priority: int = 1
    ):
        super().__init__(env)
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, priority=priority)


class Process(Event):
    """Wraps a generator; the process itself is an event that triggers when
    the generator returns (with its return value) or raises."""

    __slots__ = ("_generator", "_target", "name", "daemon")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
        daemon: bool = False,
        priority: int = 1,
    ):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Daemon processes (e.g. server listen loops) are expected to stay
        # blocked forever and are exempt from stall detection.
        self.daemon = daemon
        env.processes_started += 1
        env._alive.add(self)
        # ``priority`` orders the process's first dispatch among same-time
        # events: priority > 1 starts only after all normal-priority work
        # scheduled for the current instant (background lanes, e.g. the
        # overlapped gradient all-reduce of the task-graph scheduler).
        Initialize(env, self, priority=priority)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._value = None
        event._exception = Interrupt(cause)
        event._defused = True
        # Detach from the old target so its trigger no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event.callbacks = [self._resume]
        self.env._schedule(event, priority=0)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._exception is not None:
                    event._defused = True
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(event._value)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                self.env._alive.discard(self)
                self.succeed(getattr(stop, "value", None))
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self.env._alive.discard(self)
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.env._active_process = None
                raise SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
            if target.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = target
                continue
            self._target = target
            target.callbacks.append(self._resume)
            break
        self.env._active_process = None


class Condition(Event):
    """Waits on a set of events until ``evaluate`` says the condition holds.

    The value of a condition is a dict mapping each triggered constituent
    event to its value, in trigger order.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        # Only events that actually fired (callbacks processed) belong in
        # the condition's value: a Timeout carries its value from creation
        # but has not "happened" until the clock reaches it.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._exception is None
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
        elif self._evaluate(len(self._events), self._count):
            self.succeed(self._collect_values())


def _all_done(total: int, done: int) -> bool:
    return done == total


def _any_done(total: int, done: int) -> bool:
    return done >= 1


class AllOf(Condition):
    """Triggered when all constituent events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _all_done, events)


class AnyOf(Condition):
    """Triggered when any constituent event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _any_done, events)


class Environment:
    """Coordinates event scheduling and process execution."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # Calendar-bucket front-end on the heap: the heap holds one
        # ``(time, priority)`` key per distinct scheduling instant, and the
        # events themselves sit in per-key FIFO buckets.  Dense-timer
        # regimes (hundreds of compute kernels finishing at the same
        # simulated instant at fleet scale) then cost one heap push for the
        # whole cohort instead of one per event, and draining a cohort is a
        # bucket walk, not repeated heap pops.  Bucket FIFO order is eid
        # order (eids are handed out monotonically at schedule time), so
        # the merged pop order is exactly the (time, priority, eid) order
        # of a single flat heap.
        self._queue: List = []
        self._buckets: dict = {}
        # Zero-delay, normal-priority schedules (the vast majority: every
        # succeed()/fail() and delay-0 timeout) bypass the heap.  Invariant:
        # every entry was enqueued at the current ``_now``, so the deque is
        # already in (time, priority, eid) order and ``_now`` cannot advance
        # while it is non-empty.
        self._immediate: deque = deque()
        # Callbacks to run when the current instant's cohort has fully
        # drained (no event due at ``_now`` remains), just before the clock
        # would advance.  This is how the fluid network recomputes rates
        # once per same-timestamp cohort instead of once per event.
        self._instant_hooks: List[Callable[[], None]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._alive: set = set()
        # Kernel accounting (harvested by repro.metrics; never read by the
        # simulation itself).
        self.events_processed = 0
        self.processes_started = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator,
        name: Optional[str] = None,
        daemon: bool = False,
        priority: int = 1,
    ) -> Process:
        return Process(
            self, generator, name=name, daemon=daemon, priority=priority
        )

    def blocked_processes(self) -> List[Process]:
        """Non-daemon processes that are alive (started, not finished)."""
        return [p for p in self._alive if not p.daemon]

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._eid += 1
        if delay == 0.0 and priority == 1:
            self._immediate.append((self._eid, event))
        else:
            key = (self._now + delay, priority)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = bucket = deque()
                heapq.heappush(self._queue, key)
            bucket.append((self._eid, event))

    def defer_to_instant_end(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the current instant's cohort has drained.

        The callback fires after every event due at the current simulated
        time has been processed, immediately before the clock would advance
        (or the queue exhausts).  Callbacks may schedule new events — at
        the current instant or later — in which case those are processed
        (and the hooks re-flushed) before time moves.
        """
        self._instant_hooks.append(callback)

    def _instant_drained(self) -> bool:
        """No event due at the current instant remains."""
        if self._immediate:
            return False
        queue = self._queue
        return not queue or queue[0][0] > self._now

    def _flush_instant_hooks(self) -> None:
        while self._instant_hooks and self._instant_drained():
            hooks = self._instant_hooks
            self._instant_hooks = []
            for hook in hooks:
                hook()

    def peek(self) -> float:
        """Time of the next scheduled activity, or +inf if none.

        Pending instant-end hooks count as activity at the current time:
        they may schedule events at ``now`` when they run.
        """
        if self._immediate or self._instant_hooks:
            return self._now
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        The merged pop order over the heap buckets and the immediate deque
        is exactly the (time, priority, eid) order a single flat heap would
        give: bucket times are always >= ``_now``, so a bucket entry wins
        only when it is at the current time with a higher priority or an
        earlier eid than the oldest immediate event.  When the current
        instant has fully drained, pending instant-end hooks run before
        the clock advances.
        """
        immediate = self._immediate
        queue = self._queue
        if self._instant_hooks and not immediate and (
            not queue or queue[0][0] > self._now
        ):
            self._flush_instant_hooks()
        if immediate:
            event = None
            if queue:
                key = queue[0]
                if key[0] == self._now:
                    bucket = self._buckets[key]
                    if (key[1], bucket[0][0]) < (1, immediate[0][0]):
                        event = bucket.popleft()[1]
                        if not bucket:
                            del self._buckets[key]
                            heapq.heappop(queue)
            if event is None:
                event = immediate.popleft()[1]
        else:
            if not queue:
                raise SimulationError("no more events to process")
            key = queue[0]
            bucket = self._buckets[key]
            event = bucket.popleft()[1]
            if not bucket:
                del self._buckets[key]
                heapq.heappop(queue)
            self._now = key[0]
        self.events_processed += 1
        event._process_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        Returns the value of ``until`` when it is an event.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        queue = self._queue
        immediate = self._immediate
        step = self.step
        while queue or immediate or self._instant_hooks:
            if stop_event is not None and stop_event.callbacks is None:
                return stop_event.value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            if self._instant_hooks and not immediate and (
                not queue or queue[0][0] > self._now
            ):
                # The current instant has drained: run the instant-end
                # hooks, then re-apply the stop checks before any event
                # they scheduled (possibly later than ``until``) runs.
                self._flush_instant_hooks()
                continue
            step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise StalledSimulationError(
                sorted(self.blocked_processes(), key=lambda p: p.name),
                reason="run() finished but the awaited event never triggered",
            )
        if stop_time is not None:
            self._now = stop_time
            return None
        blocked = self.blocked_processes()
        if blocked:
            raise StalledSimulationError(
                sorted(blocked, key=lambda p: p.name)
            )
        return None
