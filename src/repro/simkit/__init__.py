"""Minimal process-based discrete-event simulation kernel (SimPy-style)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StalledSimulationError,
    Timeout,
)
from .sharded import ShardedRun, ShardResult, run_sharded
from .resources import (
    Container,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "Release",
    "Request",
    "Resource",
    "ShardResult",
    "ShardedRun",
    "SimulationError",
    "StalledSimulationError",
    "Store",
    "Timeout",
    "run_sharded",
]
