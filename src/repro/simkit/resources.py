"""Shared-resource primitives for the simulation kernel.

Provides FIFO and priority-ordered resources (semaphores with queueing),
an item store, and a numeric container.  All follow the SimPy usage idiom::

    with resource.request() as req:
        yield req
        ...critical section...

Releases happen either via the context manager or an explicit
``resource.release(request)``.
"""

from __future__ import annotations

from typing import Any, List

from .core import Environment, Event, SimulationError

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Store",
    "Container",
]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Event form of a release; triggers immediately."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource.release(request)
        self.succeed()


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue(self) -> List[Request]:
        """Requests waiting for a slot (oldest first)."""
        return list(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Free the slot held by ``request`` (no-op if it never got one)."""
        if request in self.users:
            self.users.remove(request)
            self._trigger_requests()
        else:
            request.cancel()

    def _sort_queue(self) -> None:
        """Hook for subclasses that keep an ordered queue."""

    def _trigger_requests(self) -> None:
        self._sort_queue()
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.pop(0)
            self.users.append(request)
            request.succeed()


class PriorityRequest(Request):
    """Request with a priority; smaller value means earlier service."""

    __slots__ = ("priority", "time", "seq")

    _seq = 0

    def __init__(self, resource: "PriorityResource", priority: float = 0.0):
        self.priority = priority
        PriorityRequest._seq += 1
        self.time = resource.env.now
        self.seq = PriorityRequest._seq
        super().__init__(resource)

    @property
    def key(self):
        return (self.priority, self.time, self.seq)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _sort_queue(self) -> None:
        self._queue.sort(key=lambda request: request.key)  # type: ignore[attr-defined]


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO item buffer with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A homogeneous quantity (e.g. credits, bytes of buffer space)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init level out of range")
        self.env = env
        self.capacity = capacity
        self._level = init
        self.min_level = init
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if (
                self._put_queue
                and self._level + self._put_queue[0].amount <= self.capacity
            ):
                put = self._put_queue.pop(0)
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._get_queue and self._level >= self._get_queue[0].amount:
                get = self._get_queue.pop(0)
                self._level -= get.amount
                self.min_level = min(self.min_level, self._level)
                get.succeed(get.amount)
                progressed = True
