"""Conservative-time-window sharded simulation driver.

Fleet-scale scenarios often decompose into *independent* simulations:
machine groups that never exchange traffic (disjoint DP replicas before
the gradient all-reduce), per-block what-if sweeps, or per-tenant
serving pools.  Each shard is its own :class:`~repro.simkit.Environment`
— no event ever crosses a shard boundary — so they can run in separate
OS processes with no causality protocol beyond a shared clock window.

The driver still advances shards in *conservative time windows* the way
a parallel discrete-event coordinator would: every round it collects the
next-event horizon of each shard, takes the global minimum ``safe``, and
grants every shard the window ``[now, safe + window)``.  No shard ever
runs more than ``window`` ahead of the slowest one, which

* keeps per-round progress reports globally time-ordered (the driver can
  stream merged metrics without reordering), and
* is exactly the protocol that stays correct if a future shard coupling
  (e.g. a cross-replica barrier) introduces a finite lookahead — the
  window then becomes the lookahead bound instead of a free parameter.

Shards are distributed over worker processes in contiguous slices
(``ProcessPoolExecutor``-style fan-out, one persistent process per
worker since shard state must survive between windows).  Results are
deterministic: identical for any ``jobs`` and any ``window``, and
identical to running each shard's environment standalone, because a
shard's event order is purely internal to it.

The shard ``factory`` must be picklable (a module-level callable): it is
shipped to the worker and invoked there, so environments never cross a
process boundary.  It may return an :class:`Environment` directly, or
any object with an ``env`` attribute and, optionally, a ``collect()``
method whose (picklable) return value becomes the shard's payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .core import Environment

__all__ = ["ShardResult", "ShardedRun", "run_sharded"]


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard after its event queue drained."""

    index: int
    now: float                 # time of the shard's last processed event
    events_processed: int
    processes_started: int
    payload: Any = None        # shard.collect() result, if provided


@dataclass(frozen=True)
class ShardedRun:
    """Aggregate outcome of a sharded simulation."""

    results: Tuple[ShardResult, ...]   # in shard-index order
    windows: int                       # coordination rounds executed
    makespan: float                    # max shard completion time
    events_processed: int              # total across shards


def _shard_env(shard: Any) -> Environment:
    return shard if isinstance(shard, Environment) else shard.env


def _drain_to(env: Environment, horizon: float) -> None:
    """Process every event at times <= horizon without advancing past.

    ``run(until=t)`` force-sets the clock to ``t`` when the queue runs
    dry, which would round shard completion times up to window
    boundaries; stepping instant by instant keeps ``env.now`` at the
    shard's true last event time.
    """
    while True:
        at = env.peek()
        if at > horizon or math.isinf(at):
            return
        env.run(until=at)


class _ShardGroup:
    """A contiguous slice of shards owned by one worker (or run inline)."""

    def __init__(self, factory: Callable[[int], Any], indices: Sequence[int]):
        self.indices = list(indices)
        self.shards = [factory(index) for index in self.indices]

    def horizons(self) -> List[float]:
        return [_shard_env(shard).peek() for shard in self.shards]

    def advance(self, horizon: float) -> List[float]:
        for shard in self.shards:
            env = _shard_env(shard)
            if env.peek() <= horizon:
                _drain_to(env, horizon)
        return self.horizons()

    def collect(self) -> List[ShardResult]:
        results = []
        for index, shard in zip(self.indices, self.shards):
            env = _shard_env(shard)
            payload = shard.collect() if hasattr(shard, "collect") else None
            results.append(ShardResult(
                index=index,
                now=env.now,
                events_processed=env.events_processed,
                processes_started=env.processes_started,
                payload=payload,
            ))
        return results


def _worker(conn, factory, indices) -> None:
    """Child-process loop: build the owned shards, serve window grants."""
    try:
        group = _ShardGroup(factory, indices)
        conn.send(("ready", group.horizons()))
        while True:
            op, arg = conn.recv()
            if op == "advance":
                conn.send(("ok", group.advance(arg)))
            elif op == "collect":
                conn.send(("ok", group.collect()))
                return
            else:  # pragma: no cover - driver never sends other ops
                raise ValueError(f"unknown op {op!r}")
    except Exception as exc:  # surface the failure, don't hang the driver
        import traceback

        conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
    finally:
        conn.close()


class _RemoteGroup:
    """Driver-side handle for a worker process owning a shard slice."""

    def __init__(self, factory, indices):
        import multiprocessing

        ctx = multiprocessing.get_context()
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker, args=(child_conn, factory, indices), daemon=True
        )
        self.process.start()
        child_conn.close()

    def _recv(self):
        status, value = self.conn.recv()
        if status == "error":
            raise RuntimeError(f"shard worker failed:\n{value}")
        return value

    def horizons(self) -> List[float]:
        return self._recv()  # the "ready" message

    def advance(self, horizon: float) -> List[float]:
        self.conn.send(("advance", horizon))
        return self._recv()

    def collect(self) -> List[ShardResult]:
        self.conn.send(("collect", None))
        results = self._recv()
        self.process.join()
        return results

    def shutdown(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


def run_sharded(
    factory: Callable[[int], Any],
    num_shards: int,
    *,
    window: float = math.inf,
    jobs: Optional[int] = None,
) -> ShardedRun:
    """Run ``num_shards`` independent simulations to completion.

    ``factory(index)`` builds shard ``index`` (see module docstring for
    the shard protocol).  ``jobs`` worker processes each own a
    contiguous slice of shards; ``jobs=1`` (or ``num_shards == 1``)
    runs everything inline with no subprocess.  ``window`` bounds how
    far any shard may run ahead of the global minimum next-event time
    per coordination round; the default (infinity) collapses the
    protocol to a single round, which is the right choice when nothing
    consumes the intermediate barriers.

    Results are independent of both knobs — shards exchange no events —
    so ``jobs``/``window`` trade wall-clock and coordination overhead
    only.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    if jobs is None:
        import os

        jobs = os.cpu_count() or 1
    jobs = max(1, min(int(jobs), num_shards))

    # Contiguous slices, sized as evenly as possible.
    bounds = [num_shards * j // jobs for j in range(jobs + 1)]
    slices = [range(bounds[j], bounds[j + 1]) for j in range(jobs)]

    groups: List[Any]
    if jobs == 1:
        groups = [_ShardGroup(factory, slices[0])]
    else:
        groups = [_RemoteGroup(factory, indices) for indices in slices]

    try:
        horizons = [group.horizons() for group in groups]
        windows = 0
        while True:
            safe = min((min(h) for h in horizons if h), default=math.inf)
            if not math.isfinite(safe):
                break
            grant = math.inf if math.isinf(window) else safe + window
            horizons = [group.advance(grant) for group in groups]
            windows += 1
        collected = [result for group in groups for result in group.collect()]
    finally:
        for group in groups:
            if isinstance(group, _RemoteGroup):
                group.shutdown()

    collected.sort(key=lambda result: result.index)
    return ShardedRun(
        results=tuple(collected),
        windows=windows,
        makespan=max(result.now for result in collected),
        events_processed=sum(result.events_processed for result in collected),
    )
