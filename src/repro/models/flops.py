"""FLOP counts for the compute-time model of the timed engines.

Standard multiply-accumulate accounting (2 FLOPs per MAC) for the dense
transformer pieces, the gate and expert FFNs.  The backward pass is charged
the usual 2x the forward FLOPs.
"""

from __future__ import annotations

from ..config import ModelConfig

__all__ = [
    "attention_flops",
    "dense_ffn_flops",
    "gate_flops",
    "expert_flops_per_token",
    "dense_block_flops",
    "BACKWARD_MULTIPLIER",
]

BACKWARD_MULTIPLIER = 2.0


def attention_flops(batch: int, seq: int, hidden: int) -> float:
    """QKV projection + scores + context + output projection."""
    projections = 4 * 2 * batch * seq * hidden * hidden  # qkv (3) + out (1)
    scores = 2 * batch * seq * seq * hidden
    context = 2 * batch * seq * seq * hidden
    return float(projections + scores + context)


def dense_ffn_flops(batch: int, seq: int, hidden: int, mult: int = 4) -> float:
    """Two linear layers H -> mult*H -> H."""
    return float(2 * 2 * batch * seq * hidden * mult * hidden)


def gate_flops(batch: int, seq: int, hidden: int, num_experts: int) -> float:
    return float(2 * batch * seq * hidden * num_experts)


def expert_flops_per_token(hidden: int, mult: int = 4) -> float:
    """One token through one expert FFN (H -> mult*H -> H)."""
    return float(2 * 2 * hidden * mult * hidden)


def dense_block_flops(config: ModelConfig) -> float:
    """Forward FLOPs of one dense transformer block for one worker batch."""
    return attention_flops(
        config.batch_size, config.seq_len, config.hidden_dim
    ) + dense_ffn_flops(
        config.batch_size, config.seq_len, config.hidden_dim, config.ffn_mult
    )


def moe_block_dense_part_flops(config: ModelConfig, block_index: int) -> float:
    """Attention + gate FLOPs of an MoE block (everything but the experts)."""
    return attention_flops(
        config.batch_size, config.seq_len, config.hidden_dim
    ) + gate_flops(
        config.batch_size,
        config.seq_len,
        config.hidden_dim,
        config.num_experts(block_index),
    )
