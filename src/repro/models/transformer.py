"""Full transformer / MoE-transformer models."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import ModelConfig
from ..tensorlib import Embedding, LayerNorm, Linear, Module, Tensor
from ..tensorlib import functional as F
from .attention import MultiHeadAttention
from .ffn import FeedForward
from .moe_block import MoEBlock

__all__ = ["TransformerBlock", "MoETransformer"]


class TransformerBlock(Module):
    """Pre-LN dense transformer block (attention + FFN)."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        causal: bool = False,
        ffn_mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.ln1 = LayerNorm(hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim, num_heads, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(hidden_dim)
        self.ffn = FeedForward(hidden_dim, mult=ffn_mult, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.ln1(x))
        x = x + self.ffn(self.ln2(x))
        return x


class MoETransformer(Module):
    """A stack of dense and MoE blocks per a :class:`ModelConfig` layout.

    This is the reference single-process model; the distributed runtime
    shards its expert layers across workers.
    """

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim, rng=rng)
        self.position_embedding = Embedding(config.seq_len, config.hidden_dim, rng=rng)
        self.blocks: List[Module] = []
        for index in range(config.num_blocks):
            if config.is_moe_block(index):
                block = MoEBlock(
                    config.hidden_dim,
                    config.num_heads,
                    config.num_experts(index),
                    config.top_k,
                    causal=config.causal,
                    ffn_mult=config.ffn_mult,
                    rng=rng,
                )
            else:
                block = TransformerBlock(
                    config.hidden_dim,
                    config.num_heads,
                    causal=config.causal,
                    ffn_mult=config.ffn_mult,
                    rng=rng,
                )
            self.blocks.append(block)
            setattr(self, f"block{index}", block)
        self.final_norm = LayerNorm(config.hidden_dim)
        self.lm_head = Linear(
            config.hidden_dim, config.vocab_size, bias=False, rng=rng
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """token_ids: (batch, seq) ints -> logits (batch, seq, vocab)."""
        token_ids = np.asarray(token_ids)
        batch, seq = token_ids.shape
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    def loss(self, token_ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Cross-entropy next-token / masked-token loss plus gate aux loss."""
        logits = self.forward(token_ids)
        batch, seq, vocab = logits.shape
        flat_logits = logits.reshape(batch * seq, vocab)
        main = F.cross_entropy(flat_logits, np.asarray(targets).reshape(-1))
        aux = self.gate_aux_loss()
        return main + 0.01 * aux

    def gate_aux_loss(self) -> Tensor:
        total = Tensor(0.0)
        for block in self.blocks:
            if isinstance(block, MoEBlock) and block.moe.last_decision is not None:
                total = total + block.moe.last_decision.aux_loss
        return total

    def moe_blocks(self) -> List[MoEBlock]:
        return [b for b in self.blocks if isinstance(b, MoEBlock)]
