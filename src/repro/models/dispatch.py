"""Sort-based token dispatch: one argsort instead of per-expert scans.

The naive MoE dispatch asks ``np.nonzero(expert_indices == e)`` once per
expert — an O(N·k·E) sweep over the routing table.  A single stable argsort
of the flattened (N·k) assignments produces the same per-expert
(token, slot) lists as *contiguous segments* of one sorted layout:

* dropped slots (marked ``-1`` by the capacity limit) sort first and are
  skipped with one ``searchsorted``;
* stable sorting preserves row-major order within each expert, so every
  segment is element-for-element identical to the ``np.nonzero`` result;
* segment boundaries come from a bincount/cumsum, so looking up an
  expert's tokens is O(1).

Both execution paradigms and the reference :func:`dispatch_compute_combine`
share this plan: gather all routed rows once, run each expert on its
segment, then un-dispatch with a single weighted scatter-add
(:func:`combine_sorted`).  Because every (token, slot) pair appears exactly
once across segments and ``np.add.at`` accumulates in index order, the
combine is value-identical to the old per-expert scatter chain.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..tensorlib import Tensor

__all__ = ["DispatchPlan", "combine_sorted", "gather_slots"]


class DispatchPlan:
    """Sorted segment layout of one routing decision.

    Attributes:
        token_ids: (R,) token row of each kept slot, grouped by expert
            (R = total routed slots after capacity drops).
        slot_ids: (R,) top-k slot column of each kept slot, same order.
        counts: (E,) kept slots per expert.
        starts: (E + 1,) segment offsets; expert ``e`` owns rows
            ``starts[e]:starts[e + 1]`` of the sorted layout.
    """

    __slots__ = (
        "num_experts",
        "num_tokens",
        "top_k",
        "token_ids",
        "slot_ids",
        "counts",
        "starts",
    )

    def __init__(self, expert_indices: np.ndarray, num_experts: int):
        flat = expert_indices.reshape(-1)
        order = np.argsort(flat, kind="stable")
        sorted_experts = flat[order]
        # Capacity-dropped slots are -1 and sort to the front.
        kept_from = np.searchsorted(sorted_experts, 0, side="left")
        kept = order[kept_from:]
        self.num_tokens, self.top_k = expert_indices.shape
        self.num_experts = int(num_experts)
        self.token_ids = kept // self.top_k
        self.slot_ids = kept % self.top_k
        self.counts = np.bincount(
            sorted_experts[kept_from:], minlength=num_experts
        )
        self.starts = np.concatenate(([0], np.cumsum(self.counts)))

    @property
    def total_routed(self) -> int:
        """Kept (token, slot) pairs across all experts."""
        return self.token_ids.size

    def count(self, expert: int) -> int:
        return int(self.counts[expert])

    def segment_bounds(self, expert: int) -> Tuple[int, int]:
        """Half-open ``[start, stop)`` of ``expert``'s rows in the layout."""
        return int(self.starts[expert]), int(self.starts[expert + 1])

    def segment(self, expert: int) -> Tuple[np.ndarray, np.ndarray]:
        """(token_ids, slot_ids) routed to ``expert``.

        Identical (values and order) to
        ``np.nonzero(expert_indices == expert)``.
        """
        start, stop = self.segment_bounds(expert)
        return self.token_ids[start:stop], self.slot_ids[start:stop]

    def experts_present(self) -> np.ndarray:
        """Experts with at least one routed slot, ascending."""
        return np.flatnonzero(self.counts)


def gather_slots(tokens: Tensor, plan: DispatchPlan) -> Tensor:
    """Gather routed token rows into plan (sorted-by-expert) order.

    Forward matches ``tokens.gather_rows(plan.token_ids)``; the backward
    pass exploits that every (token, slot) pair occurs exactly once in the
    plan, so the incoming gradient can be *assigned* into an (N, k, H)
    layout and reduced over the slot axis — no ``np.add.at`` scalar loop.
    """
    token_ids = plan.token_ids
    out_data = tokens.data[token_ids]

    def backward(grad):
        if tokens.requires_grad:
            pairs = np.zeros(
                (plan.num_tokens, plan.top_k) + grad.shape[1:],
                dtype=grad.dtype,
            )
            pairs[token_ids, plan.slot_ids] = grad
            tokens._accumulate(pairs.sum(axis=1))

    return tokens._make(out_data, (tokens,), backward)


def _gather_pairs(weights: Tensor, plan: DispatchPlan) -> Tensor:
    """``weights[(token, slot)]`` per kept pair, in plan order."""
    out_data = weights.data[plan.token_ids, plan.slot_ids]

    def backward(grad):
        if weights.requires_grad:
            full = np.zeros_like(weights.data)
            full[plan.token_ids, plan.slot_ids] = grad  # pairs are unique
            weights._accumulate(full)

    return weights._make(out_data, (weights,), backward)


def _scatter_slots(plan: DispatchPlan, values: Tensor) -> Tensor:
    """Sum each token's (up to top_k) weighted expert rows.

    The slot-axis reduction of the uniquely-assigned (N, k, H) layout —
    the fast inverse of :func:`gather_slots`.
    """
    pairs = np.zeros(
        (plan.num_tokens, plan.top_k) + values.shape[1:],
        dtype=values.data.dtype,
    )
    pairs[plan.token_ids, plan.slot_ids] = values.data
    out_data = pairs.sum(axis=1)

    def backward(grad):
        if values.requires_grad:
            values._accumulate(grad[plan.token_ids])

    return values._make(out_data, (values,), backward)


def combine_sorted(
    num_tokens: int,
    plan: DispatchPlan,
    decision,
    expert_outputs: Tensor,
) -> Tensor:
    """Weighted un-dispatch of expert outputs laid out in plan order.

    ``expert_outputs`` is the (R, H) concatenation of every expert's output
    rows in segment order; one gather of the combine weights and one
    slot-wise scatter produce the (num_tokens, H) mixed output.
    """
    if num_tokens != plan.num_tokens:
        raise ValueError(
            f"plan covers {plan.num_tokens} tokens, got {num_tokens}"
        )
    weights = _gather_pairs(decision.combine_weights, plan)
    weighted = expert_outputs * weights.reshape(-1, 1)
    return _scatter_slots(plan, weighted)
