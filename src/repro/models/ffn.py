"""Feed-forward networks: the dense FFN and the expert FFN.

An expert is exactly the paper's FFN: two Linear layers H -> 4H -> H with a
GELU in between (§5.1.3 sizes the expert as 8H^2 parameters from the two
weight matrices).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..tensorlib import Linear, Module, Tensor

__all__ = ["FeedForward", "Expert"]


class FeedForward(Module):
    """Dense transformer FFN: H -> mult*H -> H with GELU."""

    def __init__(
        self,
        hidden_dim: int,
        mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.fc1 = Linear(hidden_dim, mult * hidden_dim, rng=rng)
        self.fc2 = Linear(mult * hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).gelu())


class Expert(FeedForward):
    """An expert FFN with weight import/export for the data-centric runtime.

    The data-centric paradigm physically moves expert weights between
    workers; :meth:`export_weights` / :meth:`import_weights` are the
    serialization points, and :meth:`collect_gradients` extracts the
    gradient payload that is shipped back to the expert's home worker.
    """

    def export_weights(self) -> Dict[str, np.ndarray]:
        return self.state_dict()

    def import_weights(self, weights: Dict[str, np.ndarray]) -> None:
        self.load_state_dict(weights)

    def refresh_from(self, source: "Expert") -> None:
        """Copy ``source``'s weights into this expert's existing buffers.

        The zero-allocation sibling of ``import_weights(export_weights())``
        used by the data-centric replica pool: parameter arrays are reused
        across iterations and stale replica gradients are dropped.
        """
        own = dict(self.named_parameters())
        for name, param in source.named_parameters():
            np.copyto(own[name].data, param.data)
            own[name].grad = None

    def collect_gradients(self) -> Dict[str, np.ndarray]:
        grads = {}
        for name, param in self.named_parameters():
            grads[name] = (
                param.grad.copy()
                if param.grad is not None
                else np.zeros_like(param.data)
            )
        return grads

    def apply_gradients(self, grads: Dict[str, np.ndarray]) -> None:
        """Accumulate an external gradient payload into local ``.grad``."""
        own = dict(self.named_parameters())
        if set(grads) != set(own):
            raise KeyError("gradient payload does not match expert parameters")
        for name, param in own.items():
            if param.grad is None:
                param.grad = grads[name].copy()
            else:
                param.grad += grads[name]

    @property
    def weight_bytes(self) -> int:
        """Bytes of the two weight matrices (ignores biases, like §5.1.3)."""
        return int(
            (self.fc1.weight.size + self.fc2.weight.size) * 8
        )
