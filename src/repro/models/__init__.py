"""MoE transformer model zoo (functional layer)."""

from .attention import MultiHeadAttention
from .ffn import Expert, FeedForward
from .gate import GateDecision, TopKGate
from .moe_block import MoEBlock, MoELayer, dispatch_compute_combine
from .transformer import MoETransformer, TransformerBlock
from . import flops

__all__ = [
    "Expert",
    "FeedForward",
    "GateDecision",
    "MoEBlock",
    "MoELayer",
    "MoETransformer",
    "MultiHeadAttention",
    "TopKGate",
    "TransformerBlock",
    "dispatch_compute_combine",
    "flops",
]
