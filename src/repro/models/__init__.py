"""MoE transformer model zoo (functional layer)."""

from .attention import MultiHeadAttention
from .dispatch import DispatchPlan, combine_sorted, gather_slots
from .ffn import Expert, FeedForward
from .gate import DriftingGate, GateDecision, TopKGate
from .moe_block import MoEBlock, MoELayer, dispatch_compute_combine
from .transformer import MoETransformer, TransformerBlock
from . import flops

__all__ = [
    "DispatchPlan",
    "Expert",
    "FeedForward",
    "DriftingGate",
    "GateDecision",
    "MoEBlock",
    "MoELayer",
    "MoETransformer",
    "MultiHeadAttention",
    "TopKGate",
    "TransformerBlock",
    "combine_sorted",
    "dispatch_compute_combine",
    "flops",
    "gather_slots",
]
