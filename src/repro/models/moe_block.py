"""Reference (single-process) MoE expert layer and block.

``MoELayer`` holds the *entire* expert layer locally and is the numerical
ground truth: both distributed execution paradigms (expert-centric All-to-All
and data-centric expert pulling) must reproduce its outputs and gradients
exactly — the paper's equivalence claim (§3.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..tensorlib import LayerNorm, Module, Tensor
from .attention import MultiHeadAttention
from .ffn import Expert
from .gate import GateDecision, TopKGate

__all__ = ["MoELayer", "MoEBlock", "dispatch_compute_combine"]


def dispatch_compute_combine(
    tokens: Tensor,
    decision: GateDecision,
    experts: List[Expert],
) -> Tensor:
    """Apply gated experts to a flat (N, H) token batch.

    For every expert, gathers its assigned tokens, runs the expert FFN and
    scatter-adds the gate-weighted result — the canonical MoE computation
    both paradigms implement.
    """
    num_tokens = tokens.shape[0]
    output: Optional[Tensor] = None
    for expert_id, expert in enumerate(experts):
        token_ids, slot_ids = decision.slots_for_expert(expert_id)
        if token_ids.size == 0:
            continue
        gathered = tokens.gather_rows(token_ids)
        expert_out = expert(gathered)
        weights = decision.combine_weights[token_ids, slot_ids]
        weighted = expert_out * weights.reshape(-1, 1)
        contribution = Tensor.scatter_rows(num_tokens, token_ids, weighted)
        output = contribution if output is None else output + contribution
    if output is None:  # degenerate: no tokens at all
        output = tokens * 0.0
    return output


class MoELayer(Module):
    """Gate + full expert layer, all experts resident locally."""

    def __init__(
        self,
        hidden_dim: int,
        num_experts: int,
        top_k: int,
        ffn_mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.gate = TopKGate(hidden_dim, num_experts, top_k, rng=rng)
        self.experts = [
            Expert(hidden_dim, mult=ffn_mult, rng=rng)
            for _ in range(num_experts)
        ]
        for index, expert in enumerate(self.experts):
            setattr(self, f"expert{index}", expert)
        self.last_decision: Optional[GateDecision] = None

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, seq, hidden) -> same shape."""
        batch, seq, hidden = x.shape
        flat = x.reshape(batch * seq, hidden)
        decision = self.gate(flat)
        self.last_decision = decision
        mixed = dispatch_compute_combine(flat, decision, self.experts)
        return mixed.reshape(batch, seq, hidden)


class MoEBlock(Module):
    """Pre-LN transformer block whose FFN is an MoE expert layer."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        num_experts: int,
        top_k: int,
        causal: bool = False,
        ffn_mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.ln1 = LayerNorm(hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim, num_heads, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(hidden_dim)
        self.moe = MoELayer(
            hidden_dim, num_experts, top_k, ffn_mult=ffn_mult, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.ln1(x))
        x = x + self.moe(self.ln2(x))
        return x
