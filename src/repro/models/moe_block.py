"""Reference (single-process) MoE expert layer and block.

``MoELayer`` holds the *entire* expert layer locally and is the numerical
ground truth: both distributed execution paradigms (expert-centric All-to-All
and data-centric expert pulling) must reproduce its outputs and gradients
exactly — the paper's equivalence claim (§3.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..tensorlib import LayerNorm, Module, Tensor
from .attention import MultiHeadAttention
from .dispatch import combine_sorted, gather_slots
from .ffn import Expert
from .gate import GateDecision, TopKGate

__all__ = ["MoELayer", "MoEBlock", "dispatch_compute_combine"]


def dispatch_compute_combine(
    tokens: Tensor,
    decision: GateDecision,
    experts: List[Expert],
) -> Tensor:
    """Apply gated experts to a flat (N, H) token batch.

    Gathers all routed tokens once in sorted-by-expert order, runs each
    expert FFN on its contiguous segment, and un-dispatches with a single
    gate-weighted scatter-add — the canonical MoE computation both
    paradigms implement.
    """
    num_tokens = tokens.shape[0]
    plan = decision.dispatch_plan()
    if plan.total_routed == 0:  # degenerate: every slot dropped
        return tokens * 0.0
    gathered = gather_slots(tokens, plan)
    pieces = []
    for expert_id in plan.experts_present():
        start, stop = plan.segment_bounds(expert_id)
        pieces.append(experts[expert_id](gathered.row_slice(start, stop)))
    stacked = Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
    return combine_sorted(num_tokens, plan, decision, stacked)


class MoELayer(Module):
    """Gate + full expert layer, all experts resident locally."""

    def __init__(
        self,
        hidden_dim: int,
        num_experts: int,
        top_k: int,
        ffn_mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.gate = TopKGate(hidden_dim, num_experts, top_k, rng=rng)
        self.experts = [
            Expert(hidden_dim, mult=ffn_mult, rng=rng)
            for _ in range(num_experts)
        ]
        for index, expert in enumerate(self.experts):
            setattr(self, f"expert{index}", expert)
        self.last_decision: Optional[GateDecision] = None

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, seq, hidden) -> same shape."""
        batch, seq, hidden = x.shape
        flat = x.reshape(batch * seq, hidden)
        decision = self.gate(flat)
        self.last_decision = decision
        mixed = dispatch_compute_combine(flat, decision, self.experts)
        return mixed.reshape(batch, seq, hidden)


class MoEBlock(Module):
    """Pre-LN transformer block whose FFN is an MoE expert layer."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        num_experts: int,
        top_k: int,
        causal: bool = False,
        ffn_mult: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.ln1 = LayerNorm(hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim, num_heads, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(hidden_dim)
        self.moe = MoELayer(
            hidden_dim, num_experts, top_k, ffn_mult=ffn_mult, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.ln1(x))
        x = x + self.moe(self.ln2(x))
        return x
