"""Top-K gating for MoE blocks.

The gate assigns each token to its ``top_k`` highest-probability experts and
produces renormalized combine weights.  Routing decisions are returned as
plain numpy index arrays (they parameterize *communication*, not gradients),
while combine weights stay in the autograd graph so the gate learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..tensorlib import Linear, Module, Tensor
from .dispatch import DispatchPlan

__all__ = ["GateDecision", "TopKGate", "DriftingGate"]


@dataclass
class GateDecision:
    """Routing decision for a flat batch of N tokens.

    Attributes:
        expert_indices: (N, k) int array; slot j of token i goes to expert
            ``expert_indices[i, j]``.
        combine_weights: (N, k) Tensor of renormalized gate weights
            (rows sum to 1), differentiable w.r.t. the gate projection.
        probs: (N, num_experts) Tensor of full softmax probabilities.
        aux_loss: scalar Tensor — Switch-style load-balancing loss.
    """

    expert_indices: np.ndarray
    combine_weights: Tensor
    probs: Tensor
    aux_loss: Tensor
    _plan: Optional[DispatchPlan] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_tokens(self) -> int:
        return self.expert_indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.expert_indices.shape[1]

    @property
    def num_experts(self) -> int:
        return self.probs.shape[1]

    def tokens_per_expert(self, num_experts: int) -> np.ndarray:
        """Histogram of token-slot assignments over experts (dropped
        slots, marked -1, are excluded)."""
        flat = self.expert_indices.reshape(-1)
        return np.bincount(flat[flat >= 0], minlength=num_experts)

    @property
    def dropped_slots(self) -> int:
        """Token-slots dropped by the capacity limit."""
        return int((self.expert_indices < 0).sum())

    def dispatch_plan(self) -> DispatchPlan:
        """Sorted segment layout of this decision (computed once, cached)."""
        if self._plan is None:
            self._plan = DispatchPlan(self.expert_indices, self.num_experts)
        return self._plan


class TopKGate(Module):
    """Learned softmax gate with deterministic top-k selection.

    Optional behaviours matching common MoE stacks:

    * ``noise_std > 0`` adds Gaussian noise to the routing logits during
      selection (Shazeer et al.'s noisy top-k, encouraging exploration).
      The noise is drawn from ``noise_rng`` so distributed replicas can
      reproduce identical routing; it perturbs only the *selection*, not
      the differentiable combine weights.
    * ``capacity_factor`` caps tokens per expert at
      ``ceil(capacity_factor * N * k / num_experts)`` (GShard/Tutel-style);
      overflowing token-slots are dropped from routing (their combine
      weight mass is renormalized over the surviving slots).
    """

    def __init__(
        self,
        hidden_dim: int,
        num_experts: int,
        top_k: int,
        rng: Optional[np.random.Generator] = None,
        noise_std: float = 0.0,
        capacity_factor: Optional[float] = None,
    ):
        super().__init__()
        if top_k <= 0 or top_k > num_experts:
            raise ValueError(
                f"top_k must be in [1, {num_experts}], got {top_k}"
            )
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if capacity_factor is not None and capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.noise_std = noise_std
        self.capacity_factor = capacity_factor
        self.noise_rng = np.random.default_rng(0)
        self.proj = Linear(hidden_dim, num_experts, bias=False, rng=rng)

    def expert_capacity(self, num_tokens: int) -> Optional[int]:
        """Max token-slots one expert accepts, or None if unlimited."""
        if self.capacity_factor is None:
            return None
        return int(
            np.ceil(
                self.capacity_factor * num_tokens * self.top_k
                / self.num_experts
            )
        )

    def forward(self, tokens: Tensor) -> GateDecision:
        """Route a flat (N, H) token batch."""
        if tokens.ndim != 2 or tokens.shape[1] != self.hidden_dim:
            raise ValueError(
                f"gate expects (N, {self.hidden_dim}) tokens, "
                f"got {tokens.shape}"
            )
        from ..tensorlib import functional as F

        logits = self.proj(tokens)
        probs = F.softmax(logits, axis=-1)

        # Deterministic top-k: stable argsort on negated probabilities so
        # ties resolve to the lower expert index on every worker.
        selection_scores = probs.data
        if self.noise_std > 0:
            selection_scores = selection_scores + self.noise_rng.normal(
                0.0, self.noise_std, size=selection_scores.shape
            )
        bias = self._selection_bias()
        if bias is not None:
            selection_scores = selection_scores + bias
        order = np.argsort(-selection_scores, axis=-1, kind="stable")
        expert_indices = order[:, : self.top_k]
        if self.capacity_factor is not None:
            expert_indices = self._apply_capacity(expert_indices)

        rows = np.arange(tokens.shape[0])[:, None]
        # Dropped slots are marked -1; index safely and mask their weight.
        safe_indices = np.where(expert_indices >= 0, expert_indices, 0)
        selected = probs[rows, safe_indices]  # (N, k) in the graph
        keep_mask = (expert_indices >= 0).astype(probs.data.dtype)
        masked = selected * Tensor(keep_mask)
        denominator = masked.sum(axis=-1, keepdims=True) + 1e-30
        combine = masked / denominator

        aux_loss = self._load_balancing_loss(probs, expert_indices)
        return GateDecision(
            expert_indices=expert_indices,
            combine_weights=combine,
            probs=probs,
            aux_loss=aux_loss,
        )

    def _selection_bias(self) -> Optional[np.ndarray]:
        """Additive bias on the routing *selection* scores (not the
        differentiable combine weights).  ``None`` means unbiased — the
        base gate's behaviour.  Subclasses (e.g. :class:`DriftingGate`)
        use it to steer tokens_per_expert without touching gradients."""
        return None

    def _apply_capacity(self, expert_indices: np.ndarray) -> np.ndarray:
        """Drop token-slots beyond each expert's capacity (marked -1).

        Slots are admitted in token order (GShard's position-in-expert):
        the slot keeps its place if fewer than ``capacity`` earlier slots
        chose the same expert.
        """
        num_tokens = expert_indices.shape[0]
        capacity = self.expert_capacity(num_tokens)
        flat = expert_indices.reshape(-1)
        sort_index = np.argsort(flat, kind="stable")
        sorted_vals = flat[sort_index]
        boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
        first = np.concatenate(([0], boundaries))
        lengths = np.diff(np.concatenate((first, [flat.size])))
        group_starts = np.repeat(first, lengths)
        positions_sorted = np.arange(flat.size) - group_starts
        positions = np.empty_like(positions_sorted)
        positions[sort_index] = positions_sorted
        kept = np.where(positions < capacity, flat, -1)
        return kept.reshape(expert_indices.shape)

    def _load_balancing_loss(
        self, probs: Tensor, expert_indices: np.ndarray
    ) -> Tensor:
        """Switch-Transformer auxiliary loss: E * sum_e f_e * P_e."""
        flat = expert_indices.reshape(-1)
        counts = np.bincount(flat[flat >= 0], minlength=self.num_experts)
        fraction = counts / max(1, expert_indices.size)
        mean_probs = probs.mean(axis=0)  # (num_experts,)
        return (mean_probs * Tensor(fraction)).sum() * float(self.num_experts)


class DriftingGate(TopKGate):
    """A gate whose routing popularity follows a seeded drift process.

    Wraps the learned selection with an additive log-popularity bias from a
    :class:`~repro.workloads.drift.DriftSpec`, so the *functional* runtime's
    ``tokens_per_expert`` histogram tracks the same drifting/hotspot-shifting
    skew the timed engines see through
    :func:`~repro.workloads.drift.apply_drift`.  Call :meth:`advance` between
    iterations; the bias only perturbs selection scores, so combine weights
    and gradients remain those of the underlying learned gate.

    ``bias_strength`` scales the bias: 0 disables drift entirely (the gate
    is then byte-for-byte a :class:`TopKGate`); large values pin routing to
    the drifted popularity regardless of the learned logits.
    """

    def __init__(self, *args, drift=None, block_index: int = 0,
                 bias_strength: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if bias_strength < 0:
            raise ValueError("bias_strength must be non-negative")
        if drift is None:
            from ..workloads.drift import DriftSpec

            drift = DriftSpec()
        self.drift = drift
        self.block_index = block_index
        self.bias_strength = bias_strength
        self.iteration = 0
        self._bias_cache = None

    def advance(self, iteration: Optional[int] = None) -> int:
        """Move to ``iteration`` (default: next); returns the new index."""
        self.iteration = (
            self.iteration + 1 if iteration is None else iteration
        )
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")
        self._bias_cache = None
        return self.iteration

    def popularity(self) -> np.ndarray:
        """Target popularity over experts at the current iteration."""
        return self.drift.weights(
            self.num_experts, self.iteration, self.block_index
        )

    def _selection_bias(self) -> Optional[np.ndarray]:
        if self.bias_strength == 0:
            return None
        if self._bias_cache is None:
            weights = np.maximum(self.popularity(), 1e-12)
            self._bias_cache = self.bias_strength * np.log(weights)
        return self._bias_cache
