"""Multi-head self-attention."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensorlib import Linear, Module, Tensor
from ..tensorlib import functional as F

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Input/output shape: (batch, seq, hidden).  ``causal=True`` applies a
    lower-triangular mask (decoder models: MoE-GPT, MoE-Transformer-xl).
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        causal: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError("hidden_dim must be divisible by num_heads")
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.causal = causal
        self.qkv = Linear(hidden_dim, 3 * hidden_dim, rng=rng)
        self.out = Linear(hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, hidden = x.shape
        if hidden != self.hidden_dim:
            raise ValueError(
                f"expected hidden dim {self.hidden_dim}, got {hidden}"
            )
        qkv = self.qkv(x)  # (B, S, 3H)
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, heads, S, head_dim)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale  # (B, heads, S, S)
        mask = F.attention_scores_mask(seq, self.causal)
        if self.causal:
            scores = scores + Tensor(mask)
        weights = F.softmax(scores, axis=-1)
        context = weights @ v  # (B, heads, S, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, hidden)
        return self.out(context)
