"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``     — per-block R analysis, paradigm choice and memory estimate
  for a model on a cluster shape (the pre-flight check Janus runs before
  training, §5.1.3).
* ``simulate`` — run timed iterations of a model under a chosen paradigm
  and print time/traffic (``--faults SPEC`` injects a seeded fault plan;
  ``--drift SPEC`` shifts expert popularity between iterations;
  ``--control SPEC`` turns on the adaptive control plane;
  ``--metrics-out``/``--trace-out`` export the run report and Chrome
  trace).
* ``report``   — run several iterations with full metrics and write the
  machine-readable run report (and optionally a Perfetto-loadable trace).
* ``serve``    — request-level inference serving: replay a seeded
  open-loop arrival trace through continuous-batching workers (unified
  or disaggregated prefill/decode pools) and report TTFT/TPOT
  percentiles, goodput and SLO attainment.
* ``chaos``    — sweep pull-loss rates across paradigms and report
  iteration time, retries and stale fallbacks (graceful degradation).
* ``bench``    — wall-clock benchmarks with regression gates:
  ``--suite sim`` times the simulator per Fig.-14 config against
  ``benchmarks/BENCH_speed.json``; ``--suite runtime`` times numerical
  trainer steps (sorted dispatch, both paradigms) against
  ``benchmarks/BENCH_runtime.json``.
* ``graph``    — build, validate and export the iteration's task graph
  (Graphviz DOT / structural JSON) without running it.
* ``table1``   — regenerate the paper's Table 1 traffic comparison.
* ``goodput``  — the §3.1 All-to-All goodput stress test.

Model names: moe-bert, moe-gpt, moe-transformer-xl, pr-moe (see
``repro.config``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import format_table, table1
from .cluster import Cluster
from .config import (
    TABLE1_MODELS,
    ModelConfig,
    moe_bert,
    moe_gpt,
    moe_transformer_xl,
    pr_moe_transformer_xl,
)
from .comm import PullFailedError
from .core import (
    GraphValidationError,
    JanusFeatures,
    engine_for,
    engine_modes,
    estimate_data_centric,
    estimate_expert_centric,
    profile_model,
    strategy_names,
)
from .faults import FaultPlan, MessageLoss, ResilienceConfig
from .metrics import (
    MetricsRegistry,
    build_run_report,
    write_chrome_trace,
    write_run_report,
)
from .netsim import OutOfMemoryError, measure_all_to_all_goodput
from .trace import TraceRecorder
from .simkit import StalledSimulationError
from .units import GIB

# Simulation failures the CLI reports as one clean line, not a traceback.
_SIMULATION_ERRORS = (OutOfMemoryError, PullFailedError, StalledSimulationError)

MODEL_CHOICES = {
    "moe-bert": moe_bert,
    "moe-gpt": moe_gpt,
    "moe-transformer-xl": moe_transformer_xl,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def _chunk_spec(text: str):
    """``--chunks`` value: a fixed positive count, or ``auto`` to let the
    cost-model tuner pick per-block counts every iteration."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except (argparse.ArgumentTypeError, ValueError):
        raise argparse.ArgumentTypeError(
            f"must be a positive integer or 'auto', got {text!r}"
        )


def _fault_plan(text: str) -> FaultPlan:
    try:
        return FaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _drift_spec(text: str):
    from .workloads import DriftSpec

    try:
        return DriftSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _control_config(text: str):
    from .control import ControlConfig

    try:
        return ControlConfig.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _trace_spec(text: str):
    from .serving import TraceSpec

    try:
        return TraceSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _resolve_model(args) -> ModelConfig:
    if args.model == "pr-moe":
        config = pr_moe_transformer_xl(1 if args.machines <= 2 else 2)
    else:
        config = MODEL_CHOICES[args.model](args.experts)
    overrides = {}
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.seq_len is not None:
        overrides["seq_len"] = args.seq_len
    if args.top_k is not None:
        overrides["top_k"] = args.top_k
    return config.scaled(**overrides) if overrides else config


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        choices=sorted(MODEL_CHOICES) + ["pr-moe"],
        default="moe-gpt",
        help="model configuration (Table 1 / §7.5 defaults)",
    )
    parser.add_argument("--experts", type=int, default=32,
                        help="experts per MoE block")
    parser.add_argument("--machines", type=int, default=4,
                        help="number of 8-GPU machines")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--seq-len", type=int, default=None)
    parser.add_argument("--top-k", type=int, default=None)


def cmd_plan(args) -> int:
    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    world = cluster.world_size
    print(f"{config.name}: B={config.batch_size} S={config.seq_len} "
          f"k={config.top_k} H={config.hidden_dim} on {world} GPUs")
    rows = []
    for profile in profile_model(config, args.machines, cluster.gpus_per_machine):
        rows.append([
            profile.block_index,
            profile.num_experts,
            profile.experts_per_worker,
            f"{profile.ratio:.2f}",
            profile.paradigm.value,
            f"{profile.expert_centric_bytes / 1e9:.2f}",
            f"{profile.data_centric_bytes / 1e9:.2f}",
        ])
    print(format_table(
        ["Block", "#Experts", "E", "R", "Paradigm", "EC GB", "DC GB"], rows,
    ))
    for label, estimate in (
        ("expert-centric", estimate_expert_centric(config, world)),
        ("data-centric", estimate_data_centric(config, world)),
    ):
        verdict = "OOM" if estimate.total > 80 * GIB else "fits"
        print(f"memory {label}: {estimate.total / GIB:.1f} GiB ({verdict})")
    return 0


def cmd_simulate(args) -> int:
    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    if args.inference and args.iterations > 1:
        print("--inference is a single forward pass; drop --iterations",
              file=sys.stderr)
        return 2
    if (
        isinstance(args.chunks, int)
        and args.control is not None
        and args.control.adapt_chunks
    ):
        print(
            "--chunks N pins a fixed chunk count, which contradicts a "
            "chunk-adaptive --control (chunks=on); use --chunks auto or "
            "drop one of them",
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    feature_overrides = {}
    if args.chunks == "auto":
        feature_overrides["chunk_autotune"] = True
    elif args.chunks is not None:
        feature_overrides["ec_pipeline_chunks"] = args.chunks
    if args.stagger_a2a is not None:
        feature_overrides["a2a_stagger"] = args.stagger_a2a
    if feature_overrides:
        kwargs["features"] = JanusFeatures(**feature_overrides)
    if args.faults is not None:
        kwargs["fault_plan"] = args.faults
    controller = None
    if args.drift is not None or args.control is not None:
        from .control import Controller, ControlPolicy

        policy = (
            ControlPolicy(config=args.control)
            if args.control is not None
            else None
        )
        controller = Controller(policy=policy, drift=args.drift)
        kwargs["controller"] = controller
    exporting = args.metrics_out is not None or args.trace_out is not None
    registry = trace = None
    if exporting:
        registry = MetricsRegistry()
        trace = TraceRecorder()
        kwargs["metrics"] = registry
        kwargs["trace"] = trace
    profiler = None
    try:
        engine = engine_for(args.paradigm, config, cluster, **kwargs)
        if args.profile or args.profile_out is not None:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        try:
            if args.iterations > 1:
                results = engine.run(args.iterations)
                result = results[-1]
            else:
                result = engine.run_iteration(forward_only=args.inference)
                results = [result]
        finally:
            if profiler is not None:
                profiler.disable()
    except _SIMULATION_ERRORS as exc:
        print(f"{config.name} / {args.paradigm}: {exc}", file=sys.stderr)
        return 1
    if profiler is not None:
        import pstats

        if args.profile_out is not None:
            profiler.dump_stats(args.profile_out)
            print(f"profile stats written to {args.profile_out}")
        if args.profile:
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(25)
    if args.metrics_out is not None:
        report = build_run_report(
            results, registry,
            model=config.name, paradigm=args.paradigm,
            machines=args.machines, inference=args.inference,
        )
        write_run_report(args.metrics_out, report)
        print(f"run report written to {args.metrics_out}")
    if args.trace_out is not None:
        write_chrome_trace(
            args.trace_out, trace, registry,
            process_name=f"{config.name}/{args.paradigm}",
        )
        print(f"Chrome trace written to {args.trace_out} "
              "(load in Perfetto / chrome://tracing)")
    phase = "inference pass" if args.inference else "training iteration"
    if len(results) > 1:
        total = sum(item.seconds for item in results)
        print(f"{config.name} / {args.paradigm}: {total * 1e3:.1f} ms over "
              f"{len(results)} iterations "
              f"(mean {total / len(results) * 1e3:.1f} ms; last iteration "
              "below)")
    else:
        print(f"{config.name} / {args.paradigm}: "
              f"{result.seconds * 1e3:.1f} ms per {phase}")
    print(f"  All-to-All time:     {result.all_to_all_seconds * 1e3:.1f} ms "
          f"({result.all_to_all_share:.0%})")
    print(f"  cross-node traffic:  {result.cross_node_gb_per_machine:.2f} "
          f"GB/machine")
    print("  strategy per block:  "
          + ", ".join(f"{b}:{name}"
                      for b, name in sorted(result.strategies.items())))
    stats = result.fault_stats
    if stats is not None:
        print(f"  faults:              {stats.dropped_messages} dropped, "
              f"{stats.retries} retries, {stats.stale_fallbacks} stale "
              f"fallbacks, {stats.grad_failures} grad losses")
    if controller is not None:
        print(f"  {controller.summary()}")
    return 0


def cmd_report(args) -> int:
    """Multi-iteration run with full observability: prints a summary and
    writes the machine-readable run report (``--out``) plus, optionally,
    a Perfetto-loadable Chrome trace (``--trace-out``)."""
    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    registry = MetricsRegistry()
    trace = TraceRecorder()
    kwargs = {}
    if args.chunks == "auto":
        kwargs["features"] = JanusFeatures(chunk_autotune=True)
    elif args.chunks is not None:
        kwargs["features"] = JanusFeatures(ec_pipeline_chunks=args.chunks)
    try:
        engine = engine_for(
            args.paradigm, config, cluster, metrics=registry, trace=trace,
            **kwargs,
        )
        results = engine.run(args.iterations)
    except _SIMULATION_ERRORS as exc:
        print(f"{config.name} / {args.paradigm}: {exc}", file=sys.stderr)
        return 1
    report = build_run_report(
        results, registry,
        model=config.name, paradigm=args.paradigm,
        machines=args.machines, iterations=args.iterations,
    )
    rows = []
    for index, summary in enumerate(report["iterations"]):
        rows.append([
            index,
            f"{summary['seconds'] * 1e3:.2f}",
            f"{summary['all_to_all_share']:.0%}",
            f"{summary['overlap_efficiency']:.2f}",
            f"{summary['cross_node_gb_per_machine']:.2f}",
        ])
    print(format_table(
        ["Iter", "ms", "A2A", "Overlap", "GB/machine"], rows,
        title=f"{config.name} / {args.paradigm} "
              f"({args.machines} machines, {args.iterations} iterations)",
    ))
    tasks = report.get("tasks")
    if tasks:
        task_rows = [
            [kind, f"{entry['count']:.0f}", f"{entry['seconds'] * 1e3:.2f}"]
            for kind, entry in tasks.items()
        ]
        print(format_table(
            ["Task kind", "Count", "Busy ms"], task_rows,
            title="task-graph breakdown (all iterations)",
        ))
    tuning = report.get("chunk_tuning")
    if tuning:
        def _ms(entry, key):
            value = entry.get(key)
            return f"{value * 1e3:.3f}" if value is not None else "-"

        tuning_rows = [
            [block, entry.get("chunks", "-"),
             _ms(entry, "predicted_chunk_s"),
             _ms(entry, "measured_chunk_s"),
             entry.get("switches", 0)]
            for block, entry in tuning.get("blocks", {}).items()
        ]
        title = (
            f"chunk autotuner ({tuning.get('retunes', 0)} retune(s)"
            + (f", micro_batches={tuning['micro_batches']}"
               if "micro_batches" in tuning else "")
            + ")"
        )
        print(format_table(
            ["Block", "Chunks", "Pred ms/chunk", "Meas ms/chunk",
             "Switches"],
            tuning_rows, title=title,
        ))
    if args.out == "-":
        import json

        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        write_run_report(args.out, report)
        print(f"run report written to {args.out}")
    if args.trace_out is not None:
        write_chrome_trace(
            args.trace_out, trace, registry,
            process_name=f"{config.name}/{args.paradigm}",
        )
        print(f"Chrome trace written to {args.trace_out} "
              "(load in Perfetto / chrome://tracing)")
    return 0


def cmd_serve(args) -> int:
    """Replay a seeded open-loop request trace through continuous-batching
    serving workers and print per-topology latency/goodput KPIs."""
    from dataclasses import asdict

    from .serving import (
        ServingConfig,
        build_serving_report,
        format_serving_summary,
        generate_trace,
        simulate_serving,
    )

    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    spec = args.trace
    trace = generate_trace(spec)
    topologies = (
        ("unified", "disaggregated")
        if args.topology == "both"
        else (args.topology,)
    )
    exporting = args.out is not None or args.trace_out is not None
    results = []
    registry = recorder = None
    for topology in topologies:
        try:
            serving = ServingConfig(
                topology=topology,
                prefillers=args.prefillers,
                max_batch=args.max_batch,
                prefill_batch=args.prefill_batch,
                pin_fraction=args.pin_fraction,
                prefill_paradigm=args.prefill_paradigm,
                decode_paradigm=args.decode_paradigm,
                ttft_slo_s=args.ttft_slo,
                tpot_slo_s=args.tpot_slo,
            )
        except ValueError as exc:
            print(f"invalid serving config: {exc}", file=sys.stderr)
            return 2
        if exporting:
            # Fresh lanes per topology: the exported report/trace carry
            # the last simulated topology's metric dump.
            registry = MetricsRegistry()
            recorder = TraceRecorder()
        try:
            results.append(simulate_serving(
                config, cluster, trace, serving,
                metrics=registry, recorder=recorder,
            ))
        except ValueError as exc:
            # Split/model constraints are only checkable against the
            # cluster, so they surface from the simulator constructor.
            print(f"invalid serving config: {exc}", file=sys.stderr)
            return 2
        except _SIMULATION_ERRORS as exc:
            print(f"{config.name} / serve {topology}: {exc}",
                  file=sys.stderr)
            return 1
    print(format_serving_summary(
        results,
        title=f"{config.name}: {len(trace)} requests, {spec.kind} arrivals "
              f"at {spec.rate:.0f}/s (offered {trace.offered_rate:.0f}/s) "
              f"on {args.machines} machines",
    ))
    if args.out is not None:
        report = build_serving_report(
            results, registry,
            model=config.name, machines=args.machines,
            trace=dict(sorted(asdict(spec).items())),
        )
        if args.out == "-":
            import json

            print(json.dumps(report, indent=1, sort_keys=True))
        else:
            import json

            Path(args.out).write_text(
                json.dumps(report, indent=1, sort_keys=False) + "\n"
            )
            print(f"serving report written to {args.out}")
    if args.trace_out is not None:
        write_chrome_trace(
            args.trace_out, recorder, registry,
            process_name=f"{config.name}/serve-{results[-1].topology}",
        )
        print(f"Chrome trace written to {args.trace_out} "
              "(load in Perfetto / chrome://tracing)")
    return 0


def cmd_chaos(args) -> int:
    """Loss-rate sweep: the §3.2 less-synchronization claim under fire."""
    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    try:
        rates = sorted({float(rate) for rate in args.rates.split(",")})
    except ValueError:
        print(f"invalid --rates {args.rates!r}", file=sys.stderr)
        return 2
    modes = args.paradigms.split(",")
    rows = []
    for mode in modes:
        for rate in rates:
            plan = FaultPlan(
                seed=args.seed,
                faults=(MessageLoss(kinds=("pull-request",), rate=rate),),
            )
            try:
                engine = engine_for(
                    mode, config, cluster,
                    fault_plan=plan, resilience=ResilienceConfig(),
                )
                result = engine.run_iteration()
            except _SIMULATION_ERRORS as exc:
                print(f"{config.name} / {mode}: {exc}", file=sys.stderr)
                return 1
            stats = result.fault_stats
            rows.append([
                mode,
                f"{rate:.0%}",
                f"{result.seconds * 1e3:.2f}",
                stats.dropped_messages,
                stats.retries,
                stats.stale_fallbacks,
            ])
    print(format_table(
        ["Paradigm", "Loss", "ms/iter", "Dropped", "Retries", "Fallbacks"],
        rows,
        title=f"{config.name}: pull-request loss sweep "
              f"(seed={args.seed}, {args.machines} machines)",
    ))
    return 0


def _bench_capture(args, suite: str):
    """Run one bench suite ("sim" or "runtime"); return (capture, path)."""
    from .bench import (
        CONTROL_FULL_CONFIGS,
        CONTROL_QUICK_CONFIGS,
        DEFAULT_CONTROL_SNAPSHOT_PATH,
        DEFAULT_RUNTIME_SNAPSHOT_PATH,
        DEFAULT_SCALE_SNAPSHOT_PATH,
        DEFAULT_SCHEDULES_SNAPSHOT_PATH,
        DEFAULT_SNAPSHOT_PATH,
        FULL_CONFIGS,
        QUICK_CONFIGS,
        RUNTIME_FULL_CONFIGS,
        RUNTIME_QUICK_CONFIGS,
        SCALE_FULL_CONFIGS,
        SCALE_QUICK_CONFIGS,
        SCHEDULE_FULL_CONFIGS,
        SCHEDULE_QUICK_CONFIGS,
        SERVING_FULL_CONFIGS,
        SERVING_QUICK_CONFIGS,
        DEFAULT_SERVING_SNAPSHOT_PATH,
        format_control_suite,
        format_runtime_suite,
        format_scale_suite,
        format_schedules_suite,
        format_serving_suite,
        format_suite,
        run_control_suite,
        run_runtime_suite,
        run_scale_suite,
        run_schedules_suite,
        run_serving_suite,
        run_suite,
    )

    if suite == "control":
        configs = (
            CONTROL_QUICK_CONFIGS if args.quick else CONTROL_FULL_CONFIGS
        )
        # Every config is a full multi-iteration drift schedule, so one
        # run per config is already a stable median.
        runs = args.runs if args.runs is not None else 1
        current = run_control_suite(configs, runs=runs)
        print(format_control_suite(current))
        return current, DEFAULT_CONTROL_SNAPSHOT_PATH
    if suite == "schedules":
        configs = (
            SCHEDULE_QUICK_CONFIGS if args.quick else SCHEDULE_FULL_CONFIGS
        )
        runs = args.runs if args.runs is not None else (1 if args.quick else 2)
        current = run_schedules_suite(configs, runs=runs)
        print(format_schedules_suite(current))
        return current, DEFAULT_SCHEDULES_SNAPSHOT_PATH
    if suite == "serving":
        configs = (
            SERVING_QUICK_CONFIGS if args.quick else SERVING_FULL_CONFIGS
        )
        # One run per config: the simulated facts are bit-identical
        # across repeats, and the largest trace replays 50k requests.
        runs = args.runs if args.runs is not None else 1
        current = run_serving_suite(configs, runs=runs)
        print(format_serving_suite(current))
        return current, DEFAULT_SERVING_SNAPSHOT_PATH
    if suite == "scale":
        configs = SCALE_QUICK_CONFIGS if args.quick else SCALE_FULL_CONFIGS
        # Per-config sample counts (small points triple-sample, the
        # 128-machine point is its own noise floor) unless overridden.
        runs = args.runs if args.runs is not None else 0
        current = run_scale_suite(configs, runs=runs)
        print(format_scale_suite(current))
        return current, DEFAULT_SCALE_SNAPSHOT_PATH
    if suite == "sim":
        configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
        runs = args.runs if args.runs is not None else (1 if args.quick else 3)
        jobs = args.jobs
        if jobs is None:
            import os

            try:
                jobs = len(os.sched_getaffinity(0))
            except AttributeError:
                jobs = os.cpu_count() or 1
        current = run_suite(configs, runs=runs, jobs=jobs)
        print(format_suite(current))
        return current, DEFAULT_SNAPSHOT_PATH
    configs = RUNTIME_QUICK_CONFIGS if args.quick else RUNTIME_FULL_CONFIGS
    runs = args.runs if args.runs is not None else (2 if args.quick else 3)
    current = run_runtime_suite(configs, runs=runs, dtype=args.dtype)
    print(format_runtime_suite(current))
    return current, DEFAULT_RUNTIME_SNAPSHOT_PATH


def cmd_bench(args) -> int:
    """Wall-clock benchmarks: the simulator (``BENCH_speed.json``) and the
    numerical runtime (``BENCH_runtime.json``)."""
    import json

    from .bench import (
        check_control_snapshot,
        check_scale_snapshot,
        check_schedules_snapshot,
        check_serving_snapshot,
        check_snapshot,
        write_snapshot,
    )

    suites = (
        ("sim", "runtime", "schedules", "control", "serving", "scale")
        if args.suite == "all"
        else (args.suite,)
    )
    if len(suites) > 1 and (args.path is not None or args.out is not None):
        print("--path/--out are ambiguous with --suite all", file=sys.stderr)
        return 2
    worst = 0
    for suite in suites:
        current, default_path = _bench_capture(args, suite)
        path = Path(args.path) if args.path is not None else default_path
        if args.out is not None:
            Path(args.out).write_text(
                json.dumps(current, indent=1, sort_keys=True) + "\n"
            )
            print(f"capture written to {args.out}")
        if args.write:
            write_snapshot(path, current)
            print(
                f"snapshot written to {path} ({len(current['runs'])} configs)"
            )
            continue
        if args.check:
            if not path.exists():
                print(
                    f"no snapshot at {path}; run --write first",
                    file=sys.stderr,
                )
                return 2
            snapshot = json.loads(path.read_text())
            # The schedules/control suites also gate on simulated-time wins.
            checker = {
                "schedules": check_schedules_snapshot,
                "control": check_control_snapshot,
                "serving": check_serving_snapshot,
                "scale": check_scale_snapshot,
            }.get(suite, check_snapshot)
            problems = checker(current, snapshot, tolerance=args.tolerance)
            snap_dtype = snapshot.get("config", {}).get("dtype")
            cur_dtype = current.get("config", {}).get("dtype")
            if snap_dtype != cur_dtype:
                # float32 runs ~2x faster; comparing across dtypes would
                # either mask or fake a regression.
                problems.insert(
                    0,
                    f"dtype mismatch: capture is {cur_dtype}, snapshot is "
                    f"{snap_dtype} (timings are not comparable)",
                )
            if problems:
                print(
                    f"bench regression ({len(problems)} config(s)):",
                    file=sys.stderr,
                )
                for line in problems:
                    print(f"  {line}", file=sys.stderr)
                worst = max(worst, 1)
                continue
            print(
                f"bench OK: {len(current['runs'])} config(s) within "
                f"{args.tolerance:.0%} of {path.name}"
            )
    return worst


def cmd_graph(args) -> int:
    """Build, validate and export the iteration's task graph without
    running it (Graphviz DOT and/or structural JSON)."""
    import json
    from collections import Counter

    config = _resolve_model(args)
    cluster = Cluster(args.machines)
    try:
        engine = engine_for(args.paradigm, config, cluster)
        graph = engine.build_graph(forward_only=args.inference)
        order = graph.validate()
    except (GraphValidationError,) + _SIMULATION_ERRORS as exc:
        print(f"{config.name} / {args.paradigm}: {exc}", file=sys.stderr)
        return 1
    kinds = Counter(task.kind.value for task in graph.tasks())
    # Keep stdout clean for piping when an export goes to "-".
    summary_out = sys.stderr if "-" in (args.dot, args.json) else sys.stdout
    print(f"{config.name} / {args.paradigm}: task graph OK — "
          f"{len(order)} tasks in {len(graph.lanes)} lanes", file=summary_out)
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:<16} {count}", file=summary_out)
    for path, render in ((args.dot, graph.to_dot),
                         (args.json, lambda: json.dumps(
                             graph.to_json(), indent=1, sort_keys=True))):
        if path is None:
            continue
        text = render()
        if path == "-":
            print(text)
        else:
            Path(path).write_text(text + "\n")
            print(f"written to {path}")
    return 0


def cmd_table1(args) -> int:
    rows = table1(TABLE1_MODELS)
    print(format_table(
        ["Model", "#Expert", "#GPU", "Size(B)", "E.C.(GiB)", "D.C.(GiB)",
         "Reduction"],
        [
            [row.model, row.num_experts, row.num_gpus,
             f"{row.model_size_b:.2f}", f"{row.expert_centric_gib:.2f}",
             f"{row.data_centric_gib:.2f}", f"{row.reduction:.1f}x"]
            for row in rows
        ],
        title="Table 1: per-machine cross-node traffic (forward phase)",
    ))
    return 0


def cmd_goodput(args) -> int:
    intra = measure_all_to_all_goodput(1, payload_bytes_per_pair=args.payload)
    inter = measure_all_to_all_goodput(
        args.machines, payload_bytes_per_pair=args.payload
    )
    print(f"intra-machine All-to-All: {intra.goodput_gbps:8.1f} Gbps/GPU")
    print(f"inter-machine All-to-All: {inter.goodput_gbps:8.1f} Gbps/GPU")
    print(f"gap: {intra.goodput_gbps / inter.goodput_gbps:.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Janus (SIGCOMM'23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="per-block paradigm analysis")
    _add_model_arguments(plan)
    plan.set_defaults(func=cmd_plan)

    simulate = sub.add_parser("simulate", help="timed iteration simulation")
    _add_model_arguments(simulate)
    simulate.add_argument(
        "--paradigm",
        choices=sorted(engine_modes()),
        default="unified",
        help="block-execution strategy (from the strategy registry) or "
             "the R-driven per-block 'unified' selector",
    )
    simulate.add_argument(
        "--chunks", type=_chunk_spec, default=None, metavar="N|auto",
        help="pipelined-ec All-to-All chunk count "
             "(JanusFeatures.ec_pipeline_chunks); 'auto' lets the "
             "cost-model tuner pick per-block counts before every "
             "iteration",
    )
    simulate.add_argument(
        "--stagger-a2a", choices=("off", "wave", "chain"), default=None,
        help="intra-A2A chunk scheduling: arbitrate the shared NIC fabric "
             "per chunk ('wave' grants in arrival order, 'chain' staggers "
             "by micro-batch round); default keeps the fluid model",
    )
    simulate.add_argument("--inference", action="store_true",
                          help="forward-only pass (serving)")
    simulate.add_argument(
        "--faults", type=_fault_plan, default=None, metavar="SPEC",
        help="seeded fault plan, e.g. "
             "'seed=7;loss=pull-request*0.1;link=nic*0.25@0.005:0.015;"
             "slow=0*0.5;outage=1@0.002:0.004' "
             "(clauses: seed, loss, link, slow, outage; windows are "
             "@start:end in simulated seconds)",
    )
    simulate.add_argument(
        "--iterations", type=_positive_int, default=1,
        help="training iterations to simulate (drift/control act between "
             "iterations, so they need more than one)",
    )
    simulate.add_argument(
        "--drift", type=_drift_spec, default=None, metavar="SPEC",
        help="drifting expert-popularity workload, e.g. "
             "'flip;skew=1.5;period=2;seed=7' "
             "(kinds: static, flip, rotate, walk; keys: skew, period, "
             "low_skew, step, seed)",
    )
    simulate.add_argument(
        "--control", type=_control_config, default=None, metavar="SPEC",
        help="adaptive control plane, e.g. 'adaptive' or "
             "'adaptive;deviation=0.2;recover_after_clean=1;replicas=off' "
             "(re-picks per-block paradigms and replicates hot experts "
             "between iterations)",
    )
    simulate.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-25 functions by "
             "cumulative time (hot-path work starts from data)",
    )
    simulate.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="dump the raw cProfile stats here (implies --profile; load "
             "with pstats.Stats(PATH) or snakeviz for offline analysis)",
    )
    simulate.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the machine-readable run report (JSON) here",
    )
    simulate.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome-trace/Perfetto JSON of the iteration here",
    )
    simulate.set_defaults(func=cmd_simulate)

    report = sub.add_parser(
        "report", help="multi-iteration run report with full metrics"
    )
    _add_model_arguments(report)
    report.add_argument(
        "--paradigm",
        choices=sorted(engine_modes()),
        default="unified",
        help="block-execution strategy or the unified selector",
    )
    report.add_argument("--iterations", type=_positive_int, default=3,
                        help="iterations to simulate")
    report.add_argument(
        "--chunks", type=_chunk_spec, default=None, metavar="N|auto",
        help="fixed pipelined-ec chunk count, or 'auto' for the "
             "cost-model tuner (adds the per-block tuning table)",
    )
    report.add_argument(
        "--out", default="report.json", metavar="PATH",
        help="run-report destination ('-' prints JSON to stdout)",
    )
    report.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write a Chrome-trace/Perfetto JSON of the run",
    )
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser(
        "serve", help="request-level inference serving on a seeded trace"
    )
    _add_model_arguments(serve)
    serve.add_argument(
        "--trace", type=_trace_spec, metavar="SPEC",
        default="poisson;rate=2000;requests=10000;seed=7;skew=1.2",
        help="seeded open-loop arrival trace, e.g. "
             "'poisson;rate=2000;requests=10000;seed=7;skew=1.2' "
             "(kinds: poisson, diurnal, bursty; keys: rate, requests, "
             "seed, prompt_mean, output_mean, skew, period, amplitude, "
             "burst, duty)",
    )
    serve.add_argument(
        "--topology", choices=("unified", "disaggregated", "both"),
        default="both",
        help="unified workers, disaggregated prefiller/decoder pools, or "
             "both back to back on the same trace",
    )
    serve.add_argument(
        "--prefillers", type=_positive_int, default=None,
        help="prefill machines in the disaggregated split "
             "(default: half the machines)",
    )
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       help="decode continuous-batching cap per worker")
    serve.add_argument("--prefill-batch", type=_positive_int, default=8,
                       help="prompts admitted per prefill step")
    serve.add_argument(
        "--pin-fraction", type=float, default=0.25,
        help="fraction of experts pinned on disaggregated decoders "
             "(pinned-expert tokens skip the decode wire)",
    )
    serve.add_argument(
        "--prefill-paradigm",
        choices=sorted(strategy_names() + ("auto",)),
        default="auto",
        help="comm paradigm for prefill wire traffic ('auto' = Eq. 1 "
             "byte-volume pick per step)",
    )
    serve.add_argument(
        "--decode-paradigm",
        choices=sorted(strategy_names() + ("auto",)),
        default="auto",
        help="comm paradigm for decode wire traffic",
    )
    serve.add_argument("--ttft-slo", type=float, default=0.5,
                       help="time-to-first-token SLO in seconds")
    serve.add_argument("--tpot-slo", type=float, default=0.005,
                       help="per-output-token SLO in seconds")
    serve.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the serving report JSON here ('-' prints to stdout)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome-trace/Perfetto JSON of the (last) topology",
    )
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos", help="pull-loss sweep across paradigms (resilience report)"
    )
    _add_model_arguments(chaos)
    chaos.add_argument(
        "--rates", default="0,0.05,0.1,0.2",
        help="comma-separated pull-request loss rates",
    )
    chaos.add_argument(
        "--paradigms",
        # Every registered block strategy plus the unified selector — new
        # strategies join the sweep by registering, not by editing the CLI.
        default=",".join(strategy_names() + ("unified",)),
        help="comma-separated engine modes to sweep",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan RNG seed")
    chaos.set_defaults(func=cmd_chaos)

    bench = sub.add_parser(
        "bench", help="wall-clock benchmark of the simulator / runtime"
    )
    bench.add_argument("--suite",
                       choices=("sim", "runtime", "schedules", "control",
                                "serving", "scale", "all"),
                       default="sim",
                       help="sim = simulator configs (BENCH_speed.json); "
                            "runtime = numerical trainer steps "
                            "(BENCH_runtime.json); schedules = task-graph "
                            "schedules on the mixed-R model "
                            "(BENCH_schedules.json); control = adaptive "
                            "controller vs static paradigms under drift "
                            "(BENCH_control.json); serving = request-level "
                            "serving traces on both topologies "
                            "(BENCH_serving.json); scale = weak-scaling "
                            "sweep 8-128 machines (BENCH_scale.json); "
                            "all = every suite")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke subset (MoE-GPT, 3 paradigms)")
    bench.add_argument("--runs", type=_positive_int, default=None,
                       help="timed runs per config (default 3; 1 in --quick)")
    bench.add_argument("--jobs", type=_positive_int, default=None,
                       help="worker processes for the multi-config fan-out "
                            "(default: available cpus; sim suite only)")
    bench.add_argument("--dtype", choices=("float64", "float32"),
                       default="float64",
                       help="runtime-suite tensor dtype; float32 is an "
                            "experiment mode and is never comparable to "
                            "a float64 snapshot")
    bench.add_argument("--write", action="store_true",
                       help="write the committed snapshot (preserves history)")
    bench.add_argument("--check", action="store_true",
                       help="fail when a median regresses past --tolerance "
                            "vs the committed snapshot")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="relative regression band for --check")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="also dump the fresh capture JSON here")
    bench.add_argument(
        "--path", type=Path, default=None,
        help="snapshot location (default benchmarks/BENCH_speed.json, "
             "BENCH_runtime.json or BENCH_schedules.json per --suite)",
    )
    bench.set_defaults(func=cmd_bench)

    graph = sub.add_parser(
        "graph", help="validate and export the iteration task graph"
    )
    _add_model_arguments(graph)
    graph.add_argument(
        "--paradigm",
        choices=sorted(engine_modes()),
        default="unified",
        help="block-execution strategy, the unified selector or 'auto'",
    )
    graph.add_argument("--inference", action="store_true",
                       help="forward-only (serving) graph")
    graph.add_argument("--dot", default=None, metavar="PATH",
                       help="write Graphviz DOT here ('-' prints to stdout)")
    graph.add_argument("--json", default=None, metavar="PATH",
                       help="write structural JSON here ('-' prints)")
    graph.set_defaults(func=cmd_graph)

    table = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table.set_defaults(func=cmd_table1)

    goodput = sub.add_parser("goodput", help="All-to-All goodput stress test")
    goodput.add_argument("--machines", type=int, default=4)
    goodput.add_argument("--payload", type=float, default=32e6,
                         help="bytes per GPU pair")
    goodput.set_defaults(func=cmd_goodput)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
