"""Span tracing for simulated iterations.

The timed engines record what happened when (compute spans, communication
spans, per-expert pull completions, block completions).  The evaluation
figures are all derived from these traces: Fig. 3 (All-to-All share of an
iteration), Fig. 13 (block completion vs expert arrival timeline and the
computation-communication overlap), and the speedup figures.

A recorder can span several simulated iterations: :meth:`new_iteration`
advances the current iteration scope, every span and event is stamped with
the scope it was recorded in, and every query accepts ``iteration=`` so
multi-iteration traces never double-count (with the default
``iteration=None`` a query covers the whole recording).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Span", "TraceRecorder"]


@dataclass(frozen=True)
class Span:
    """One timed activity in the simulation."""

    kind: str              # e.g. "compute.dense", "comm.all_to_all", "comm.pull"
    start: float
    end: float
    worker: Optional[int] = None     # global rank, if worker-specific
    block: Optional[int] = None      # model block index, if block-specific
    detail: Optional[str] = None     # free-form (e.g. "expert=7", "phase=fwd")
    iteration: int = 0               # recorder iteration scope (multi-iter runs)

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


def _busy(intervals) -> float:
    """Union length of a set of (start, end) intervals."""
    busy = 0.0
    current_start: Optional[float] = None
    current_end = 0.0
    for start, end in sorted(intervals):
        if current_start is None or start > current_end:
            if current_start is not None:
                busy += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        busy += current_end - current_start
    return busy


class TraceRecorder:
    """Collects spans and point events for one simulated run."""

    def __init__(self):
        self.spans: List[Span] = []
        self.events: List[Dict] = []
        self.iteration = 0

    def new_iteration(self) -> int:
        """Advance the iteration scope; subsequent records carry it."""
        self.iteration += 1
        return self.iteration

    def record(
        self,
        kind: str,
        start: float,
        end: float,
        worker: Optional[int] = None,
        block: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        self.spans.append(
            Span(kind, start, end, worker, block, detail, self.iteration)
        )

    def mark(self, name: str, time: float, **attrs) -> None:
        """Record a point event (e.g. expert arrival, block completion)."""
        event = {"name": name, "time": time, "iteration": self.iteration}
        event.update(attrs)
        self.events.append(event)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.iteration = 0

    # -- queries ---------------------------------------------------------------

    def _in_scope(self, span: Span, iteration: Optional[int]) -> bool:
        return iteration is None or span.iteration == iteration

    def spans_of(
        self, kind_prefix: str, iteration: Optional[int] = None
    ) -> List[Span]:
        return [
            span
            for span in self.spans
            if span.kind.startswith(kind_prefix)
            and self._in_scope(span, iteration)
        ]

    def total_time(
        self, kind_prefix: str, iteration: Optional[int] = None
    ) -> float:
        """Sum of span durations (may double-count overlapping spans)."""
        return sum(
            span.duration for span in self.spans_of(kind_prefix, iteration)
        )

    def busy_time(
        self, kind_prefix: str, iteration: Optional[int] = None
    ) -> float:
        """Union length of the matching spans' time intervals."""
        return self.busy_union(kind_prefix, iteration=iteration)

    def busy_union(
        self, *kind_prefixes: str, iteration: Optional[int] = None
    ) -> float:
        """Union busy time over spans matching any of the prefixes."""
        return _busy(
            (span.start, span.end)
            for prefix in kind_prefixes
            for span in self.spans_of(prefix, iteration)
        )

    def worker_busy_time(
        self, worker: int, iteration: Optional[int] = None
    ) -> float:
        """Union busy time of every span attributed to one worker."""
        return _busy(
            (span.start, span.end)
            for span in self.spans
            if span.worker == worker and self._in_scope(span, iteration)
        )

    def events_of(
        self, name: str, iteration: Optional[int] = None
    ) -> List[Dict]:
        return [
            event
            for event in self.events
            if event["name"] == name
            and (iteration is None or event.get("iteration") == iteration)
        ]

    def block_completions(
        self, worker: Optional[int] = None, iteration: Optional[int] = None
    ) -> Dict[int, float]:
        """block index -> completion time (forward), optionally per worker."""
        completions: Dict[int, float] = {}
        for event in self.events_of("block_complete", iteration):
            if worker is not None and event.get("worker") != worker:
                continue
            block = event["block"]
            completions[block] = max(completions.get(block, 0.0), event["time"])
        return completions

    def expert_arrivals(
        self, worker: Optional[int] = None, iteration: Optional[int] = None
    ) -> List[Dict]:
        """Expert pull completions (Fig. 13's lower sub-figure)."""
        return [
            event
            for event in self.events_of("expert_ready", iteration)
            if worker is None or event.get("worker") == worker
        ]
