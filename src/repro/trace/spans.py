"""Span tracing for simulated iterations.

The timed engines record what happened when (compute spans, communication
spans, per-expert pull completions, block completions).  The evaluation
figures are all derived from these traces: Fig. 3 (All-to-All share of an
iteration), Fig. 13 (block completion vs expert arrival timeline and the
computation-communication overlap), and the speedup figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Span", "TraceRecorder"]


@dataclass(frozen=True)
class Span:
    """One timed activity in the simulation."""

    kind: str              # e.g. "compute.dense", "comm.all_to_all", "comm.pull"
    start: float
    end: float
    worker: Optional[int] = None     # global rank, if worker-specific
    block: Optional[int] = None      # model block index, if block-specific
    detail: Optional[str] = None     # free-form (e.g. "expert=7", "phase=fwd")

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects spans and point events for one simulated run."""

    def __init__(self):
        self.spans: List[Span] = []
        self.events: List[Dict] = []

    def record(
        self,
        kind: str,
        start: float,
        end: float,
        worker: Optional[int] = None,
        block: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        self.spans.append(Span(kind, start, end, worker, block, detail))

    def mark(self, name: str, time: float, **attrs) -> None:
        """Record a point event (e.g. expert arrival, block completion)."""
        event = {"name": name, "time": time}
        event.update(attrs)
        self.events.append(event)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()

    # -- queries ---------------------------------------------------------------

    def spans_of(self, kind_prefix: str) -> List[Span]:
        return [span for span in self.spans if span.kind.startswith(kind_prefix)]

    def total_time(self, kind_prefix: str) -> float:
        """Sum of span durations (may double-count overlapping spans)."""
        return sum(span.duration for span in self.spans_of(kind_prefix))

    def busy_time(self, kind_prefix: str) -> float:
        """Union length of the matching spans' time intervals."""
        intervals = sorted(
            (span.start, span.end) for span in self.spans_of(kind_prefix)
        )
        busy = 0.0
        current_start: Optional[float] = None
        current_end = 0.0
        for start, end in intervals:
            if current_start is None or start > current_end:
                if current_start is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            busy += current_end - current_start
        return busy

    def events_of(self, name: str) -> List[Dict]:
        return [event for event in self.events if event["name"] == name]

    def block_completions(self, worker: Optional[int] = None) -> Dict[int, float]:
        """block index -> completion time (forward), optionally per worker."""
        completions: Dict[int, float] = {}
        for event in self.events_of("block_complete"):
            if worker is not None and event.get("worker") != worker:
                continue
            block = event["block"]
            completions[block] = max(completions.get(block, 0.0), event["time"])
        return completions

    def expert_arrivals(self, worker: Optional[int] = None) -> List[Dict]:
        """Expert pull completions (Fig. 13's lower sub-figure)."""
        return [
            event
            for event in self.events_of("expert_ready")
            if worker is None or event.get("worker") == worker
        ]
