"""ASCII timeline rendering of simulation traces.

Turns a :class:`~repro.trace.spans.TraceRecorder` into the kind of picture
the paper's Fig. 13 shows: lanes of compute/communication activity over
simulated time, plus point events (expert arrivals, block completions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .spans import TraceRecorder

__all__ = ["render_timeline", "render_block_gantt"]

_LANE_GLYPHS = {
    "compute.dense": "D",
    "compute.expert": "E",
    "comm.a2a": "A",
    "comm.pull": "P",
    "fault": "!",
}


def _scale(time: float, span_end: float, width: int) -> int:
    if span_end <= 0:
        return 0
    return min(width - 1, int(time / span_end * width))


def render_timeline(
    trace: TraceRecorder,
    lanes: Optional[Sequence[str]] = None,
    width: int = 80,
    worker: Optional[int] = 0,
    end_time: Optional[float] = None,
) -> str:
    """Render one character row per span-kind lane.

    Each lane draws its spans as filled glyphs over a ``width``-column
    time axis; point events from ``mark`` render as ``*`` on an events
    lane.  ``worker`` filters worker-attributed spans/events (None = all).
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    lanes = list(lanes) if lanes is not None else list(_LANE_GLYPHS)
    spans = [
        span
        for span in trace.spans
        if worker is None or span.worker in (None, worker)
    ]
    events = [
        event
        for event in trace.events
        if worker is None or event.get("worker") in (None, worker)
    ]
    horizon = end_time
    if horizon is None:
        ends = [span.end for span in spans] + [e["time"] for e in events]
        horizon = max(ends) if ends else 1.0

    lines: List[str] = []
    label_width = max((len(lane) for lane in lanes), default=0)
    label_width = max(label_width, len("events"))
    for lane in lanes:
        glyph = _LANE_GLYPHS.get(lane, "#")
        row = [" "] * width
        for span in spans:
            if not span.kind.startswith(lane):
                continue
            start = _scale(span.start, horizon, width)
            stop = max(start + 1, _scale(span.end, horizon, width) + 1)
            for column in range(start, min(stop, width)):
                row[column] = glyph
        lines.append(f"{lane.ljust(label_width)} |{''.join(row)}|")

    event_row = [" "] * width
    for event in events:
        event_row[_scale(event["time"], horizon, width)] = "*"
    lines.append(f"{'events'.ljust(label_width)} |{''.join(event_row)}|")
    lines.append(
        f"{''.ljust(label_width)}  0{'':{width - 10}}{horizon * 1e3:8.2f}ms"
    )
    return "\n".join(lines)


def render_block_gantt(
    trace: TraceRecorder, worker: int = 0, width: int = 60
) -> str:
    """One bar per model block: when its forward compute finished."""
    completions = trace.block_completions(worker=worker)
    if not completions:
        return "(no block completions recorded)"
    horizon = max(completions.values())
    lines = []
    for block in sorted(completions):
        filled = _scale(completions[block], horizon, width) + 1
        bar = "=" * filled
        lines.append(
            f"block {block:3d} |{bar.ljust(width)}| "
            f"{completions[block] * 1e3:8.2f} ms"
        )
    return "\n".join(lines)
