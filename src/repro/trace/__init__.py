"""Span tracing and timeline rendering for simulated iterations."""

from .spans import Span, TraceRecorder
from .timeline import render_block_gantt, render_timeline

__all__ = ["Span", "TraceRecorder", "render_block_gantt", "render_timeline"]
