"""Composite neural-network functions built on the Tensor ops."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "linear",
    "attention_scores_mask",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log likelihood of integer ``targets``.

    ``logits`` has shape (N, classes); ``targets`` shape (N,).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects 2-d logits")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must be 1-d and match logits rows")
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    picked = log_probs[rows, targets]
    return -picked.mean()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * (var + eps) ** -0.5
    return normalized * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Tensor = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with weight shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def attention_scores_mask(seq_len: int, causal: bool) -> np.ndarray:
    """Additive attention mask: 0 where allowed, -1e9 where masked."""
    if not causal:
        return np.zeros((seq_len, seq_len))
    mask = np.triu(np.ones((seq_len, seq_len)), k=1) * -1e9
    return mask
