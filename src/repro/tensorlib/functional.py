"""Composite neural-network functions built on the Tensor ops."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "linear",
    "attention_scores_mask",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    A single fused graph node: the composite sub/exp/sum/div chain costs
    five nodes and as many full-size temporaries per call, and softmax sits
    on the attention and gate hot paths.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    out_data = shifted

    def backward(grad):
        if not x.requires_grad:
            return
        # d/dx = s * (g - sum(g * s)), built without mutating captures.
        gx = grad * out_data
        gx -= out_data * gx.sum(axis=axis, keepdims=True)
        x._accumulate_owned(gx)

    return x._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log likelihood of integer ``targets``.

    ``logits`` has shape (N, classes); ``targets`` shape (N,).  Fused into
    one graph node with the classic ``(softmax - onehot) / N`` backward:
    the composite log_softmax/getitem/mean chain allocates several
    (N, classes) temporaries and a scatter-add per call on the largest
    arrays in the model (the lm-head logits).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects 2-d logits")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must be 1-d and match logits rows")
    rows = np.arange(logits.shape[0])
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    sum_exps = exps.sum(axis=1, keepdims=True)
    log_probs_picked = shifted[rows, targets] - np.log(sum_exps[:, 0])
    out_data = np.asarray(-log_probs_picked.mean())

    def backward(grad):
        if not logits.requires_grad:
            return
        gx = exps / sum_exps
        gx[rows, targets] -= 1.0
        gx *= grad / logits.shape[0]
        logits._accumulate_owned(gx)

    return logits._make(out_data, (logits,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension.

    One fused node (the composite form is ~9 nodes per call); backward is
    the standard ``inv * (g - mean(g) - xhat * mean(g * xhat))`` with the
    affine grads reduced over all leading dims.
    """
    data = x.data
    mean = data.mean(axis=-1, keepdims=True)
    centered = data - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    var += eps
    inv = 1.0 / np.sqrt(var)
    centered *= inv
    xhat = centered
    out_data = xhat * weight.data
    out_data += bias.data

    def backward(grad):
        dim = data.shape[-1]
        if weight.requires_grad:
            weight._accumulate_owned(
                (grad * xhat).reshape(-1, dim).sum(axis=0)
            )
        if bias.requires_grad:
            bias._accumulate_owned(grad.reshape(-1, dim).sum(axis=0))
        if x.requires_grad:
            gx = grad * weight.data
            gm = gx.mean(axis=-1, keepdims=True)
            gxhat = (gx * xhat).mean(axis=-1, keepdims=True)
            gx -= gm
            gx -= xhat * gxhat
            gx *= inv
            x._accumulate_owned(gx)

    return x._make(out_data, (x, weight, bias), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with weight shape (in, out).

    Fused addmm: the bias lands in the GEMM output buffer (no extra add
    node or full-size grad copy between the add and the matmul), inputs of
    any leading shape run as one flat GEMM, and the weight grad is a
    single (in, rows) @ (rows, out) product.
    """
    if bias is None:
        return x @ weight
    data = x.data
    flat = data.reshape(-1, data.shape[-1])
    out_data = flat @ weight.data
    out_data += bias.data
    if data.ndim != 2:
        out_data = out_data.reshape(data.shape[:-1] + (weight.shape[-1],))

    def backward(grad):
        grad_flat = grad.reshape(-1, grad.shape[-1])
        if x.requires_grad:
            x._accumulate_owned((grad_flat @ weight.data.T).reshape(data.shape))
        if weight.requires_grad:
            weight._accumulate_owned(flat.T @ grad_flat)
        if bias.requires_grad:
            bias._accumulate_owned(grad_flat.sum(axis=0))

    return x._make(out_data, (x, weight, bias), backward)


def attention_scores_mask(seq_len: int, causal: bool) -> np.ndarray:
    """Additive attention mask: 0 where allowed, -1e9 where masked."""
    if not causal:
        return np.zeros((seq_len, seq_len))
    mask = np.triu(np.ones((seq_len, seq_len)), k=1) * -1e9
    return mask
