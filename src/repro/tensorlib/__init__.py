"""Numpy-backed reverse-mode autograd engine and nn building blocks."""

from . import functional
from .module import Embedding, LayerNorm, Linear, Module, Parameter, Sequential
from .optim import Adam, Optimizer, SGD
from .serialization import CheckpointError, load_checkpoint, save_checkpoint
from .tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Adam",
    "CheckpointError",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "Tensor",
    "load_checkpoint",
    "save_checkpoint",
    "default_dtype",
    "functional",
    "get_default_dtype",
    "is_grad_enabled",
    "no_grad",
    "set_default_dtype",
]
