"""Numpy-backed reverse-mode autograd engine and nn building blocks."""

from . import functional
from .module import Embedding, LayerNorm, Linear, Module, Parameter, Sequential
from .optim import Adam, Optimizer, SGD
from .serialization import CheckpointError, load_checkpoint, save_checkpoint
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "CheckpointError",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "Tensor",
    "load_checkpoint",
    "save_checkpoint",
    "functional",
    "is_grad_enabled",
    "no_grad",
]
