"""Optimizers over tensorlib parameters."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "global_grad_norm"]


def global_grad_norm(parameters: Iterable[Tensor]) -> float:
    """Global L2 norm over all present gradients.

    Uses a flat dot product per parameter instead of materializing the
    squared arrays; parameters without gradients are skipped.
    """
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            flat = param.grad.ravel()
            total += float(np.dot(flat, flat))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    total = global_grad_norm(params)
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class Optimizer:
    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            # In place: the update never rebinds param.data, so exported
            # views and optimizer state stay attached to the same buffer.
            param.data -= self.lr * update


class Adam(Optimizer):
    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1 - self.beta1**self._step
        bias2 = 1 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * param.grad
            v *= self.beta2
            v += (1 - self.beta2) * (param.grad * param.grad)
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
