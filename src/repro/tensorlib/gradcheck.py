"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "gradcheck"]


def numeric_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(inputs)`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(inputs).item()
        flat[i] = original - eps
        lower = fn(inputs).item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def gradcheck(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd gradients against finite differences.

    ``fn`` must return a scalar Tensor.  Raises AssertionError with a
    diagnostic message on mismatch; returns True on success.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(inputs)
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numeric_gradient(fn, inputs, index, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs err {worst:.3e}"
            )
    return True
