"""A small reverse-mode autograd engine over numpy arrays.

Implements just the operator set needed to train transformer/MoE models:
elementwise arithmetic, matmul, reductions, nonlinearities, reshaping,
gather/scatter (for MoE token dispatch) and a handful of composites.

Gradients are accumulated into ``Tensor.grad`` by :meth:`Tensor.backward`,
which topologically sorts the recorded graph.  Arrays are float64 by default
so the expert-centric / data-centric equivalence tests can use tight
tolerances.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
]

Number = Union[int, float]

_GRAD_ENABLED = [True]

# Float precision of every Tensor created while the stack top is active.
# float64 is the repo default (the EC/DC equivalence battery runs at tight
# tolerances); float32 is an opt-in fast path for benchmarking.
_DTYPE_STACK: List[np.dtype] = [np.dtype(np.float64)]


class no_grad:
    """Context manager disabling graph recording (like torch.no_grad)."""

    def __enter__(self):
        _GRAD_ENABLED.append(False)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _check_dtype(dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"default dtype must be floating, got {dtype}")
    return dtype


def get_default_dtype() -> np.dtype:
    """The dtype newly constructed Tensors use."""
    return _DTYPE_STACK[-1]


def set_default_dtype(dtype) -> None:
    """Set the process-wide Tensor dtype (float64 or float32)."""
    _DTYPE_STACK[-1] = _check_dtype(dtype)


class default_dtype:
    """Context manager scoping the Tensor dtype (like torch.set_default_dtype,
    but restored on exit)."""

    def __init__(self, dtype):
        self.dtype = _check_dtype(dtype)

    def __enter__(self):
        _DTYPE_STACK.append(self.dtype)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _DTYPE_STACK.pop()


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        axis for axis, dim in enumerate(shape) if dim == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-d array with optional gradient tracking."""

    # Tensors are allocated by the thousands per training step; __slots__
    # keeps them dict-free and makes attribute access cheaper.
    __slots__ = (
        "data",
        "requires_grad",
        "grad",
        "_parents",
        "_backward",
        "name",
        "_topo",
    )

    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=_DTYPE_STACK[-1])
        self.requires_grad = requires_grad and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name
        self._topo: Optional[List["Tensor"]] = None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale,
                      requires_grad=requires_grad)

    @staticmethod
    def as_tensor(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- shape properties -------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        if self.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # -- graph plumbing -----------------------------------------------------------

    def _make(self, data, parents, backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not (requires and is_grad_enabled()):
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents,
                      _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        # First contribution is a copy (one memory pass), later ones add in
        # place; `grad = grad + g` rebinding was a fresh allocation per edge.
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        # Same contract as _accumulate, but the caller guarantees ``grad``
        # is a freshly-allocated array this node may take ownership of
        # (never a view of an upstream gradient), skipping the first copy.
        if self.grad is None:
            if grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = grad.astype(self.data.dtype)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        The topological order is cached on the tensor, so calling
        ``backward`` repeatedly on the same graph (e.g. per-term backward
        in a trainer loop) skips the graph walk.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad tracking")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        if self._topo is None:
            topo: List[Tensor] = []
            visited = set()

            def visit(node: "Tensor"):
                stack = [(node, False)]
                while stack:
                    current, expanded = stack.pop()
                    if expanded:
                        topo.append(current)
                        continue
                    if id(current) in visited:
                        continue
                    visited.add(id(current))
                    stack.append((current, True))
                    for parent in current._parents:
                        if parent.requires_grad and id(parent) not in visited:
                            stack.append((parent, False))

            visit(self)
            self._topo = topo
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(self._topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate_owned(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) * self ** -1.0

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(
                    grad * exponent * self.data ** (exponent - 1)
                )

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        if self.data.ndim > 2 and other.data.ndim == 2:
            # Linear-layer shape (..., K) @ (K, N): one flat GEMM instead of
            # the batched-matmul loop, and the weight grad collapses to a
            # single (K, rows) @ (rows, N) product with no broadcast sum.
            flat = self.data.reshape(-1, self.data.shape[-1])
            out_data = (flat @ other.data).reshape(
                self.data.shape[:-1] + (other.data.shape[-1],)
            )

            def backward(grad):
                grad_flat = grad.reshape(-1, grad.shape[-1])
                if self.requires_grad:
                    self._accumulate_owned(
                        (grad_flat @ other.data.T).reshape(self.data.shape)
                    )
                if other.requires_grad:
                    other._accumulate_owned(flat.T @ grad_flat)

            return self._make(out_data, (self, other), backward)

        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate_owned(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate_owned(_unbroadcast(grad_other, other.shape))

        return self._make(out_data, (self, other), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.shape))
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis=axis)
                g = np.expand_dims(grad, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate_owned(mask * g)

        return self._make(out_data, (self,), backward)

    # -- nonlinearities -------------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad / self.data)

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad * mask)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad * (1 - out_data**2))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximated GELU (as used by BERT/GPT).

        The hottest nonlinearity in the runtime (dense FFNs and every
        expert), so both directions build their result in-place: two
        temporaries each instead of one allocation-and-pass per arithmetic
        step.
        """
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        x2 = x * x  # reused by backward; x*x avoids the slow pow() ufunc
        t = x2 * 0.044715
        t *= x
        t += x
        t *= c
        np.tanh(t, out=t)  # t = tanh(c * (x + 0.044715 x^3))
        out_data = 1.0 + t
        out_data *= x
        out_data *= 0.5

        def backward(grad):
            if not self.requires_grad:
                return
            # d/dx = (1 + t)/2 + x/2 (1 - t^2) * c (1 + 3*0.044715 x^2)
            d_inner = x2 * (3 * 0.044715)
            d_inner += 1.0
            d_inner *= c
            d = t * t
            np.subtract(1.0, d, out=d)
            d *= d_inner
            d *= x
            d += t
            d += 1.0
            d *= 0.5
            d *= grad
            self._accumulate_owned(d)

        return self._make(out_data, (self,), backward)

    # -- shaping ------------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate_owned(full)

        return self._make(out_data, (self,), backward)

    def row_slice(self, start: int, stop: int) -> "Tensor":
        """Contiguous leading-axis slice ``self[start:stop]``.

        Unlike ``__getitem__``, the backward pass adds straight into the
        ``[start:stop]`` band of the preallocated gradient instead of
        scatter-adding through a full-size temporary — the cheap segment
        primitive the sorted MoE dispatch path leans on.
        """
        out_data = self.data[start:stop]

        def backward(grad):
            if self.requires_grad:
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                self.grad[start:stop] += grad

        return self._make(out_data, (self,), backward)

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows of a 2-d tensor: ``out[i] = self[index[i]]``.

        The MoE dispatch primitive (token gather); backward scatter-adds.
        """
        index = np.asarray(index)
        return self[index]

    @staticmethod
    def scatter_rows(
        num_rows: int, index: np.ndarray, values: "Tensor"
    ) -> "Tensor":
        """Inverse of :meth:`gather_rows`: ``out[index[i]] += values[i]``.

        The MoE combine primitive (weighted un-dispatch of expert outputs).
        """
        index = np.asarray(index)
        values = Tensor.as_tensor(values)
        out_data = np.zeros((num_rows,) + values.shape[1:], dtype=values.data.dtype)
        np.add.at(out_data, index, values.data)

        def backward(grad):
            if values.requires_grad:
                values._accumulate_owned(grad[index])

        return values._make(out_data, (values,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        offsets = np.cumsum([0] + [t.shape[axis] for t in tensors])

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        requires = any(t.requires_grad for t in tensors)
        if not (requires and is_grad_enabled()):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=True, _parents=tuple(tensors),
                      _backward=backward)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"
