"""Checkpoint serialization for modules and optimizers.

Checkpoints are plain ``.npz`` archives: one array per parameter keyed by
its dotted name, plus optimizer slots under an ``__opt__`` prefix when an
optimizer is included.  A small JSON header records versioning so stale
checkpoints fail loudly instead of loading garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .module import Module
from .optim import Adam, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointError"]

_FORMAT_VERSION = 1
_HEADER_KEY = "__checkpoint_header__"
_OPT_PREFIX = "__opt__"


class CheckpointError(RuntimeError):
    """Raised for malformed or incompatible checkpoint files."""


def _optimizer_state(optimizer: Optimizer) -> dict:
    state = {}
    if isinstance(optimizer, Adam):
        state[f"{_OPT_PREFIX}kind"] = np.array("adam")
        state[f"{_OPT_PREFIX}step"] = np.array(optimizer._step)
        for index, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            state[f"{_OPT_PREFIX}m.{index}"] = m
            state[f"{_OPT_PREFIX}v.{index}"] = v
    elif isinstance(optimizer, SGD):
        state[f"{_OPT_PREFIX}kind"] = np.array("sgd")
        for index, velocity in enumerate(optimizer._velocity):
            state[f"{_OPT_PREFIX}velocity.{index}"] = velocity
    else:
        raise CheckpointError(
            f"cannot serialize optimizer type {type(optimizer).__name__}"
        )
    return state


def _restore_optimizer(optimizer: Optimizer, archive) -> None:
    kind = str(archive[f"{_OPT_PREFIX}kind"])
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise CheckpointError(
                f"checkpoint holds {kind!r} state, optimizer is Adam"
            )
        optimizer._step = int(archive[f"{_OPT_PREFIX}step"])
        for index in range(len(optimizer.parameters)):
            optimizer._m[index][...] = archive[f"{_OPT_PREFIX}m.{index}"]
            optimizer._v[index][...] = archive[f"{_OPT_PREFIX}v.{index}"]
    elif isinstance(optimizer, SGD):
        if kind != "sgd":
            raise CheckpointError(
                f"checkpoint holds {kind!r} state, optimizer is SGD"
            )
        for index in range(len(optimizer.parameters)):
            optimizer._velocity[index][...] = archive[
                f"{_OPT_PREFIX}velocity.{index}"
            ]
    else:
        raise CheckpointError(
            f"cannot restore optimizer type {type(optimizer).__name__}"
        )


def save_checkpoint(
    path: Union[str, Path],
    module: Module,
    optimizer: Optional[Optimizer] = None,
    metadata: Optional[dict] = None,
) -> None:
    """Write module (and optionally optimizer) state to ``path`` (.npz)."""
    arrays = dict(module.state_dict())
    header = {
        "version": _FORMAT_VERSION,
        "has_optimizer": optimizer is not None,
        "metadata": metadata or {},
    }
    arrays[_HEADER_KEY] = np.array(json.dumps(header))
    if optimizer is not None:
        arrays.update(_optimizer_state(optimizer))
    np.savez(path, **arrays)


def load_checkpoint(
    path: Union[str, Path],
    module: Module,
    optimizer: Optional[Optimizer] = None,
) -> dict:
    """Restore module (and optionally optimizer) state from ``path``.

    Returns the metadata dict stored alongside the checkpoint.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        if _HEADER_KEY not in archive:
            raise CheckpointError(f"{path} is not a repro checkpoint")
        header = json.loads(str(archive[_HEADER_KEY]))
        if header.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')}"
            )
        state = {
            key: archive[key]
            for key in archive.files
            if key != _HEADER_KEY and not key.startswith(_OPT_PREFIX)
        }
        module.load_state_dict(state)
        if optimizer is not None:
            if not header["has_optimizer"]:
                raise CheckpointError(
                    "checkpoint has no optimizer state to restore"
                )
            _restore_optimizer(optimizer, archive)
        return header["metadata"]
