"""Module/parameter system (a minimal torch.nn analogue)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "LayerNorm", "Embedding", "Sequential"]


class Parameter(Tensor):
    """A tensor registered as a trainable weight."""

    __slots__ = ()  # keep the Tensor layout dict-free

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter registration and traversal."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer: weight shape (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        scale = 1.0 / np.sqrt(in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(in_features, out_features))
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) * 0.02)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.min() < 0 or token_ids.max() >= self.num_embeddings:
            raise IndexError("token id out of embedding range")
        return self.weight[token_ids]


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self._sequence = list(modules)
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)

    def forward(self, x):
        for module in self._sequence:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._sequence)

    def __iter__(self):
        return iter(self._sequence)
