"""Cluster topology: devices, links and routing.

A :class:`Cluster` is a static description of ``n`` identical machines built
from a :class:`~repro.cluster.hardware.MachineSpec`.  It enumerates every
directed link in the fabric and computes the link path between any two
endpoints.  The simulation layer (:mod:`repro.netsim`) instantiates one
bandwidth server per :class:`LinkId` returned here.

Modelled links per machine (all full duplex, one ``LinkId`` per direction):

* ``nvlink``  — per-GPU NVSwitch port.  The switch itself is non-blocking, so
  the per-port ingress/egress capacity is the only contention point (this is
  what makes the paper's Fig. 7 egress hotspot appear).
* ``pcie_gpu`` — GPU ↔ its PCIe switch.
* ``pcie_up``  — PCIe switch ↔ CPU/host memory, shared by the GPUs under the
  switch (the bottleneck targeted by the paper's Fig. 8/9 peer scheduling).
* ``nic``     — GDR NIC, shared by the GPUs of one pair; carries RDMA traffic
  between machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .hardware import MachineSpec, a100_machine_spec

__all__ = ["Device", "LinkId", "Cluster"]

_DEVICE_KINDS = ("gpu", "host")
_LINK_KINDS = ("nvlink", "pcie_gpu", "pcie_up", "nic")
_DIRECTIONS = ("out", "in")


@dataclass(frozen=True, order=True)
class Device:
    """An endpoint of a transfer: a GPU or a machine's host (CPU) memory."""

    kind: str
    machine: int
    index: int = 0

    def __post_init__(self):
        if self.kind not in _DEVICE_KINDS:
            raise ValueError(f"unknown device kind: {self.kind!r}")

    @staticmethod
    def gpu(machine: int, local_rank: int) -> "Device":
        return Device("gpu", machine, local_rank)

    @staticmethod
    def host(machine: int) -> "Device":
        return Device("host", machine, 0)

    def __str__(self) -> str:
        if self.kind == "host":
            return f"host[{self.machine}]"
        return f"gpu[{self.machine}.{self.index}]"


@dataclass(frozen=True, order=True)
class LinkId:
    """One direction of one physical link.

    ``direction`` is relative to the device the link belongs to: ``out`` is
    traffic leaving the GPU / switch / NIC, ``in`` is traffic entering it.
    """

    kind: str
    machine: int
    index: int
    direction: str

    def __post_init__(self):
        if self.kind not in _LINK_KINDS:
            raise ValueError(f"unknown link kind: {self.kind!r}")
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"unknown link direction: {self.direction!r}")

    def __str__(self) -> str:
        return f"{self.kind}[{self.machine}.{self.index}].{self.direction}"


class Cluster:
    """``num_machines`` identical machines described by ``spec``."""

    def __init__(self, num_machines: int, spec: MachineSpec = None):
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        self.num_machines = num_machines
        self.spec = spec if spec is not None else a100_machine_spec()

    # -- sizes and ranks ----------------------------------------------------

    @property
    def gpus_per_machine(self) -> int:
        return self.spec.num_gpus

    @property
    def world_size(self) -> int:
        return self.num_machines * self.gpus_per_machine

    def global_rank(self, machine: int, local_rank: int) -> int:
        self._check_machine(machine)
        self.spec._check_rank(local_rank)
        return machine * self.gpus_per_machine + local_rank

    def machine_of(self, global_rank: int) -> int:
        self._check_global(global_rank)
        return global_rank // self.gpus_per_machine

    def local_rank_of(self, global_rank: int) -> int:
        self._check_global(global_rank)
        return global_rank % self.gpus_per_machine

    def gpu_device(self, global_rank: int) -> Device:
        return Device.gpu(
            self.machine_of(global_rank), self.local_rank_of(global_rank)
        )

    def gpus(self) -> Iterator[Device]:
        for machine in range(self.num_machines):
            for local_rank in range(self.gpus_per_machine):
                yield Device.gpu(machine, local_rank)

    # -- link enumeration ---------------------------------------------------

    def iter_links(self) -> Iterator[Tuple[LinkId, float, float]]:
        """Yield ``(link_id, bandwidth_bytes_per_s, latency_s)`` for every
        directed link in the cluster."""
        spec = self.spec
        for machine in range(self.num_machines):
            for gpu in range(spec.num_gpus):
                for direction in _DIRECTIONS:
                    yield (
                        LinkId("nvlink", machine, gpu, direction),
                        spec.nvlink.bandwidth,
                        spec.nvlink.latency,
                    )
                    yield (
                        LinkId("pcie_gpu", machine, gpu, direction),
                        spec.pcie.bandwidth,
                        spec.pcie.latency,
                    )
            for switch in range(spec.num_pcie_switches):
                for direction in _DIRECTIONS:
                    yield (
                        LinkId("pcie_up", machine, switch, direction),
                        spec.pcie.bandwidth,
                        spec.pcie.latency,
                    )
            for nic in range(spec.num_nics):
                for direction in _DIRECTIONS:
                    yield (
                        LinkId("nic", machine, nic, direction),
                        spec.nic.bandwidth,
                        spec.nic.latency,
                    )

    # -- routing ------------------------------------------------------------

    def route(self, src: Device, dst: Device, nic_index: int = None) -> List[LinkId]:
        """Directed link path from ``src`` to ``dst``.

        An empty path means a device-local copy.  For cross-machine routes,
        ``nic_index`` overrides the NIC on *both* ends (used by the
        inter-node scheduler to spread pulls over a machine's NICs); by
        default GPU endpoints use the NIC of their GPU pair and host
        endpoints use NIC 0.
        """
        if src == dst:
            return []
        if src.machine == dst.machine:
            return self._route_intra(src, dst)
        return self._route_inter(src, dst, nic_index)

    def _route_intra(self, src: Device, dst: Device) -> List[LinkId]:
        machine = src.machine
        spec = self.spec
        if src.kind == "gpu" and dst.kind == "gpu":
            return [
                LinkId("nvlink", machine, src.index, "out"),
                LinkId("nvlink", machine, dst.index, "in"),
            ]
        if src.kind == "gpu" and dst.kind == "host":
            switch = spec.pcie_switch_of(src.index)
            return [
                LinkId("pcie_gpu", machine, src.index, "out"),
                LinkId("pcie_up", machine, switch, "out"),
            ]
        if src.kind == "host" and dst.kind == "gpu":
            switch = spec.pcie_switch_of(dst.index)
            return [
                LinkId("pcie_up", machine, switch, "in"),
                LinkId("pcie_gpu", machine, dst.index, "in"),
            ]
        raise ValueError(f"no intra-machine route from {src} to {dst}")

    def _route_inter(
        self, src: Device, dst: Device, nic_index: int = None
    ) -> List[LinkId]:
        src_nic = nic_index if nic_index is not None else self._default_nic(src)
        dst_nic = nic_index if nic_index is not None else self._default_nic(dst)
        self._check_nic(src_nic)
        self._check_nic(dst_nic)
        return [
            LinkId("nic", src.machine, src_nic, "out"),
            LinkId("nic", dst.machine, dst_nic, "in"),
        ]

    def _default_nic(self, device: Device) -> int:
        if device.kind == "gpu":
            return self.spec.nic_of(device.index)
        return 0

    # -- validation ---------------------------------------------------------

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.num_machines:
            raise ValueError(
                f"machine {machine} out of range [0, {self.num_machines})"
            )

    def _check_global(self, global_rank: int) -> None:
        if not 0 <= global_rank < self.world_size:
            raise ValueError(
                f"global rank {global_rank} out of range [0, {self.world_size})"
            )

    def _check_nic(self, nic: int) -> None:
        if not 0 <= nic < self.spec.num_nics:
            raise ValueError(
                f"nic {nic} out of range [0, {self.spec.num_nics})"
            )

    def __repr__(self) -> str:
        return (
            f"Cluster(machines={self.num_machines}, "
            f"gpus_per_machine={self.gpus_per_machine})"
        )
