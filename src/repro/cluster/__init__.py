"""Static model of the GPU cluster: hardware specs, devices, links, routes."""

from .hardware import GpuSpec, LinkSpec, MachineSpec, a100_machine_spec
from .topology import Cluster, Device, LinkId

__all__ = [
    "Cluster",
    "Device",
    "GpuSpec",
    "LinkId",
    "LinkSpec",
    "MachineSpec",
    "a100_machine_spec",
]
