"""Hardware specifications for the simulated GPU cluster.

The defaults mirror the paper's testbed (§5.2, §7.1): machines with
8× NVIDIA A100 SXM 80 GB connected by NVLink/NVSwitch (600 GB/s per GPU),
PCIe 4.0 ×16 to the host (64 GB/s) with one PCIe switch per two GPUs, and
four 200 Gbps GDR NICs per machine, each NIC shared by one GPU pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import GIB, US, gbps, gbytes_per_s

__all__ = ["LinkSpec", "GpuSpec", "MachineSpec", "a100_machine_spec"]


@dataclass(frozen=True)
class LinkSpec:
    """Static properties of one physical link class.

    Attributes:
        bandwidth: capacity in bytes/second (per direction; links are
            full duplex and each direction is modelled independently).
        latency: fixed per-transfer latency in seconds.
    """

    bandwidth: float
    latency: float

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")


@dataclass(frozen=True)
class GpuSpec:
    """Compute and memory properties of one GPU.

    ``flops`` is the sustained throughput used by the compute-time model;
    the default corresponds to an A100 running mixed-precision GEMMs at a
    conservative fraction of its 312 TFLOPS peak.
    """

    flops: float = 180e12
    memory_bytes: float = 80 * GIB
    # Fixed cost per kernel launch (CUDA launch + framework dispatch).
    # Charged once per expert GEMM group, it is what makes computing 32
    # small expert batches more expensive than one big batched GEMM — the
    # real-world tax on fine-grained data-centric execution.
    kernel_overhead: float = 48e-6

    def __post_init__(self):
        if self.flops <= 0:
            raise ValueError("flops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.kernel_overhead < 0:
            raise ValueError("kernel_overhead must be non-negative")

    def effective_flops(self, hidden_dim: int) -> float:
        """Sustained throughput for GEMMs of a given hidden dimension.

        Small matrices cannot saturate an A100's tensor cores: kernels with
        H=256 reach a fraction of the peak that H>=1024 GEMMs do.  Modelled
        as a linear ramp clipped to [0.2, 0.85] of ``flops``.
        """
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        efficiency = min(0.85, max(0.2, hidden_dim / 1024.0))
        return self.flops * efficiency


@dataclass(frozen=True)
class MachineSpec:
    """Topology and link classes of one machine.

    ``gpus_per_nic`` GPUs share each NIC and ``gpus_per_pcie_switch`` GPUs
    share each PCIe switch (both are 2 on the paper's A100 boxes).
    """

    num_gpus: int = 8
    gpus_per_pcie_switch: int = 2
    gpus_per_nic: int = 2
    gpu: GpuSpec = field(default_factory=GpuSpec)
    nvlink: LinkSpec = field(
        default_factory=lambda: LinkSpec(gbytes_per_s(600.0), 2 * US)
    )
    pcie: LinkSpec = field(
        default_factory=lambda: LinkSpec(gbytes_per_s(64.0), 3 * US)
    )
    nic: LinkSpec = field(default_factory=lambda: LinkSpec(gbps(200.0), 8 * US))
    host_memory_bytes: float = 500 * GIB

    def __post_init__(self):
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        if self.num_gpus % self.gpus_per_pcie_switch != 0:
            raise ValueError(
                "num_gpus must be divisible by gpus_per_pcie_switch"
            )
        if self.num_gpus % self.gpus_per_nic != 0:
            raise ValueError("num_gpus must be divisible by gpus_per_nic")

    @property
    def num_pcie_switches(self) -> int:
        return self.num_gpus // self.gpus_per_pcie_switch

    @property
    def num_nics(self) -> int:
        return self.num_gpus // self.gpus_per_nic

    def pcie_switch_of(self, local_rank: int) -> int:
        """PCIe switch index serving the GPU with this local rank."""
        self._check_rank(local_rank)
        return local_rank // self.gpus_per_pcie_switch

    def nic_of(self, local_rank: int) -> int:
        """NIC index serving the GPU with this local rank."""
        self._check_rank(local_rank)
        return local_rank // self.gpus_per_nic

    def pcie_peer_of(self, local_rank: int) -> int:
        """The other GPU under the same PCIe switch (paper Fig. 8).

        Only meaningful when ``gpus_per_pcie_switch == 2``.
        """
        if self.gpus_per_pcie_switch != 2:
            raise ValueError(
                "pcie_peer_of is defined only for 2 GPUs per PCIe switch"
            )
        self._check_rank(local_rank)
        return local_rank ^ 1

    def _check_rank(self, local_rank: int) -> None:
        if not 0 <= local_rank < self.num_gpus:
            raise ValueError(
                f"local_rank {local_rank} out of range [0, {self.num_gpus})"
            )


def a100_machine_spec(num_gpus: int = 8) -> MachineSpec:
    """The paper's A100 machine with a configurable GPU count."""
    return MachineSpec(num_gpus=num_gpus)
