"""Quantitative observability for the simulated training stack.

* :class:`MetricsRegistry` — counters, gauges and histograms, threaded
  through the engine, both schedulers, the comm/pull layer, the netsim
  fabric and the simkit kernel (pass ``metrics=`` to
  :class:`~repro.core.engine.JanusEngine` or any engine constructor).
* :mod:`~repro.metrics.collect` — per-iteration derived KPIs (overlap
  efficiency, link utilization, credit occupancy, cache dedup).
* :mod:`~repro.metrics.chrome_trace` — Trace Event Format export for
  ``chrome://tracing`` / Perfetto.
* :mod:`~repro.metrics.report` — the versioned machine-readable run
  report behind ``--metrics-out`` and ``repro report``.
"""

from .chrome_trace import chrome_trace, write_chrome_trace
from .collect import (
    chunk_tuning_breakdown,
    collect_iteration_metrics,
    comm_busy_time,
    compute_busy_time,
    overlap_efficiency,
    serving_breakdown,
    task_kind_breakdown,
)
from .registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .report import (
    SCHEMA,
    build_run_report,
    iteration_summary,
    write_run_report,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "build_run_report",
    "chrome_trace",
    "chunk_tuning_breakdown",
    "collect_iteration_metrics",
    "comm_busy_time",
    "compute_busy_time",
    "iteration_summary",
    "overlap_efficiency",
    "serving_breakdown",
    "task_kind_breakdown",
    "write_chrome_trace",
    "write_run_report",
]
