"""Derive per-iteration KPIs and harvest simulation state into a registry.

Two kinds of metrics feed the registry:

* **live counters** — incremented inline by the schedulers and the comm
  layer while the simulation runs (pure Python increments; they cannot
  perturb event ordering), and
* **post-run harvest** — everything this module computes *after*
  ``env.run`` returns: per-link bytes and utilization from the fluid
  network, credit-buffer occupancy from the containers, cache-fill
  counts, the simkit kernel's event/process totals, and the derived
  overlap/All-to-All KPIs from the trace.

The split keeps the bit-identical guarantee trivial: nothing here ever
touches the simulation clock.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import MetricsRegistry

__all__ = [
    "overlap_efficiency",
    "comm_busy_time",
    "compute_busy_time",
    "task_kind_breakdown",
    "chunk_tuning_breakdown",
    "serving_breakdown",
    "collect_iteration_metrics",
]


def comm_busy_time(trace, iteration: Optional[int] = None) -> float:
    """Union time any traced communication lane was busy."""
    return trace.busy_union("comm.", iteration=iteration)


def compute_busy_time(trace, iteration: Optional[int] = None) -> float:
    """Union time any traced compute lane was busy."""
    return trace.busy_union("compute.", iteration=iteration)


def overlap_efficiency(trace, iteration: Optional[int] = None) -> float:
    """Fraction of the scarcer resource's busy time hidden under the other.

    ``overlap = busy(comm) + busy(compute) - busy(comm ∪ compute)`` is the
    time computation and communication ran concurrently on the traced
    lanes; dividing by ``min(busy(comm), busy(compute))`` normalizes to
    [0, 1]: 1.0 means the scarcer activity was fully overlapped (the Fig.
    13 ideal), 0.0 means strict serialization (the Fig. 3 baseline).
    """
    comm = comm_busy_time(trace, iteration)
    compute = compute_busy_time(trace, iteration)
    either = trace.busy_union("comm.", "compute.", iteration=iteration)
    bound = min(comm, compute)
    if bound <= 0:
        return 0.0
    # Interval-union arithmetic accumulates float noise; keep the KPI in
    # its defined [0, 1] range.
    return min(max((comm + compute - either) / bound, 0.0), 1.0)


def task_kind_breakdown(
    registry: MetricsRegistry,
) -> Dict[str, Dict[str, float]]:
    """Per-task-kind execution totals from the task-graph scheduler.

    The engine's task observer counts every body-bearing task it retires
    into ``task.count``/``task.seconds`` (labelled by kind); this folds
    both counters into ``kind -> {"count", "seconds"}``, sorted by kind.
    Empty when the run used the legacy scheduler or no registry."""
    breakdown: Dict[str, Dict[str, float]] = {}
    for metric, field in (("task.count", "count"),
                          ("task.seconds", "seconds")):
        for key, value in registry.series(metric).items():
            kind = str(dict(key).get("kind"))
            entry = breakdown.setdefault(
                kind, {"count": 0.0, "seconds": 0.0}
            )
            entry[field] = value
    return dict(sorted(breakdown.items()))


def chunk_tuning_breakdown(registry: MetricsRegistry) -> Dict:
    """Fold the ``control.chunk_tuning.*`` metrics into one report section.

    Per pipelined block: the tuner's chosen chunk count, its predicted
    per-chunk All-to-All seconds, the mean *measured* per-chunk task time
    (booked by the task observer), and how often the choice switched
    between retunes.  Top level: total retunes and the tuned global
    micro-batch count (with its own switch counter under the ``"micro"``
    pseudo-block).  Empty when the run never tuned, so default reports
    are unchanged.
    """
    blocks: Dict[str, Dict[str, float]] = {}

    def entry(key) -> Dict[str, float]:
        return blocks.setdefault(str(dict(key).get("block")), {})

    for key, value in registry.gauge_series(
        "control.chunk_tuning.chunks"
    ).items():
        entry(key)["chunks"] = int(value)
    for key, value in registry.gauge_series(
        "control.chunk_tuning.predicted_chunk_s"
    ).items():
        entry(key)["predicted_chunk_s"] = value
    measured = registry.series("control.chunk_tuning.measured_chunk_s")
    for key, count in registry.series(
        "control.chunk_tuning.measured_chunks"
    ).items():
        if count > 0:
            entry(key)["measured_chunk_s"] = measured.get(key, 0.0) / count
    for key, value in registry.series(
        "control.chunk_tuning.switches"
    ).items():
        entry(key)["switches"] = int(value)
    breakdown: Dict = {}
    retunes = registry.total("control.chunk_tuning.retunes")
    if retunes:
        breakdown["retunes"] = int(retunes)
    micro = registry.gauge("control.chunk_tuning.micro_batches")
    if micro is not None:
        breakdown["micro_batches"] = int(micro)
    if blocks:
        def block_key(item):
            name = item[0]
            return (not name.isdigit(), int(name) if name.isdigit() else 0,
                    name)

        breakdown["blocks"] = dict(sorted(blocks.items(), key=block_key))
    return breakdown


def serving_breakdown(registry: MetricsRegistry) -> Dict[str, Dict]:
    """Fold the ``serve.*`` lanes into one report section.

    The serving simulator counts requests/steps/tokens/bytes (labelled by
    phase or kind) and observes TTFT / per-output-token / end-to-end
    latency plus decode batch-size histograms.  Counters fold per label
    value; histograms contribute count/mean/min/max.  Empty when the run
    never served, so training-only reports are unchanged.
    """
    breakdown: Dict[str, Dict] = {}
    for metric in ("serve.requests", "serve.steps",
                   "serve.tokens", "serve.bytes"):
        series = registry.series(metric)
        if not series:
            continue
        breakdown[metric.split(".", 1)[1]] = {
            "/".join(str(value) for _, value in key) or "total": total
            for key, total in sorted(
                series.items(), key=lambda item: str(item[0])
            )
        }
    histograms = {
        name.split(".", 1)[1]: {
            labels or "all": {
                "count": stats["count"],
                "mean": stats["mean"],
                "min": stats["min"],
                "max": stats["max"],
            }
            for labels, stats in series.items()
        }
        for name, series in registry.as_dict()["histograms"].items()
        if name.startswith("serve.")
    }
    if histograms:
        breakdown["histograms"] = histograms
    return breakdown


def collect_iteration_metrics(
    registry: MetricsRegistry,
    result,
    fabric,
    ctx,
    iteration: int = 0,
) -> None:
    """Harvest one finished iteration into ``registry``.

    ``result`` is the :class:`~repro.core.engine.IterationResult`,
    ``fabric`` the iteration's :class:`~repro.netsim.Fabric` and ``ctx``
    its :class:`~repro.core.context.IterationContext`.
    """
    trace = result.trace
    scope = getattr(result, "iteration", None)

    # Headline timing KPIs.
    registry.set("iter.seconds", result.seconds, iteration=iteration)
    registry.set(
        "iter.overlap_efficiency",
        overlap_efficiency(trace, scope),
        iteration=iteration,
    )
    registry.set(
        "iter.a2a_share", result.all_to_all_share, iteration=iteration
    )
    registry.set(
        "iter.comm_busy_s", comm_busy_time(trace, scope), iteration=iteration
    )
    registry.set(
        "iter.compute_busy_s",
        compute_busy_time(trace, scope),
        iteration=iteration,
    )

    # Paradigm decisions per block (counts accumulate across iterations).
    for block, name in sorted(result.strategies.items()):
        registry.inc("block.strategy", block=block, strategy=name)

    # Per-link traffic from the fluid network.
    elapsed = result.seconds
    for link_id, moved in fabric.network.link_bytes.items():
        if moved <= 0:
            continue
        label = _link_label(link_id)
        registry.inc("link.bytes", moved, link=label)
        if elapsed > 0:
            registry.set(
                "link.utilization",
                fabric.network.link_utilization(link_id, elapsed),
                link=label,
                iteration=iteration,
            )
    for machine in range(fabric.cluster.num_machines):
        registry.inc(
            "machine.egress_bytes",
            fabric.nic_bytes(machine, "out"),
            machine=machine,
        )

    # Credit-buffer occupancy (§5.1.1): occupancy = C - level.
    capacity = ctx.features.credit_size
    for rank, container in sorted(ctx.credits.items()):
        registry.set(
            "credit.max_occupancy",
            capacity - container.min_level,
            rank=rank,
            iteration=iteration,
        )
        registry.set(
            "credit.final_level",
            container.level,
            rank=rank,
            iteration=iteration,
        )

    # Hierarchical-cache fills performed by the Inter-Node Schedulers.
    for machine, fills in sorted(ctx.cache_fills.items()):
        if fills:
            registry.inc("cache.fills", fills, machine=machine)

    # Background replica refreshes placed by the adaptive control plane.
    for machine, syncs in sorted(getattr(ctx, "replica_syncs", {}).items()):
        if syncs:
            registry.inc("control.replica_syncs", syncs, machine=machine)

    # Fault-layer outcomes, when the resilience machinery ran.
    stats = result.fault_stats
    if stats is not None:
        registry.inc("fault.retries", stats.retries)
        registry.inc("fault.stale_fallbacks", stats.stale_fallbacks)
        registry.inc("fault.grad_failures", stats.grad_failures)
        registry.inc("fault.dropped_messages", stats.dropped_messages)

    # Simulation-kernel accounting.
    env = ctx.env
    registry.set(
        "sim.events_processed", env.events_processed, iteration=iteration
    )
    registry.set(
        "sim.processes_started", env.processes_started, iteration=iteration
    )


def _link_label(link_id) -> str:
    """Stable text label for a link id (LinkId tuples or plain ids)."""
    if isinstance(link_id, tuple):
        return ":".join(str(part) for part in link_id)
    return str(link_id)
