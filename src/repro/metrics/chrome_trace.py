"""Chrome-trace / Perfetto export of recorded spans and metrics.

Produces the Trace Event Format JSON that ``chrome://tracing`` and
https://ui.perfetto.dev load directly: complete (``"ph": "X"``) events for
spans, instant (``"ph": "i"``) events for point marks, counter
(``"ph": "C"``) samples for registry counters, and metadata (``"ph": "M"``)
events naming the process and per-worker threads.  Timestamps are
microseconds, as the format requires.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .registry import MetricsRegistry

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1e6          # simulated seconds -> trace microseconds
_GLOBAL_TID = 0    # lane for spans with no worker attribution (coordinators)


def _tid(worker: Optional[int]) -> int:
    return _GLOBAL_TID if worker is None else worker + 1


def chrome_trace(
    trace,
    registry: Optional[MetricsRegistry] = None,
    process_name: str = "janus-sim",
) -> Dict:
    """Convert a :class:`~repro.trace.TraceRecorder` to a trace dict."""
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": _GLOBAL_TID,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": _GLOBAL_TID,
            "args": {"name": "coordinators"},
        },
    ]
    workers = sorted(
        {span.worker for span in trace.spans if span.worker is not None}
        | {
            event["worker"]
            for event in trace.events
            if event.get("worker") is not None
        }
    )
    for worker in workers:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": _tid(worker),
                "args": {"name": f"worker {worker}"},
            }
        )

    end_ts = 0.0
    for span in trace.spans:
        args = {"iteration": span.iteration}
        if span.block is not None:
            args["block"] = span.block
        if span.detail is not None:
            args["detail"] = span.detail
        events.append(
            {
                "name": span.kind,
                "cat": span.kind.split(".", 1)[0],
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": _tid(span.worker),
                "args": args,
            }
        )
        end_ts = max(end_ts, span.end * _US)

    for event in trace.events:
        args = {
            key: value
            for key, value in event.items()
            if key not in ("name", "time", "worker")
        }
        events.append(
            {
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": event["time"] * _US,
                "pid": 0,
                "tid": _tid(event.get("worker")),
                "args": args,
            }
        )
        end_ts = max(end_ts, event["time"] * _US)

    if registry is not None:
        for name in registry.counter_names():
            series = {
                MetricsRegistry._label_text(key) or "value": value
                for key, value in registry.series(name).items()
            }
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": end_ts,
                    "pid": 0,
                    "tid": _GLOBAL_TID,
                    "args": series,
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path,
    trace,
    registry: Optional[MetricsRegistry] = None,
    process_name: str = "janus-sim",
) -> Dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    document = chrome_trace(trace, registry, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document
