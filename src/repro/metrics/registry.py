"""Metric primitives: counters, gauges, histograms and a registry.

The registry is the quantitative counterpart of :mod:`repro.trace`: spans
say *when* something happened, metrics say *how much* of it happened.  It
is deliberately passive — incrementing a counter is a pure Python dict
update with no simulation-kernel interaction, so an instrumented run is
event-for-event identical to an uninstrumented one (the bit-identical
guarantee the golden-time tests lock down).

Metrics are identified by a dotted name plus a label set, Prometheus
style: ``registry.inc("pull.issued", kind="internal")``.  Histograms use
fixed logarithmic bucket bounds so two runs of the same simulation always
produce identical bucket counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

LabelKey = Tuple[Tuple[str, object], ...]

# Log-spaced from 1 microsecond to ~100 seconds: covers every simulated
# latency this repo produces (pull latencies are typically 1e-5..1e-2 s).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** exponent for exponent in range(-6, 3)
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


@dataclass
class Histogram:
    """Streaming histogram with fixed bucket upper bounds."""

    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    # bucket_counts[i] counts observations <= bounds[i]; the final slot
    # counts the overflow (> bounds[-1]).
    bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
        }


class MetricsRegistry:
    """Name + label set -> counter/gauge/histogram store."""

    def __init__(self):
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter (counters only ever go up)."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0")
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one histogram observation."""
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        if key not in series:
            series[key] = Histogram()
        series[key].observe(value)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reads ---------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get(name, {}).get(_label_key(labels))

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self._histograms.get(name, {}).get(_label_key(labels))

    def total(self, name: str) -> float:
        """Sum of a counter over every label set."""
        return sum(self._counters.get(name, {}).values())

    def series(self, name: str) -> Dict[LabelKey, float]:
        """All (label set -> value) pairs of one counter."""
        return dict(self._counters.get(name, {}))

    def gauge_series(self, name: str) -> Dict[LabelKey, float]:
        return dict(self._gauges.get(name, {}))

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def gauge_names(self) -> List[str]:
        return sorted(self._gauges)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    # -- export --------------------------------------------------------------

    @staticmethod
    def _label_text(key: LabelKey) -> str:
        if not key:
            return ""
        return ",".join(f"{name}={value}" for name, value in key)

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of every metric."""
        return {
            "counters": {
                name: {
                    self._label_text(key): value
                    for key, value in sorted(
                        series.items(), key=lambda item: str(item[0])
                    )
                }
                for name, series in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    self._label_text(key): value
                    for key, value in sorted(
                        series.items(), key=lambda item: str(item[0])
                    )
                }
                for name, series in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    self._label_text(key): histogram.as_dict()
                    for key, histogram in sorted(
                        series.items(), key=lambda item: str(item[0])
                    )
                }
                for name, series in sorted(self._histograms.items())
            },
        }
