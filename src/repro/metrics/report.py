"""Machine-readable run reports (``--metrics-out`` / ``repro report``).

One report summarizes a sequence of simulated iterations: headline
timings, the derived overlap/All-to-All KPIs, traffic, per-block strategy
decisions, and (when a registry was attached) the full metric dump.  The
schema is versioned so downstream tooling can detect layout changes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .collect import (
    chunk_tuning_breakdown,
    comm_busy_time,
    compute_busy_time,
    overlap_efficiency,
    serving_breakdown,
    task_kind_breakdown,
)
from .registry import MetricsRegistry

__all__ = ["SCHEMA", "iteration_summary", "build_run_report", "write_run_report"]

SCHEMA = "janus-repro/run-report/v1"


def iteration_summary(result) -> Dict:
    """Headline numbers of one :class:`IterationResult`."""
    trace = result.trace
    scope = getattr(result, "iteration", None)
    summary = {
        "seconds": result.seconds,
        "all_to_all_seconds": result.all_to_all_seconds,
        "all_to_all_share": result.all_to_all_share,
        "overlap_efficiency": overlap_efficiency(trace, scope),
        "comm_busy_seconds": comm_busy_time(trace, scope),
        "compute_busy_seconds": compute_busy_time(trace, scope),
        "nic_egress_bytes": [float(b) for b in result.nic_egress_bytes],
        "cross_node_gb_per_machine": result.cross_node_gb_per_machine,
        "strategies": {
            str(block): name
            for block, name in sorted(result.strategies.items())
        },
    }
    stats = result.fault_stats
    if stats is not None:
        summary["faults"] = {
            "dropped_messages": stats.dropped_messages,
            "retries": stats.retries,
            "stale_fallbacks": stats.stale_fallbacks,
            "grad_failures": stats.grad_failures,
        }
    return summary


def build_run_report(
    results: List,
    registry: Optional[MetricsRegistry] = None,
    **meta,
) -> Dict:
    """Assemble the report dict for a sequence of iteration results.

    ``meta`` keys (model, paradigm, machines, ...) are recorded verbatim
    under ``"run"``.
    """
    iterations = [iteration_summary(result) for result in results]
    report = {
        "schema": SCHEMA,
        "run": dict(sorted(meta.items())),
        "iterations": iterations,
        "makespan_seconds": sum(entry["seconds"] for entry in iterations),
    }
    if registry is not None:
        report["metrics"] = registry.as_dict()
        tasks = task_kind_breakdown(registry)
        if tasks:
            report["tasks"] = tasks
        tuning = chunk_tuning_breakdown(registry)
        if tuning:
            report["chunk_tuning"] = tuning
        serving = serving_breakdown(registry)
        if serving:
            report["serving"] = serving
    return report


def write_run_report(path, report: Dict) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
