"""Functional distributed-training emulation (numerics + traffic accounting)."""

from .comm import CommLog, CommRecord
from .data_centric import DataCentricMoE
from .executor import MoEExecutor
from .expert_centric import ExpertCentricMoE
from .layout import ExpertPlacement, RankLayout
from .model import DistributedMoEBlock, DistributedMoETransformer
from .trainer import DistributedTrainer, StepMetrics, linear_warmup_schedule

__all__ = [
    "CommLog",
    "CommRecord",
    "DataCentricMoE",
    "DistributedMoEBlock",
    "DistributedMoETransformer",
    "DistributedTrainer",
    "ExpertCentricMoE",
    "ExpertPlacement",
    "MoEExecutor",
    "RankLayout",
    "StepMetrics",
    "linear_warmup_schedule",
]
