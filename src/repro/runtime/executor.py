"""Shared base for the two distributed MoE execution paradigms.

An executor owns the canonical model state of one MoE expert layer sharded
over an emulated cluster: a replicated gate and the canonical expert modules
with their home placement.  Subclasses implement ``run`` (the forward pass,
recording every emulated transfer in the :class:`~repro.runtime.comm.CommLog`)
and ``finish_backward`` (whatever gradient movement the paradigm needs after
``loss.backward()`` has produced gradients).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..models import Expert, TopKGate
from ..tensorlib import Tensor
from .comm import CommLog
from .layout import ExpertPlacement, RankLayout

__all__ = ["MoEExecutor"]


class MoEExecutor:
    """Distributed execution of one MoE expert layer (functional emulation)."""

    def __init__(
        self,
        hidden_dim: int,
        num_experts: int,
        top_k: int,
        layout: RankLayout,
        comm_log: Optional[CommLog] = None,
        ffn_mult: int = 4,
        dtype_bytes: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.layout = layout
        self.placement = ExpertPlacement(num_experts, layout.world_size)
        self.comm_log = comm_log if comm_log is not None else CommLog(layout)
        self.ffn_mult = ffn_mult
        self.dtype_bytes = dtype_bytes
        self.gate = TopKGate(hidden_dim, num_experts, top_k, rng=rng)
        self.experts = [
            Expert(hidden_dim, mult=ffn_mult, rng=rng)
            for _ in range(num_experts)
        ]
        self.last_decisions = None

    # -- cost model for the comm log -------------------------------------------

    @property
    def token_bytes(self) -> float:
        """Wire size of one token activation (H elements)."""
        return float(self.hidden_dim * self.dtype_bytes)

    @property
    def expert_bytes(self) -> float:
        """Wire size of one expert's weights / gradients (8H^2 elements)."""
        return float(
            2 * self.hidden_dim * self.ffn_mult * self.hidden_dim
            * self.dtype_bytes
        )

    # -- state synchronization (for equivalence testing) ------------------------

    def export_state(self) -> Dict[str, np.ndarray]:
        state = {f"gate.{k}": v for k, v in self.gate.state_dict().items()}
        for index, expert in enumerate(self.experts):
            for key, value in expert.state_dict().items():
                state[f"expert{index}.{key}"] = value
        return state

    def import_state(self, state: Dict[str, np.ndarray]) -> None:
        gate_state = {
            key[len("gate."):]: value
            for key, value in state.items()
            if key.startswith("gate.")
        }
        self.gate.load_state_dict(gate_state)
        for index, expert in enumerate(self.experts):
            prefix = f"expert{index}."
            expert.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in state.items()
                    if key.startswith(prefix)
                }
            )

    def parameters(self):
        params = list(self.gate.parameters())
        for expert in self.experts:
            params.extend(expert.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- paradigm interface ------------------------------------------------------

    def run(self, worker_tokens: List[Tensor]) -> List[Tensor]:
        """Forward one flat (N_r, H) token batch per worker."""
        raise NotImplementedError

    def finish_backward(self) -> None:
        """Perform paradigm-specific gradient movement after backward()."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------------

    def _route_all(self, worker_tokens: List[Tensor]):
        if len(worker_tokens) != self.layout.world_size:
            raise ValueError(
                f"expected {self.layout.world_size} worker batches, "
                f"got {len(worker_tokens)}"
            )
        decisions = [self.gate(tokens) for tokens in worker_tokens]
        self.last_decisions = decisions
        return decisions

    @staticmethod
    def _weighted_scatter(num_tokens, token_ids, slot_ids, expert_out, decision):
        weights = decision.combine_weights[token_ids, slot_ids]
        weighted = expert_out * weights.reshape(-1, 1)
        return Tensor.scatter_rows(num_tokens, token_ids, weighted)
