"""Training loop for the emulated distributed MoE model.

Owns the full step the paper's system performs each iteration: forward
through the paradigm executors, backward, paradigm-specific gradient
movement (``finish_backward``), optional gradient clipping, optimizer step
and learning-rate scheduling — plus per-step metrics including the
cross-machine traffic drawn from the CommLog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensorlib import Optimizer
from ..tensorlib.optim import clip_grad_norm, global_grad_norm
from .model import DistributedMoETransformer

__all__ = ["StepMetrics", "DistributedTrainer", "linear_warmup_schedule"]


@dataclass(frozen=True)
class StepMetrics:
    """Observables of one training step."""

    step: int
    loss: float
    grad_norm: float
    learning_rate: float
    cross_machine_bytes: float

    def __str__(self) -> str:
        return (
            f"step {self.step:4d}  loss {self.loss:.4f}  "
            f"|grad| {self.grad_norm:.3f}  lr {self.learning_rate:.2e}  "
            f"wire {self.cross_machine_bytes / 1e6:.1f} MB"
        )


def linear_warmup_schedule(
    base_lr: float, warmup_steps: int
) -> Callable[[int], float]:
    """LR ramps linearly to ``base_lr`` over ``warmup_steps`` steps."""
    if base_lr <= 0 or warmup_steps < 0:
        raise ValueError("base_lr must be positive, warmup_steps >= 0")

    def schedule(step: int) -> float:
        if warmup_steps == 0 or step >= warmup_steps:
            return base_lr
        return base_lr * (step + 1) / warmup_steps

    return schedule


class DistributedTrainer:
    """Drives training steps of a :class:`DistributedMoETransformer`."""

    def __init__(
        self,
        model: DistributedMoETransformer,
        optimizer: Optimizer,
        grad_clip: Optional[float] = None,
        lr_schedule: Optional[Callable[[int], float]] = None,
    ):
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
        self.model = model
        self.optimizer = optimizer
        self.grad_clip = grad_clip
        self.lr_schedule = lr_schedule
        self.step_count = 0
        self.history: List[StepMetrics] = []

    def step(
        self,
        worker_tokens: Sequence[np.ndarray],
        worker_targets: Sequence[np.ndarray],
    ) -> StepMetrics:
        """One synchronous training step across all emulated workers."""
        wire_before = self.model.comm_log.cross_machine_bytes()
        if self.lr_schedule is not None:
            self.optimizer.lr = self.lr_schedule(self.step_count)

        self.optimizer.zero_grad()
        loss = self.model.loss(list(worker_tokens), list(worker_targets))
        loss.backward()
        self.model.finish_backward()
        if self.grad_clip is not None:
            grad_norm = clip_grad_norm(self.optimizer.parameters, self.grad_clip)
        else:
            grad_norm = global_grad_norm(self.optimizer.parameters)
        self.optimizer.step()

        metrics = StepMetrics(
            step=self.step_count,
            loss=loss.item(),
            grad_norm=grad_norm,
            learning_rate=self.optimizer.lr,
            cross_machine_bytes=(
                self.model.comm_log.cross_machine_bytes() - wire_before
            ),
        )
        self.history.append(metrics)
        self.step_count += 1
        return metrics

    def fit(
        self,
        data: Iterable[Tuple[Sequence[np.ndarray], Sequence[np.ndarray]]],
        steps: Optional[int] = None,
        log_every: int = 0,
    ) -> List[StepMetrics]:
        """Run steps over ``data`` (an iterable of (tokens, targets))."""
        metrics: List[StepMetrics] = []
        for index, (tokens, targets) in enumerate(data):
            if steps is not None and index >= steps:
                break
            result = self.step(tokens, targets)
            metrics.append(result)
            if log_every and result.step % log_every == 0:
                print(result)
        return metrics

    @property
    def last_loss(self) -> Optional[float]:
        return self.history[-1].loss if self.history else None
