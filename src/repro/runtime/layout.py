"""Logical worker layout and expert placement for the functional runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RankLayout", "ExpertPlacement"]


@dataclass(frozen=True)
class RankLayout:
    """Maps global worker ranks onto machines (n machines x m workers)."""

    num_machines: int
    workers_per_machine: int

    def __post_init__(self):
        if self.num_machines <= 0 or self.workers_per_machine <= 0:
            raise ValueError("layout dimensions must be positive")

    @property
    def world_size(self) -> int:
        return self.num_machines * self.workers_per_machine

    def machine_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.workers_per_machine

    def local_rank_of(self, rank: int) -> int:
        self._check(rank)
        return rank % self.workers_per_machine

    def ranks_of_machine(self, machine: int) -> List[int]:
        if not 0 <= machine < self.num_machines:
            raise ValueError(f"machine {machine} out of range")
        start = machine * self.workers_per_machine
        return list(range(start, start + self.workers_per_machine))

    def same_machine(self, rank_a: int, rank_b: int) -> bool:
        return self.machine_of(rank_a) == self.machine_of(rank_b)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")


@dataclass(frozen=True)
class ExpertPlacement:
    """Contiguous round-robin placement of experts on workers.

    Worker ``r`` owns experts ``[r*E, (r+1)*E)`` where
    ``E = num_experts / world_size`` — the layout assumed by the paper's
    Algorithm 1 (``rank(i)`` is the worker hosting expert ``i``).
    """

    num_experts: int
    world_size: int

    def __post_init__(self):
        if self.num_experts <= 0 or self.world_size <= 0:
            raise ValueError("placement dimensions must be positive")
        if self.num_experts % self.world_size != 0:
            raise ValueError(
                f"{self.num_experts} experts cannot be evenly placed on "
                f"{self.world_size} workers"
            )

    @property
    def experts_per_worker(self) -> int:
        return self.num_experts // self.world_size

    def owner(self, expert: int) -> int:
        self._check(expert)
        return expert // self.experts_per_worker

    def experts_of(self, rank: int) -> Tuple[int, ...]:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        start = rank * self.experts_per_worker
        return tuple(range(start, start + self.experts_per_worker))

    def is_local(self, expert: int, rank: int) -> bool:
        return self.owner(expert) == rank

    def _check(self, expert: int) -> None:
        if not 0 <= expert < self.num_experts:
            raise ValueError(
                f"expert {expert} out of range [0, {self.num_experts})"
            )
