"""Expert-centric (All-to-All) execution of an MoE layer.

The classic expert-parallel dataflow (paper §2.2, Fig. 2a): experts stay on
their home workers; tokens are shipped to them with an All-to-All, computed,
and shipped back with a second All-to-All.  The backward pass moves the same
volumes in mirror directions.
"""

from __future__ import annotations

from typing import List

from ..models import combine_sorted, gather_slots
from ..tensorlib import Tensor
from .executor import MoEExecutor

__all__ = ["ExpertCentricMoE"]


class ExpertCentricMoE(MoEExecutor):
    """All-to-All token exchange; experts never move."""

    def run(self, worker_tokens: List[Tensor]) -> List[Tensor]:
        decisions = self._route_all(worker_tokens)
        self._run_start_index = len(self.comm_log.records)
        self._backward_done = False
        world = self.layout.world_size
        plans = [decision.dispatch_plan() for decision in decisions]

        # One gather per worker puts its routed tokens in sorted-by-expert
        # order; every expert's share of a worker is then a contiguous
        # segment (zero-copy slice) of that gather.
        gathered = [
            gather_slots(tokens, plan) if plan.total_routed else None
            for tokens, plan in zip(worker_tokens, plans)
        ]

        # Phase 1+2+3 fused per expert: slice every worker's segment for
        # the expert (All-to-All dispatch), run the canonical expert once
        # on the concatenated batch (exactly what the owner GPU does), then
        # return each worker its output slice (All-to-All combine).  The
        # returned slices land in expert-ascending order — exactly the
        # worker's sorted plan order — so each worker combines with one
        # weighted scatter-add at the end.
        returned: List[List[Tensor]] = [[] for _ in range(world)]
        for expert_id, expert in enumerate(self.experts):
            owner = self.placement.owner(expert_id)
            pieces = []
            meta = []
            for rank in range(world):
                count = plans[rank].count(expert_id)
                if count == 0:
                    continue
                if rank != owner:
                    self.comm_log.record(
                        "dispatch", rank, owner, count * self.token_bytes
                    )
                start, stop = plans[rank].segment_bounds(expert_id)
                pieces.append(gathered[rank].row_slice(start, stop))
                meta.append((rank, count))
            if not pieces:
                continue
            batch = Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
            expert_out = expert(batch)
            offset = 0
            for rank, count in meta:
                piece = expert_out.row_slice(offset, offset + count)
                offset += count
                if rank != owner:
                    self.comm_log.record(
                        "combine", owner, rank, count * self.token_bytes
                    )
                returned[rank].append(piece)

        outputs: List[Tensor] = []
        for rank, tokens in enumerate(worker_tokens):
            pieces = returned[rank]
            if not pieces:
                outputs.append(tokens * 0.0)
                continue
            stacked = Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
            outputs.append(
                combine_sorted(
                    tokens.shape[0], plans[rank], decisions[rank], stacked
                )
            )
        return outputs

    def finish_backward(self) -> None:
        """Record the backward All-to-Alls.

        Autograd already moved the numbers (the whole emulation shares one
        graph); what the physical system would move is the mirror of the
        forward traffic: output-gradients travel the combine route in
        reverse and token-gradients travel the dispatch route in reverse.
        """
        if getattr(self, "_backward_done", True):
            raise RuntimeError("finish_backward() must follow exactly one run()")
        self._backward_done = True
        forward = [
            record
            for record in self.comm_log.records[self._run_start_index:]
            if record.kind in ("dispatch", "combine")
        ]
        for record in forward:
            if record.kind == "combine":
                self.comm_log.record(
                    "dispatch_grad", record.dst_rank, record.src_rank,
                    record.num_bytes,
                )
            else:
                self.comm_log.record(
                    "combine_grad", record.dst_rank, record.src_rank,
                    record.num_bytes,
                )
