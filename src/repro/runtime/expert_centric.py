"""Expert-centric (All-to-All) execution of an MoE layer.

The classic expert-parallel dataflow (paper §2.2, Fig. 2a): experts stay on
their home workers; tokens are shipped to them with an All-to-All, computed,
and shipped back with a second All-to-All.  The backward pass moves the same
volumes in mirror directions.
"""

from __future__ import annotations

from typing import List

from ..tensorlib import Tensor
from .executor import MoEExecutor

__all__ = ["ExpertCentricMoE"]


class ExpertCentricMoE(MoEExecutor):
    """All-to-All token exchange; experts never move."""

    def run(self, worker_tokens: List[Tensor]) -> List[Tensor]:
        decisions = self._route_all(worker_tokens)
        self._run_start_index = len(self.comm_log.records)
        self._backward_done = False
        world = self.layout.world_size
        outputs: List[Tensor] = [None] * world

        # Phase 1+2+3 fused per expert: gather every worker's tokens for the
        # expert (All-to-All dispatch), run the canonical expert once on the
        # concatenated batch (exactly what the owner GPU does), then return
        # and combine each slice (All-to-All combine).
        for expert_id, expert in enumerate(self.experts):
            owner = self.placement.owner(expert_id)
            pieces = []
            meta = []
            for rank, (tokens, decision) in enumerate(
                zip(worker_tokens, decisions)
            ):
                token_ids, slot_ids = decision.slots_for_expert(expert_id)
                if token_ids.size == 0:
                    continue
                if rank != owner:
                    self.comm_log.record(
                        "dispatch", rank, owner,
                        token_ids.size * self.token_bytes,
                    )
                pieces.append(tokens.gather_rows(token_ids))
                meta.append((rank, token_ids, slot_ids))
            if not pieces:
                continue
            batch = Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
            expert_out = expert(batch)
            offset = 0
            for rank, token_ids, slot_ids in meta:
                count = token_ids.size
                piece = expert_out[offset: offset + count]
                offset += count
                if rank != owner:
                    self.comm_log.record(
                        "combine", owner, rank, count * self.token_bytes
                    )
                contribution = self._weighted_scatter(
                    worker_tokens[rank].shape[0],
                    token_ids,
                    slot_ids,
                    piece,
                    decisions[rank],
                )
                if outputs[rank] is None:
                    outputs[rank] = contribution
                else:
                    outputs[rank] = outputs[rank] + contribution

        for rank, tokens in enumerate(worker_tokens):
            if outputs[rank] is None:
                outputs[rank] = tokens * 0.0
        return outputs

    def finish_backward(self) -> None:
        """Record the backward All-to-Alls.

        Autograd already moved the numbers (the whole emulation shares one
        graph); what the physical system would move is the mirror of the
        forward traffic: output-gradients travel the combine route in
        reverse and token-gradients travel the dispatch route in reverse.
        """
        if getattr(self, "_backward_done", True):
            raise RuntimeError("finish_backward() must follow exactly one run()")
        self._backward_done = True
        forward = [
            record
            for record in self.comm_log.records[self._run_start_index:]
            if record.kind in ("dispatch", "combine")
        ]
        for record in forward:
            if record.kind == "combine":
                self.comm_log.record(
                    "dispatch_grad", record.dst_rank, record.src_rank,
                    record.num_bytes,
                )
            else:
                self.comm_log.record(
                    "combine_grad", record.dst_rank, record.src_rank,
                    record.num_bytes,
                )
