"""Data-centric (expert-pulling) execution of an MoE layer.

The paper's proposed dataflow (§3.2, Fig. 2b): tokens stay on their home
workers; expert weights are pulled to where the tokens are.  Pulls are
deduplicated per machine by the Cache Manager (hierarchical communication,
§5.1.2), and expert gradients are pre-reduced per machine before being
pushed back to the expert's home worker.

Functionally this module is the ground-truth emulation: each machine imports
a *copy* of every non-resident expert's weights (a replica module), computes
on it, and at the end of the backward pass ships the replica's accumulated
gradients home — exactly the physical data movement of Janus, so tests can
assert byte-for-byte traffic and value-for-value equivalence against the
expert-centric executor.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..models import Expert
from ..tensorlib import Tensor
from .executor import MoEExecutor

__all__ = ["DataCentricMoE"]


class DataCentricMoE(MoEExecutor):
    """Pull-based expert movement with per-machine caching."""

    def run(self, worker_tokens: List[Tensor]) -> List[Tensor]:
        decisions = self._route_all(worker_tokens)
        self._backward_done = False
        # (machine, expert) -> module used by that machine this iteration.
        self._machine_experts: Dict[Tuple[int, int], Expert] = {}
        # (machine, expert) replicas that must ship gradients home; maps to
        # the rank that performed the cross-machine (or NVLink) pull.
        self._replicas: Dict[Tuple[int, int], Expert] = {}
        # Per-machine record of which worker pulled each expert first (the
        # cache-fill), for traffic attribution.
        self._fetched_by: Dict[Tuple[int, int], int] = {}

        outputs: List[Tensor] = []
        for rank, (tokens, decision) in enumerate(zip(worker_tokens, decisions)):
            num_tokens = tokens.shape[0]
            output = None
            for expert_id in range(self.num_experts):
                token_ids, slot_ids = decision.slots_for_expert(expert_id)
                if token_ids.size == 0:
                    continue
                expert = self._fetch(expert_id, rank)
                expert_out = expert(tokens.gather_rows(token_ids))
                contribution = self._weighted_scatter(
                    num_tokens, token_ids, slot_ids, expert_out, decision
                )
                output = contribution if output is None else output + contribution
            outputs.append(output if output is not None else tokens * 0.0)
        return outputs

    def _fetch(self, expert_id: int, rank: int) -> Expert:
        """Return the expert module worker ``rank`` computes with,
        recording the pull traffic the fetch would generate."""
        owner = self.placement.owner(expert_id)
        if owner == rank:
            # Resident expert: no movement, compute on the canonical module.
            return self.experts[expert_id]

        machine = self.layout.machine_of(rank)
        key = (machine, expert_id)
        cached = key in self._machine_experts
        if not cached:
            if self.layout.machine_of(owner) == machine:
                # Intra-machine: pull weights over NVLink from the owner GPU.
                self.comm_log.record(
                    "expert_pull", owner, rank, self.expert_bytes
                )
            else:
                # Cross-machine: the Inter-Node Scheduler pulls the expert
                # once into the machine's Cache Manager (§5.1.2).
                self.comm_log.record(
                    "expert_pull", owner, rank, self.expert_bytes
                )
            replica = Expert(self.hidden_dim, mult=self.ffn_mult)
            replica.import_weights(self.experts[expert_id].export_weights())
            self._machine_experts[key] = replica
            self._replicas[key] = replica
            self._fetched_by[key] = rank
        elif self._fetched_by[key] != rank:
            # Cache hit by another worker of the same machine: the expert is
            # served from the machine cache (CPU memory via PCIe or a peer
            # GPU via NVLink) — intra-machine traffic only.
            peer = self._fetched_by[key]
            self.comm_log.record("expert_pull", peer, rank, self.expert_bytes)
            self._fetched_by[key] = rank  # only charge the copy once per worker
        return self._machine_experts[key]

    def finish_backward(self) -> None:
        """Ship pre-reduced expert gradients back to their home workers.

        Each machine accumulated the gradients of all its workers in one
        replica per expert (the pre-reduction of §5.1.2), so exactly one
        gradient payload per (machine, pulled expert) travels home.
        """
        if getattr(self, "_backward_done", True):
            raise RuntimeError("finish_backward() must follow exactly one run()")
        self._backward_done = True
        for (machine, expert_id), replica in self._replicas.items():
            owner = self.placement.owner(expert_id)
            sender = self._fetched_by[(machine, expert_id)]
            self.comm_log.record(
                "grad_push", sender, owner, self.expert_bytes
            )
            self.experts[expert_id].apply_gradients(replica.collect_gradients())

    # -- introspection ------------------------------------------------------------

    def pulled_expert_count(self) -> int:
        """Distinct (machine, expert) pulls in the last iteration."""
        return len(self._replicas)
