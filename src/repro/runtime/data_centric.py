"""Data-centric (expert-pulling) execution of an MoE layer.

The paper's proposed dataflow (§3.2, Fig. 2b): tokens stay on their home
workers; expert weights are pulled to where the tokens are.  Pulls are
deduplicated per machine by the Cache Manager (hierarchical communication,
§5.1.2), and expert gradients are pre-reduced per machine before being
pushed back to the expert's home worker.

Functionally this module is the ground-truth emulation: each machine imports
a *copy* of every non-resident expert's weights (a replica module), computes
on it, and at the end of the backward pass ships the replica's accumulated
gradients home — exactly the physical data movement of Janus, so tests can
assert byte-for-byte traffic and value-for-value equivalence against the
expert-centric executor.

Replica modules are pooled across iterations: the first pull of a
(machine, expert) pair constructs the module, later iterations only
refresh its weight buffers in place (:meth:`~repro.models.Expert.
refresh_from`).  :meth:`DataCentricMoE.invalidate_replicas` drops the pool
when the canonical state changes out-of-band (checkpoint import, fault
recovery swapping expert shards).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..models import Expert, combine_sorted, gather_slots
from ..tensorlib import Tensor
from .executor import MoEExecutor

__all__ = ["DataCentricMoE"]


class DataCentricMoE(MoEExecutor):
    """Pull-based expert movement with per-machine caching."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # (machine, expert) -> pooled replica module, reused across
        # iterations so run() only refreshes weight buffers in place.
        self._replica_pool: Dict[Tuple[int, int], Expert] = {}

    def run(self, worker_tokens: List[Tensor]) -> List[Tensor]:
        decisions = self._route_all(worker_tokens)
        self._backward_done = False
        # (machine, expert) -> module used by that machine this iteration.
        self._machine_experts: Dict[Tuple[int, int], Expert] = {}
        # (machine, expert) replicas that must ship gradients home.
        self._replicas: Dict[Tuple[int, int], Expert] = {}
        # Worker that performed the machine's cache-fill pull: the machine's
        # representative for the pre-reduced grad_push home.
        self._fill_rank: Dict[Tuple[int, int], int] = {}
        # Last worker the machine cache served (cache hits are charged as a
        # peer-to-peer copy from the previous reader, once per worker).
        self._served_rank: Dict[Tuple[int, int], int] = {}

        outputs: List[Tensor] = []
        for rank, (tokens, decision) in enumerate(zip(worker_tokens, decisions)):
            plan = decision.dispatch_plan()
            if plan.total_routed == 0:
                outputs.append(tokens * 0.0)
                continue
            # One gather puts this worker's routed tokens in sorted-by-
            # expert order; each pulled expert computes on a contiguous
            # zero-copy segment and one weighted scatter-add combines.
            gathered = gather_slots(tokens, plan)
            pieces = []
            for expert_id in plan.experts_present():
                expert = self._fetch(expert_id, rank)
                start, stop = plan.segment_bounds(expert_id)
                pieces.append(expert(gathered.row_slice(start, stop)))
            stacked = (
                Tensor.concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
            )
            outputs.append(
                combine_sorted(tokens.shape[0], plan, decision, stacked)
            )
        return outputs

    def _fetch(self, expert_id: int, rank: int) -> Expert:
        """Return the expert module worker ``rank`` computes with,
        recording the pull traffic the fetch would generate."""
        owner = self.placement.owner(expert_id)
        if owner == rank:
            # Resident expert: no movement, compute on the canonical module.
            return self.experts[expert_id]

        machine = self.layout.machine_of(rank)
        key = (machine, expert_id)
        replica = self._machine_experts.get(key)
        if replica is None:
            # First pull on this machine: over NVLink when the owner GPU is
            # a same-machine peer, otherwise the Inter-Node Scheduler pulls
            # the expert once into the machine's Cache Manager (§5.1.2).
            # One record covers both — the CommLog's aggregations separate
            # the NVLink and RDMA classes by the (src, dst) machine pair.
            self.comm_log.record("expert_pull", owner, rank, self.expert_bytes)
            replica = self._acquire_replica(key, expert_id)
            self._machine_experts[key] = replica
            self._replicas[key] = replica
            self._fill_rank[key] = rank
            self._served_rank[key] = rank
        elif self._served_rank[key] != rank:
            # Cache hit by another worker of the same machine: the expert is
            # served from the machine cache (CPU memory via PCIe or a peer
            # GPU via NVLink) — intra-machine traffic only, charged once per
            # worker.  This must not disturb the fill rank, which stays the
            # machine's grad_push representative.
            peer = self._served_rank[key]
            self.comm_log.record("expert_pull", peer, rank, self.expert_bytes)
            self._served_rank[key] = rank
        return replica

    def _acquire_replica(self, key: Tuple[int, int], expert_id: int) -> Expert:
        """Pooled replica with this iteration's canonical weights."""
        replica = self._replica_pool.get(key)
        if replica is None:
            replica = Expert(self.hidden_dim, mult=self.ffn_mult)
            self._replica_pool[key] = replica
        replica.refresh_from(self.experts[expert_id])
        return replica

    def invalidate_replicas(self) -> None:
        """Drop pooled replica modules.

        Call when canonical expert state changes shape/dtype out-of-band
        (checkpoint import, degradation paths re-homing experts); normal
        optimizer steps need no invalidation because every run() refreshes
        replica weights from the canonical modules.
        """
        self._replica_pool.clear()

    def import_state(self, state) -> None:
        super().import_state(state)
        self.invalidate_replicas()

    def finish_backward(self) -> None:
        """Ship pre-reduced expert gradients back to their home workers.

        Each machine accumulated the gradients of all its workers in one
        replica per expert (the pre-reduction of §5.1.2), so exactly one
        gradient payload per (machine, pulled expert) travels home — sent
        by the worker that performed the cache-fill pull.
        """
        if getattr(self, "_backward_done", True):
            raise RuntimeError("finish_backward() must follow exactly one run()")
        self._backward_done = True
        for (machine, expert_id), replica in self._replicas.items():
            owner = self.placement.owner(expert_id)
            sender = self._fill_rank[(machine, expert_id)]
            self.comm_log.record(
                "grad_push", sender, owner, self.expert_bytes
            )
            self.experts[expert_id].apply_gradients(replica.collect_gradients())

    # -- introspection ------------------------------------------------------------

    def pulled_expert_count(self) -> int:
        """Distinct (machine, expert) pulls in the last iteration."""
        return len(self._replicas)
