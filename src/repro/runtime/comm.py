"""Communication accounting for the functional runtime.

Every byte the emulated workers exchange is recorded here, so tests can
check the emulated traffic against the closed forms of §5.1.3 and the
benchmarks can regenerate Table 1 from an actual run rather than from the
formula alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .layout import RankLayout

__all__ = ["CommRecord", "CommLog"]

KINDS = (
    "dispatch",        # EC forward: tokens to expert owners
    "combine",         # EC forward: expert outputs back to token owners
    "dispatch_grad",   # EC backward: grads of expert outputs to owners
    "combine_grad",    # EC backward: grads of tokens back
    "expert_pull",     # DC forward: expert weights pulled
    "grad_push",       # DC backward: pre-reduced expert grads pushed home
)


@dataclass(frozen=True)
class CommRecord:
    kind: str
    src_rank: int
    dst_rank: int
    num_bytes: float

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown record kind: {self.kind!r}")
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")


class CommLog:
    """Accumulates :class:`CommRecord` entries for one emulated run."""

    def __init__(self, layout: RankLayout):
        self.layout = layout
        self.records: List[CommRecord] = []
        # Running totals so per-step metrics don't rescan the whole history
        # (the log grows without bound over a training run).
        self._total = 0.0
        self._cross_machine_total = 0.0

    def record(self, kind: str, src_rank: int, dst_rank: int, num_bytes: float) -> None:
        self.layout._check(src_rank)
        self.layout._check(dst_rank)
        self.records.append(CommRecord(kind, src_rank, dst_rank, num_bytes))
        self._total += num_bytes
        if not self.layout.same_machine(src_rank, dst_rank):
            self._cross_machine_total += num_bytes

    def clear(self) -> None:
        self.records.clear()
        self._total = 0.0
        self._cross_machine_total = 0.0

    # -- aggregation -----------------------------------------------------------

    def total_bytes(self, kinds: Optional[List[str]] = None) -> float:
        if kinds is None:
            return self._total
        return sum(
            record.num_bytes
            for record in self.records
            if record.kind in kinds
        )

    def cross_machine_bytes(self, kinds: Optional[List[str]] = None) -> float:
        if kinds is None:
            return self._cross_machine_total
        return sum(
            record.num_bytes
            for record in self.records
            if record.kind in kinds
            and not self.layout.same_machine(record.src_rank, record.dst_rank)
        )

    def intra_machine_bytes(self, kinds: Optional[List[str]] = None) -> float:
        """Bytes moved between ranks of the same machine (NVLink/PCIe
        class traffic, e.g. cache-manager expert serves)."""
        return sum(
            record.num_bytes
            for record in self.records
            if (kinds is None or record.kind in kinds)
            and record.src_rank != record.dst_rank
            and self.layout.same_machine(record.src_rank, record.dst_rank)
        )

    def machine_egress_bytes(self, kinds: Optional[List[str]] = None) -> np.ndarray:
        """Cross-machine bytes sent by each machine."""
        egress = np.zeros(self.layout.num_machines)
        for record in self.records:
            if kinds is not None and record.kind not in kinds:
                continue
            src = self.layout.machine_of(record.src_rank)
            dst = self.layout.machine_of(record.dst_rank)
            if src != dst:
                egress[src] += record.num_bytes
        return egress

    def machine_ingress_bytes(self, kinds: Optional[List[str]] = None) -> np.ndarray:
        """Cross-machine bytes received by each machine."""
        ingress = np.zeros(self.layout.num_machines)
        for record in self.records:
            if kinds is not None and record.kind not in kinds:
                continue
            src = self.layout.machine_of(record.src_rank)
            dst = self.layout.machine_of(record.dst_rank)
            if src != dst:
                ingress[dst] += record.num_bytes
        return ingress

    def rank_matrix(self, kinds: Optional[List[str]] = None) -> np.ndarray:
        """(world, world) matrix of bytes sent rank->rank."""
        world = self.layout.world_size
        matrix = np.zeros((world, world))
        for record in self.records:
            if kinds is None or record.kind in kinds:
                matrix[record.src_rank, record.dst_rank] += record.num_bytes
        return matrix

    def by_kind(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.kind] = totals.get(record.kind, 0.0) + record.num_bytes
        return totals
