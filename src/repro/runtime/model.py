"""Distributed (emulated) MoE transformer.

Runs a full model over an emulated cluster in layer-synchronous fashion:
dense blocks are data-parallel (the replica weights are shared objects, so
gradient accumulation across workers models the all-reduce), and each MoE
block's expert layer executes through a paradigm executor — expert-centric,
data-centric, or per-block unified choice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..config import ModelConfig
from ..models import MoETransformer, MultiHeadAttention
from ..models.transformer import TransformerBlock
from ..tensorlib import Embedding, LayerNorm, Linear, Tensor
from ..tensorlib import functional as F
from .comm import CommLog
from .data_centric import DataCentricMoE
from .executor import MoEExecutor
from .expert_centric import ExpertCentricMoE
from .layout import RankLayout

__all__ = ["DistributedMoEBlock", "DistributedMoETransformer"]

ExecutorFactory = Callable[[int], MoEExecutor]


class DistributedMoEBlock:
    """Attention (replicated) + expert layer (sharded via an executor)."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        executor: MoEExecutor,
        causal: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.ln1 = LayerNorm(hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim, num_heads, causal=causal, rng=rng
        )
        self.ln2 = LayerNorm(hidden_dim)
        self.executor = executor

    def forward_all(self, worker_activations: List[Tensor]) -> List[Tensor]:
        post_attention = [
            x + self.attention(self.ln1(x)) for x in worker_activations
        ]
        shapes = [h.shape for h in post_attention]
        flat_tokens = [
            self.ln2(h).reshape(h.shape[0] * h.shape[1], h.shape[2])
            for h in post_attention
        ]
        mixed = self.executor.run(flat_tokens)
        return [
            h + out.reshape(*shape)
            for h, out, shape in zip(post_attention, mixed, shapes)
        ]

    def forward_stacked(self, x: Tensor, worker_batches: List[int]) -> Tensor:
        """Forward with every worker's activations stacked on the batch
        axis (worker-major).

        The replicated attention half runs once on the stack — attention,
        LayerNorm and the FFN matmuls are all per-sequence/per-token, so
        each worker's rows come out identical to a per-worker pass.  Only
        the expert layer splits back into per-worker views (the executor's
        routing and traffic accounting are per rank).
        """
        h = x + self.attention(self.ln1(x))
        total_batch, seq, hidden = h.shape
        flat = self.ln2(h).reshape(total_batch * seq, hidden)
        worker_flat = []
        offset = 0
        for batch in worker_batches:
            rows = batch * seq
            worker_flat.append(flat.row_slice(offset, offset + rows))
            offset += rows
        mixed = self.executor.run(worker_flat)
        combined = Tensor.concat(mixed, axis=0) if len(mixed) > 1 else mixed[0]
        return h + combined.reshape(total_batch, seq, hidden)

    def parameters(self):
        params = []
        params.extend(self.ln1.parameters())
        params.extend(self.attention.parameters())
        params.extend(self.ln2.parameters())
        params.extend(self.executor.parameters())
        return params


class DistributedMoETransformer:
    """Full MoE model executing over an emulated multi-worker cluster."""

    def __init__(
        self,
        config: ModelConfig,
        layout: RankLayout,
        paradigm_for_block: Optional[Dict[int, str]] = None,
        comm_log: Optional[CommLog] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        """``paradigm_for_block`` maps MoE block index to "expert-centric" or
        "data-centric"; unlisted blocks default to expert-centric."""
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.layout = layout
        self.comm_log = comm_log if comm_log is not None else CommLog(layout)
        paradigm_for_block = paradigm_for_block or {}

        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim, rng=rng)
        self.position_embedding = Embedding(config.seq_len, config.hidden_dim, rng=rng)
        self.blocks: List[object] = []
        for index in range(config.num_blocks):
            if config.is_moe_block(index):
                paradigm = paradigm_for_block.get(index, "expert-centric")
                executor = self._make_executor(paradigm, index, rng)
                block = DistributedMoEBlock(
                    config.hidden_dim,
                    config.num_heads,
                    executor,
                    causal=config.causal,
                    rng=rng,
                )
            else:
                block = TransformerBlock(
                    config.hidden_dim,
                    config.num_heads,
                    causal=config.causal,
                    ffn_mult=config.ffn_mult,
                    rng=rng,
                )
            self.blocks.append(block)
        self.final_norm = LayerNorm(config.hidden_dim)
        self.lm_head = Linear(config.hidden_dim, config.vocab_size, bias=False, rng=rng)

    def _make_executor(self, paradigm: str, block_index: int, rng) -> MoEExecutor:
        kwargs = dict(
            hidden_dim=self.config.hidden_dim,
            num_experts=self.config.num_experts(block_index),
            top_k=self.config.top_k,
            layout=self.layout,
            comm_log=self.comm_log,
            ffn_mult=self.config.ffn_mult,
            dtype_bytes=self.config.dtype_bytes,
            rng=rng,
        )
        if paradigm == "data-centric":
            return DataCentricMoE(**kwargs)
        if paradigm == "expert-centric":
            return ExpertCentricMoE(**kwargs)
        raise ValueError(f"unknown paradigm: {paradigm!r}")

    # -- execution ------------------------------------------------------------

    def forward(self, worker_token_ids: List[np.ndarray]) -> List[Tensor]:
        """One (batch, seq) int array per worker -> one logits tensor each."""
        if len(worker_token_ids) != self.layout.world_size:
            raise ValueError(
                f"expected {self.layout.world_size} worker batches, "
                f"got {len(worker_token_ids)}"
            )
        batches = [np.asarray(token_ids) for token_ids in worker_token_ids]
        # All replicated (data-parallel) modules run once on the worker-
        # major stack — numerically identical per worker, one graph node
        # per op instead of one per worker.  Executors still see their
        # per-worker token slices.
        worker_batches = [token_ids.shape[0] for token_ids in batches]
        stacked_ids = np.concatenate(batches, axis=0)
        total_batch, seq = stacked_ids.shape
        # (seq, H) position rows broadcast over the batch axis; backward is
        # a sum-reduce instead of a per-row scatter-add.
        x = self.token_embedding(stacked_ids) + self.position_embedding(
            np.arange(seq)
        )
        for block in self.blocks:
            if isinstance(block, DistributedMoEBlock):
                x = block.forward_stacked(x, worker_batches)
            else:
                x = block(x)
        logits = self.lm_head(self.final_norm(x))
        worker_logits = []
        offset = 0
        for batch in worker_batches:
            worker_logits.append(logits.row_slice(offset, offset + batch))
            offset += batch
        return worker_logits

    def loss(
        self,
        worker_token_ids: List[np.ndarray],
        worker_targets: List[np.ndarray],
    ) -> Tensor:
        """Mean cross-entropy over workers (data-parallel averaging)."""
        logits = self.forward(worker_token_ids)
        total = None
        for worker_logits, targets in zip(logits, worker_targets):
            batch, seq, vocab = worker_logits.shape
            flat = worker_logits.reshape(batch * seq, vocab)
            ce = F.cross_entropy(flat, np.asarray(targets).reshape(-1))
            total = ce if total is None else total + ce
        return total * (1.0 / self.layout.world_size)

    def finish_backward(self) -> None:
        for block in self.blocks:
            if isinstance(block, DistributedMoEBlock):
                block.executor.finish_backward()

    # -- parameters and state -----------------------------------------------------

    def parameters(self):
        params = []
        params.extend(self.token_embedding.parameters())
        params.extend(self.position_embedding.parameters())
        for block in self.blocks:
            params.extend(block.parameters())
        params.extend(self.final_norm.parameters())
        params.extend(self.lm_head.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self):
        """Flat name -> array mapping over every component (for
        checkpointing via :mod:`repro.tensorlib.serialization`)."""
        state = {}
        for prefix, module in self._named_components():
            for key, value in module.state_dict().items():
                state[f"{prefix}.{key}"] = value
        for index, block in enumerate(self.blocks):
            if isinstance(block, DistributedMoEBlock):
                for key, value in block.executor.export_state().items():
                    state[f"block{index}.moe.{key}"] = value
        return state

    def load_state_dict(self, state) -> None:
        for prefix, module in self._named_components():
            module.load_state_dict(
                {
                    key[len(prefix) + 1:]: value
                    for key, value in state.items()
                    if key.startswith(f"{prefix}.")
                    and ".moe." not in key
                }
            )
        for index, block in enumerate(self.blocks):
            if isinstance(block, DistributedMoEBlock):
                prefix = f"block{index}.moe."
                block.executor.import_state(
                    {
                        key[len(prefix):]: value
                        for key, value in state.items()
                        if key.startswith(prefix)
                    }
                )

    def _named_components(self):
        yield "token_embedding", self.token_embedding
        yield "position_embedding", self.position_embedding
        for index, block in enumerate(self.blocks):
            if isinstance(block, DistributedMoEBlock):
                yield f"block{index}.ln1", block.ln1
                yield f"block{index}.attention", block.attention
                yield f"block{index}.ln2", block.ln2
            else:
                yield f"block{index}", block
        yield "final_norm", self.final_norm
        yield "lm_head", self.lm_head

    def load_from_reference(self, reference: MoETransformer) -> None:
        """Copy weights from a single-process reference model."""
        from ..models import MoEBlock

        if reference.config.num_blocks != self.config.num_blocks:
            raise ValueError("block count mismatch with reference model")
        self.token_embedding.load_state_dict(reference.token_embedding.state_dict())
        self.position_embedding.load_state_dict(
            reference.position_embedding.state_dict()
        )
        for mine, theirs in zip(self.blocks, reference.blocks):
            if isinstance(mine, DistributedMoEBlock):
                if not isinstance(theirs, MoEBlock):
                    raise ValueError("block kind mismatch with reference model")
                mine.ln1.load_state_dict(theirs.ln1.state_dict())
                mine.attention.load_state_dict(theirs.attention.state_dict())
                mine.ln2.load_state_dict(theirs.ln2.state_dict())
                mine.executor.gate.load_state_dict(theirs.moe.gate.state_dict())
                for my_expert, their_expert in zip(
                    mine.executor.experts, theirs.moe.experts
                ):
                    my_expert.load_state_dict(their_expert.state_dict())
            else:
                mine.load_state_dict(theirs.state_dict())
        self.final_norm.load_state_dict(reference.final_norm.state_dict())
        self.lm_head.load_state_dict(reference.lm_head.state_dict())
