"""Reproduction of Janus (SIGCOMM 2023): a unified distributed training
framework for sparse Mixture-of-Experts models.

Layers:

* ``repro.simkit``    — discrete-event simulation kernel
* ``repro.cluster``   — static GPU-cluster topology model
* ``repro.netsim``    — flow-level network simulation (max-min fair)
* ``repro.tensorlib`` — numpy autograd engine + nn modules
* ``repro.models``    — transformer / MoE model zoo
* ``repro.runtime``   — functional multi-worker emulation (numerics + traffic)
* ``repro.core``      — Janus: paradigm selection, schedulers, timed engines
* ``repro.analysis``  — traffic tables and report formatting
* ``repro.workloads`` — synthetic token batches and routing distributions
* ``repro.trace``     — span/event tracing of simulated iterations
* ``repro.serving``   — request-level inference serving (continuous
  batching, disaggregated prefill/decode, SLO traffic)
"""

from . import (
    analysis,
    cluster,
    comm,
    config,
    core,
    models,
    netsim,
    runtime,
    serving,
    simkit,
    tensorlib,
    trace,
    units,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "cluster",
    "comm",
    "config",
    "core",
    "models",
    "netsim",
    "runtime",
    "serving",
    "simkit",
    "tensorlib",
    "trace",
    "units",
    "workloads",
    "__version__",
]
