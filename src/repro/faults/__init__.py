"""Deterministic fault injection and resilience policies.

The subsystem that turns the reproduction from happy-path-only into a
chaos-testable system: :class:`FaultPlan` describes seeded, time-windowed
adverse conditions (link degradation/flaps, server outages, control-message
loss, compute slowdown), :class:`FaultInjector` applies them to a live
fabric, and :class:`ResilienceConfig`/:class:`DegradationPolicy` give the
schedulers the timeout/retry/fallback machinery to survive them — the
measurable form of the paper's §3.2 "less synchronization" robustness
claim.
"""

from .injector import FaultInjector, FaultStats
from .resilience import DegradationPolicy, ResilienceConfig
from .spec import (
    LOSSABLE_MESSAGE_KINDS,
    ComputeSlowdown,
    FaultPlan,
    LinkFault,
    MessageLoss,
    ServerOutage,
)

__all__ = [
    "LOSSABLE_MESSAGE_KINDS",
    "ComputeSlowdown",
    "DegradationPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkFault",
    "MessageLoss",
    "ResilienceConfig",
    "ServerOutage",
]
