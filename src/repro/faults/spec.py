"""Fault specifications: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a deterministic, seeded description of adverse
conditions applied to one simulated run.  Each fault is a frozen dataclass
with an activity window ``[start, end)`` in simulated seconds (``end`` may
be ``inf`` for the whole run), so the same plan + seed always reproduces
the same timeline.  Supported fault kinds:

* :class:`LinkFault` — rescale the bandwidth of a set of links for the
  window (degradation with ``factor < 1``, flaps via several windows);
* :class:`MessageLoss` — probabilistic loss of pull control messages
  (``pull-request``, ``grad-push``, ``pull-direct``) drawn from the plan's
  seeded RNG;
* :class:`ServerOutage` — a machine's pull server stops serving: requests
  to it are dropped (engine) or its :class:`~repro.comm.pull.PullServer`
  pauses/drops (comm layer);
* :class:`ComputeSlowdown` — per-machine compute slowdown, the library
  generalization of the straggler ablation's static ``machine_speed``.

The CLI's ``--faults`` string is parsed by :meth:`FaultPlan.parse`; see
that method for the mini-grammar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

__all__ = [
    "LOSSABLE_MESSAGE_KINDS",
    "ComputeSlowdown",
    "FaultPlan",
    "LinkFault",
    "MessageLoss",
    "ServerOutage",
]

# Control-plane tags whose loss the resilient schedulers can survive.
# Dropping arbitrary data-plane flows would deadlock callers that hold no
# timeout on them, so MessageLoss is restricted to these kinds.
LOSSABLE_MESSAGE_KINDS = ("pull-request", "grad-push", "pull-direct")

_INF = float("inf")


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"fault window start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"fault window [{start}, {end}) is empty")


@dataclass(frozen=True)
class LinkFault:
    """Multiply the capacity of the links matched by ``selector`` during
    the window.  ``selector`` is a link-kind prefix (``"nic"``, ``"nvlink"``,
    ``"pcie"``, ``"*"`` for all), optionally scoped to one machine with
    ``"kind.machine"`` (e.g. ``"nic.0"``)."""

    selector: str
    factor: float
    start: float = 0.0
    end: float = _INF

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError(f"link factor must be positive, got {self.factor}")
        _check_window(self.start, self.end)

    def matches(self, link_id) -> bool:
        kind, machine = self.selector, None
        if "." in self.selector:
            kind, machine_text = self.selector.split(".", 1)
            machine = int(machine_text)
        if kind != "*" and not str(link_id.kind).startswith(kind):
            return False
        return machine is None or link_id.machine == machine


@dataclass(frozen=True)
class MessageLoss:
    """Drop each matching control message with probability ``rate``."""

    kinds: Tuple[str, ...] = ("pull-request", "grad-push")
    rate: float = 0.1
    start: float = 0.0
    end: float = _INF

    def __post_init__(self):
        if isinstance(self.kinds, str):
            object.__setattr__(self, "kinds", (self.kinds,))
        else:
            object.__setattr__(self, "kinds", tuple(self.kinds))
        for kind in self.kinds:
            if kind not in LOSSABLE_MESSAGE_KINDS:
                raise ValueError(
                    f"cannot inject loss on {kind!r}; lossable kinds: "
                    f"{LOSSABLE_MESSAGE_KINDS}"
                )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.rate}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ServerOutage:
    """Machine ``machine``'s pull serving goes dark during the window.

    ``mode="drop"`` discards incoming requests; ``mode="pause"`` stops
    draining (requests queue and are served after the window).
    """

    machine: int
    mode: str = "drop"
    start: float = 0.0
    end: float = _INF

    def __post_init__(self):
        if self.machine < 0:
            raise ValueError("machine index must be non-negative")
        if self.mode not in ("drop", "pause"):
            raise ValueError(f"outage mode must be drop|pause, got {self.mode!r}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ComputeSlowdown:
    """Machine ``machine`` computes at ``speed`` (< 1) during the window."""

    machine: int
    speed: float
    start: float = 0.0
    end: float = _INF

    def __post_init__(self):
        if self.machine < 0:
            raise ValueError("machine index must be non-negative")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        _check_window(self.start, self.end)


FaultSpec = Union[LinkFault, MessageLoss, ServerOutage, ComputeSlowdown]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault specs for one run."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def of_type(self, cls) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if isinstance(f, cls))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI ``--faults`` mini-grammar.

        Semicolon-separated clauses; each fault clause is
        ``kind=target*magnitude[@start:end]`` (window in simulated seconds,
        omitted = whole run):

        * ``seed=7``                       — RNG seed for probabilistic faults
        * ``loss=pull-request*0.1``        — drop 10% of pull requests
          (several kinds: ``loss=pull-request+grad-push*0.05``)
        * ``link=nic*0.25@0.005:0.015``    — NIC links at 25% bandwidth for
          the window (selector may scope a machine: ``nic.0``)
        * ``slow=0*0.5``                   — machine 0 computes at half speed
        * ``outage=1@0.002:0.004``         — machine 1 drops pull requests
          (``outage=1:pause@...`` queues them instead)
        """
        seed = 0
        faults = []
        for raw_clause in text.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(f"malformed fault clause {clause!r}")
            key, _, body = clause.partition("=")
            key = key.strip()
            try:
                if key == "seed":
                    seed = int(body)
                elif key == "loss":
                    target, magnitude, start, end = _split_clause(body)
                    faults.append(MessageLoss(
                        kinds=tuple(target.split("+")), rate=magnitude,
                        start=start, end=end,
                    ))
                elif key == "link":
                    target, magnitude, start, end = _split_clause(body)
                    faults.append(LinkFault(
                        selector=target, factor=magnitude,
                        start=start, end=end,
                    ))
                elif key == "slow":
                    target, magnitude, start, end = _split_clause(body)
                    faults.append(ComputeSlowdown(
                        machine=int(target), speed=magnitude,
                        start=start, end=end,
                    ))
                elif key == "outage":
                    target, _, window = body.partition("@")
                    machine, _, mode = target.partition(":")
                    start, end = _parse_window(window)
                    faults.append(ServerOutage(
                        machine=int(machine), mode=mode or "drop",
                        start=start, end=end,
                    ))
                else:
                    raise ValueError(f"unknown fault kind {key!r}")
            except ValueError:
                raise
            except Exception as exc:  # int()/float() parse failures
                raise ValueError(
                    f"malformed fault clause {clause!r}: {exc}"
                ) from None
        return cls(seed=seed, faults=tuple(faults))


def _split_clause(body: str):
    """``target*magnitude[@start:end]`` -> (target, magnitude, start, end)."""
    spec, _, window = body.partition("@")
    target, sep, magnitude = spec.rpartition("*")
    if not sep:
        raise ValueError(f"expected 'target*magnitude', got {spec!r}")
    start, end = _parse_window(window)
    return target.strip(), float(magnitude), start, end


def _parse_window(window: str):
    if not window:
        return 0.0, _INF
    start_text, sep, end_text = window.partition(":")
    if not sep:
        raise ValueError(f"expected 'start:end' window, got {window!r}")
    start = float(start_text)
    end = _INF if end_text in ("", "inf") else float(end_text)
    if not math.isfinite(start):
        raise ValueError("window start must be finite")
    return start, end
