"""Applies a :class:`~repro.faults.spec.FaultPlan` to a live fabric.

The injector hooks the two chokepoints every simulated byte and FLOP pass
through:

* :meth:`intercept` is consulted by ``Fabric.transfer`` before a flow is
  activated.  Droppable control messages (``pull-request``/``grad-push``/
  ``pull-direct`` scheduler legs, and the comm layer's ``PullRequest``/
  ``GradPush`` control flows) that fall to message loss or a server outage
  return a *dead* flow — created but never activated, so its ``done`` event
  never fires, exactly like a datagram lost on the wire.  Recovery is the
  caller's timeout + retry.
* :meth:`compute_duration` is consulted by ``Fabric.compute`` to stretch
  kernels on machines inside a :class:`ComputeSlowdown` window (piecewise,
  so a kernel spanning a window boundary pays the slow rate only inside
  the window).

Link faults run as daemon processes that rescale the matched links'
bandwidth at the window edges via ``FluidNetwork.set_capacity``.

Determinism: the RNG (seeded by the plan) is drawn only when a transfer is
*eligible* for a loss fault, and eligible transfers occur in the engine's
deterministic event order — so the same plan + seed reproduces the same
drops, retries and timeline on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..netsim.fluid import Flow
from .spec import (
    ComputeSlowdown,
    FaultPlan,
    LinkFault,
    MessageLoss,
    ServerOutage,
)

__all__ = ["FaultInjector", "FaultStats"]

# Control-message class name (comm layer) -> lossable kind.
_CONTROL_KINDS = {"PullRequest": "pull-request", "GradPush": "grad-push"}


@dataclass
class FaultStats:
    """Counters accumulated over one faulted iteration (or run)."""

    dropped_messages: int = 0
    retries: int = 0
    stale_fallbacks: int = 0
    grad_failures: int = 0
    fallbacks_by_block: Dict[int, int] = field(default_factory=dict)
    degraded_blocks: Dict[int, str] = field(default_factory=dict)

    def count_fallback(self, block: int) -> None:
        self.stale_fallbacks += 1
        self.fallbacks_by_block[block] = self.fallbacks_by_block.get(block, 0) + 1

    @property
    def total_fallbacks(self) -> int:
        return self.stale_fallbacks


class FaultInjector:
    """Applies one plan's faults to one fabric for the duration of a run."""

    def __init__(
        self,
        plan: FaultPlan,
        fabric,
        trace=None,
        stats: Optional[FaultStats] = None,
        transport=None,
    ):
        self.plan = plan
        self.fabric = fabric
        self.trace = trace
        self.stats = stats if stats is not None else FaultStats()
        self.transport = transport
        self.rng = np.random.default_rng(plan.seed)
        self._losses = plan.of_type(MessageLoss)
        self._slowdowns = plan.of_type(ComputeSlowdown)
        self._outages = plan.of_type(ServerOutage)
        self._link_faults = plan.of_type(LinkFault)
        self.installed = False

    def install(self) -> "FaultInjector":
        """Hook the fabric and spawn the window processes.  Idempotent."""
        if self.installed:
            return self
        self.installed = True
        self.fabric.fault_injector = self
        env = self.fabric.env
        for fault in self._link_faults:
            env.process(
                self._link_window(fault),
                name=f"fault-link[{fault.selector}]",
                daemon=True,
            )
        if self.transport is not None:
            for fault in self._outages:
                env.process(
                    self._outage_window(fault),
                    name=f"fault-outage[{fault.machine}]",
                    daemon=True,
                )
        if self.trace is not None:
            # Planned windows land in the fault lane up front; point faults
            # (drops/retries/fallbacks) are recorded as they happen.
            for fault in self._link_faults:
                if math.isfinite(fault.end):
                    self.trace.record(
                        "fault.link", fault.start, fault.end,
                        detail=f"{fault.selector}*{fault.factor}",
                    )
            for fault in self._slowdowns:
                if math.isfinite(fault.end):
                    self.trace.record(
                        "fault.slow", fault.start, fault.end,
                        detail=f"machine={fault.machine}*{fault.speed}",
                    )
            for fault in self._outages:
                if math.isfinite(fault.end):
                    self.trace.record(
                        "fault.outage", fault.start, fault.end,
                        detail=f"machine={fault.machine}:{fault.mode}",
                    )
        return self

    # -- link windows --------------------------------------------------------

    def _link_window(self, fault: LinkFault):
        env = self.fabric.env
        network = self.fabric.network
        if fault.start > 0:
            yield env.timeout(fault.start)
        original = {}
        for link_id in network.links():
            if fault.matches(link_id):
                original[link_id] = network.capacity(link_id)
                network.set_capacity(link_id, original[link_id] * fault.factor)
        if not math.isfinite(fault.end):
            return
        yield env.timeout(fault.end - env.now)
        for link_id, bandwidth in original.items():
            network.set_capacity(link_id, bandwidth)

    # -- server outage windows (comm-layer transport) --------------------------

    def _outage_window(self, fault: ServerOutage):
        env = self.fabric.env
        if fault.start > 0:
            yield env.timeout(fault.start)
        servers = [
            server
            for device, server in self.transport.servers.items()
            if device.machine == fault.machine
        ]
        for server in servers:
            if fault.mode == "pause":
                server.pause()
            else:
                server.set_dropping(True)
            server.interrupt_inflight()
        if not math.isfinite(fault.end):
            return
        yield env.timeout(fault.end - env.now)
        for server in servers:
            if fault.mode == "pause":
                server.resume()
            else:
                server.set_dropping(False)

    # -- transfer interception -------------------------------------------------

    def intercept(self, src, dst, size, tag) -> Optional[Flow]:
        """Return a dead flow if this transfer is lost; None to proceed."""
        kind = self._message_kind(tag)
        if kind is None:
            return None
        now = self.fabric.env.now
        # Engine-level server outage: requests addressed to the dark
        # machine's host vanish deterministically (both outage modes look
        # like drops from the requester's side at this level; queueing
        # semantics live in the comm-layer PullServer).
        if kind == "pull-request" and dst.kind == "host":
            for fault in self._outages:
                if fault.machine == dst.machine and fault.start <= now < fault.end:
                    return self._drop(size, tag, now, "outage")
        for fault in self._losses:
            if kind in fault.kinds and fault.start <= now < fault.end:
                if self.rng.random() < fault.rate:
                    return self._drop(size, tag, now, "loss")
        return None

    @staticmethod
    def _message_kind(tag) -> Optional[str]:
        if not isinstance(tag, tuple) or not tag:
            return None
        head = tag[0]
        if head == "control" and len(tag) > 1:
            return _CONTROL_KINDS.get(tag[1])
        return head if isinstance(head, str) else None

    def _drop(self, size, tag, now: float, cause: str) -> Flow:
        self.stats.dropped_messages += 1
        if self.trace is not None:
            self.trace.record("fault.drop", now, now, detail=f"{cause}:{tag[0]}")
            self.trace.mark("fault.drop", now, tag=tag, cause=cause)
        # Created but never activated: done never fires, like a lost packet.
        return Flow(self.fabric.env, (), (), size, 0.0, tag=tag)

    # -- compute slowdown ------------------------------------------------------

    def compute_scale(self, machine: int, now: float) -> float:
        """Compound speed factor for ``machine`` at instant ``now``."""
        scale = 1.0
        for fault in self._slowdowns:
            if fault.machine == machine and fault.start <= now < fault.end:
                scale *= fault.speed
        return scale

    def compute_duration(self, machine: int, seconds: float, now: float) -> float:
        """Wall-clock seconds for ``seconds`` of nominal work started at
        ``now``, integrating piecewise over slowdown window boundaries."""
        windows = [f for f in self._slowdowns if f.machine == machine]
        if not windows or seconds <= 0:
            return seconds
        boundaries = sorted(
            {b for f in windows for b in (f.start, f.end) if b > now}
        )
        t = now
        work = seconds
        for boundary in boundaries:
            speed = self.compute_scale(machine, t)
            span = boundary - t
            if work <= span * speed:
                return t + work / speed - now
            work -= span * speed
            t = boundary
        return t + work / self.compute_scale(machine, t) - now
