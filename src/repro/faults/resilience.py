"""Resilience knobs for the schedulers and the degradation policy.

:class:`ResilienceConfig` gives every cross-machine control interaction a
timeout, a bounded retry budget with exponential backoff, and a per-block
deadline; :class:`DegradationPolicy` decides, between iterations, which
blocks should abandon the pull-based data-centric paradigm and fall back
to expert-centric (the unified selector's escape hatch when the fault
pattern makes fine-grained pulls lose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .injector import FaultStats

__all__ = ["DegradationPolicy", "ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Timeout/retry/backoff budgets for faulted runs.

    ``pull_timeout`` is the first attempt's wait for a pull-request
    round-trip (control leg); each retry multiplies it by ``backoff`` up to
    ``max_retries`` re-sends.  ``push_timeout`` guards gradient pushes (data
    flows, so it must dominate a healthy transfer time).  ``block_deadline``
    bounds the total time a machine spends fetching any one block's external
    experts before remaining fetches fall back to the stale cached copy;
    ``None`` disables the deadline.  ``on_failure`` picks between graceful
    degradation (``"degrade"``: stale-copy fallback, counted in
    :class:`~repro.faults.injector.FaultStats`) and ``"raise"`` (surface
    :class:`~repro.comm.PullFailedError` to the caller).
    """

    pull_timeout: float = 1e-3
    max_retries: int = 3
    backoff: float = 2.0
    push_timeout: float = 20e-3
    block_deadline: Optional[float] = 100e-3
    on_failure: str = "degrade"

    def __post_init__(self):
        if self.pull_timeout <= 0:
            raise ValueError("pull_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.push_timeout <= 0:
            raise ValueError("push_timeout must be positive")
        if self.block_deadline is not None and self.block_deadline <= 0:
            raise ValueError("block_deadline must be positive")
        if self.on_failure not in ("degrade", "raise"):
            raise ValueError("on_failure must be 'degrade' or 'raise'")


@dataclass(frozen=True)
class DegradationPolicy:
    """Flip a block's paradigm after it keeps missing its pull deadlines.

    A block that accumulated at least ``degrade_after_fallbacks`` stale
    fallbacks in one iteration is switched to ``fallback_strategy``
    (expert-centric All-to-All needs no cross-machine pull round-trips, so
    it is immune to pull-request loss) for subsequent iterations.

    ``recover_after_clean`` un-ratchets the policy: after that many
    consecutive iterations with no fault symptoms, a degraded block returns
    to its preferred (Eq. 1) strategy on probation — re-degrading during
    the probation window doubles the required clean streak (exponential
    backoff, handled by the adaptive controller the engine wraps this
    policy in).  The default ``None`` preserves the historical one-way
    behaviour exactly.
    """

    fallback_strategy: str = "expert-centric"
    degrade_after_fallbacks: int = 1
    recover_after_clean: Optional[int] = None

    def __post_init__(self):
        if self.degrade_after_fallbacks <= 0:
            raise ValueError("degrade_after_fallbacks must be positive")
        if self.recover_after_clean is not None and self.recover_after_clean <= 0:
            raise ValueError("recover_after_clean must be positive")

    def decide(self, stats: FaultStats) -> Dict[int, str]:
        """Blocks to switch, given one iteration's fault counters."""
        return {
            block: self.fallback_strategy
            for block, count in sorted(stats.fallbacks_by_block.items())
            if count >= self.degrade_after_fallbacks
        }
