"""Synthetic workloads: token batches, corpora, routing distributions
and drifting expert-popularity processes."""

from .corpus import SyntheticCorpus
from .drift import DRIFT_KINDS, DriftSpec, apply_drift, drift_weights
from .tokens import (
    assignment_imbalance,
    balanced_assignment,
    target_batches,
    token_batches,
    zipf_assignment,
    zipf_weights,
)

__all__ = [
    "DRIFT_KINDS",
    "DriftSpec",
    "SyntheticCorpus",
    "apply_drift",
    "drift_weights",
    "assignment_imbalance",
    "balanced_assignment",
    "target_batches",
    "token_batches",
    "zipf_assignment",
    "zipf_weights",
]
