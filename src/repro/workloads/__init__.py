"""Synthetic workloads: token batches, corpora and routing distributions."""

from .corpus import SyntheticCorpus
from .tokens import (
    assignment_imbalance,
    balanced_assignment,
    target_batches,
    token_batches,
    zipf_assignment,
    zipf_weights,
)

__all__ = [
    "SyntheticCorpus",
    "assignment_imbalance",
    "balanced_assignment",
    "target_batches",
    "token_batches",
    "zipf_assignment",
    "zipf_weights",
]
