"""Drifting expert-popularity generators.

Real MoE traffic does not hold the §3.1 imbalance still: expert popularity
drifts as the corpus mix shifts, transient hotspots appear and heal, and the
hot-expert *identity* migrates.  A :class:`DriftSpec` describes one seeded
popularity process; :func:`drift_weights` evaluates it as a pure function of
``(spec, num_experts, iteration, block_index)`` so every component — the
workload regenerator, the gate layer, tests — sees the same trajectory
without shared mutable state.

Kinds:

* ``static`` — a fixed Zipf popularity (hot identity set by the seed); the
  degenerate case used to prove drift-off runs are bit-identical.
* ``flip``   — the skew oscillates between ``low_skew`` (default: balanced)
  and ``skew`` every ``period`` iterations: regime drift, where the best
  paradigm itself changes (Eq. 1's inputs are stable but its balanced-routing
  assumption breaks every other phase).
* ``rotate`` — fixed Zipf skew, but the hot-expert identity shifts by
  ``shift`` positions every ``period`` iterations: a moving hotspot, the
  placement/replication stressor.
* ``walk``   — the log-popularities follow a seeded Gaussian random walk with
  per-iteration step ``step``: smooth organic drift.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

__all__ = ["DRIFT_KINDS", "DriftSpec", "drift_weights", "apply_drift"]

DRIFT_KINDS = ("static", "flip", "rotate", "walk")


@dataclass(frozen=True)
class DriftSpec:
    """One seeded expert-popularity drift process (see module docstring)."""

    kind: str = "flip"
    skew: float = 1.5
    low_skew: float = 0.0
    period: int = 4
    shift: int = 1
    step: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.kind not in DRIFT_KINDS:
            raise ValueError(
                f"kind must be one of {DRIFT_KINDS}, got {self.kind!r}"
            )
        if self.skew < 0 or self.low_skew < 0:
            raise ValueError("skew values must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.shift <= 0:
            raise ValueError("shift must be positive")
        if self.step < 0:
            raise ValueError("step must be non-negative")

    @classmethod
    def parse(cls, text: str) -> "DriftSpec":
        """Parse the CLI grammar: ``kind=flip;skew=1.5;period=4;seed=3``.

        The first clause may be a bare kind name (``flip;skew=1.5``).
        Numeric fields accept int/float literals.
        """
        spec = cls(kind="static")
        fields = {
            "kind": str, "skew": float, "low_skew": float, "period": int,
            "shift": int, "step": float, "seed": int,
        }
        for position, clause in enumerate(text.split(";")):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                if position == 0 and clause in DRIFT_KINDS:
                    spec = replace(spec, kind=clause)
                    continue
                raise ValueError(f"malformed drift clause {clause!r}")
            key, _, value = clause.partition("=")
            key = key.strip().replace("-", "_")
            if key not in fields:
                raise ValueError(f"unknown drift field {key!r}")
            try:
                spec = replace(spec, **{key: fields[key](value.strip())})
            except ValueError as exc:
                raise ValueError(
                    f"bad value for drift field {key!r}: {value!r}"
                ) from exc
        return spec

    def skew_at(self, iteration: int) -> float:
        """Effective Zipf skew at ``iteration`` (flip alternates regimes,
        starting at the ``low_skew`` pole)."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if self.kind == "flip":
            return self.low_skew if (iteration // self.period) % 2 == 0 \
                else self.skew
        return self.skew

    def _permutation(self, num_experts: int, block_index: int) -> np.ndarray:
        """Stable hot-expert ordering for one block (seeded, iteration-free)."""
        rng = np.random.default_rng([self.seed, block_index, 0x9E3779B9])
        return rng.permutation(num_experts)

    def weights(
        self, num_experts: int, iteration: int, block_index: int = 0
    ) -> np.ndarray:
        """Popularity over experts at ``iteration`` — normalized, positive,
        deterministic in ``(spec, num_experts, iteration, block_index)``."""
        return drift_weights(self, num_experts, iteration, block_index)


def _zipf(num_experts: int, skew: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, num_experts + 1, dtype=float) ** skew
    return weights / weights.sum()


def drift_weights(
    spec: DriftSpec,
    num_experts: int,
    iteration: int,
    block_index: int = 0,
) -> np.ndarray:
    """Evaluate ``spec`` at one iteration (see :meth:`DriftSpec.weights`)."""
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if iteration < 0:
        raise ValueError("iteration must be non-negative")
    perm = spec._permutation(num_experts, block_index)
    if spec.kind == "rotate":
        turns = (iteration // spec.period) * spec.shift
        perm = np.roll(perm, -turns)
    ranked = _zipf(num_experts, spec.skew_at(iteration))
    if spec.kind == "walk" and iteration > 0 and spec.step > 0:
        rng = np.random.default_rng([spec.seed, block_index, 0x57A1CDEF])
        steps = rng.normal(0.0, spec.step, size=(iteration, num_experts))
        ranked = np.exp(np.log(ranked) + steps.sum(axis=0))
        ranked /= ranked.sum()
    weights = np.empty(num_experts, dtype=float)
    weights[perm] = ranked
    return weights


def apply_drift(workload, spec: DriftSpec, iteration: int,
                rng: Optional[np.random.Generator] = None) -> None:
    """Regenerate every MoE block's routing matrix for ``iteration``.

    Mutates ``workload`` (an
    :class:`~repro.core.workload.IterationWorkload`) in place: each worker
    re-draws its per-expert token-slot counts from the block's drifted
    popularity.  Fully deterministic — the multinomial RNG is keyed on
    ``(seed, iteration, block)``, so the trajectory does not depend on call
    order, engine mode, or how many engines share the spec.
    """
    tokens = workload.config.tokens_per_worker
    world = workload.world_size
    for block in workload.moe_blocks():
        weights = drift_weights(spec, block.num_experts, iteration,
                                block.index)
        draw = rng if rng is not None else np.random.default_rng(
            [spec.seed, iteration, block.index]
        )
        routing = np.stack([
            draw.multinomial(tokens, weights) for _ in range(world)
        ]).astype(np.int64)
        block.routing[:] = routing
