"""Synthetic workload generation.

Only the *shape* of the data matters for communication behaviour: how many
tokens each worker produces and how the gate spreads them over experts.
These generators produce per-worker token batches for the functional runtime
and expert-assignment histograms for the timed engines, with controllable
skew to reproduce the paper's imbalance observation (§3.1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import ModelConfig

__all__ = [
    "token_batches",
    "target_batches",
    "balanced_assignment",
    "zipf_assignment",
    "assignment_imbalance",
]


def token_batches(
    config: ModelConfig,
    world_size: int,
    batch_size: Optional[int] = None,
    seq_len: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """One (batch, seq) int token array per worker."""
    rng = rng if rng is not None else np.random.default_rng()
    batch = batch_size if batch_size is not None else config.batch_size
    seq = seq_len if seq_len is not None else config.seq_len
    return [
        rng.integers(0, config.vocab_size, size=(batch, seq))
        for _ in range(world_size)
    ]


def target_batches(
    config: ModelConfig,
    world_size: int,
    batch_size: Optional[int] = None,
    seq_len: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Matching per-worker target arrays for language-model loss."""
    return token_batches(config, world_size, batch_size, seq_len, rng)


def balanced_assignment(num_slots: int, num_experts: int) -> np.ndarray:
    """Token-slot counts per expert under perfectly balanced routing."""
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    base = num_slots // num_experts
    counts = np.full(num_experts, base, dtype=np.int64)
    counts[: num_slots % num_experts] += 1
    return counts


def zipf_weights(
    num_experts: int,
    skew: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Normalized Zipf popularity over experts, hot index randomized.

    Use one weight vector per MoE block so all workers overload the *same*
    hot experts — the cluster-wide imbalance §3.1 describes.
    """
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    weights = 1.0 / np.arange(1, num_experts + 1) ** skew
    weights /= weights.sum()
    rng.shuffle(weights)
    return weights


def zipf_assignment(
    num_slots: int,
    num_experts: int,
    skew: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Zipf-distributed token-slot counts: hot experts get most tokens.

    ``skew=0`` is uniform; larger skews concentrate load (the imbalance the
    paper measures in §3.1, citation [24]).
    """
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    weights = 1.0 / np.arange(1, num_experts + 1) ** skew
    weights /= weights.sum()
    # Shuffle so the hot expert index is not always 0.
    rng.shuffle(weights)
    counts = rng.multinomial(num_slots, weights)
    return counts.astype(np.int64)


def assignment_imbalance(counts: np.ndarray) -> float:
    """max/mean load ratio; 1.0 means perfectly balanced."""
    counts = np.asarray(counts, dtype=float)
    if counts.sum() == 0:
        return 1.0
    return float(counts.max() / counts.mean())
