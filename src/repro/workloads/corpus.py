"""Synthetic language-like corpora.

Only the token statistics matter to the systems under study, but a corpus
with realistic structure makes the training examples and trainer tests more
meaningful than i.i.d. noise: tokens follow a Zipfian unigram distribution
(like natural language) with a first-order Markov flavour (a per-token
chance of continuing a short repeated motif), and targets are the standard
next-token shift.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["SyntheticCorpus"]


class SyntheticCorpus:
    """A deterministic, seekable stream of synthetic token sequences."""

    def __init__(
        self,
        vocab_size: int,
        seq_len: int,
        zipf_exponent: float = 1.1,
        motif_prob: float = 0.3,
        seed: int = 0,
    ):
        if vocab_size < 4:
            raise ValueError("vocab_size must be at least 4")
        if seq_len < 2:
            raise ValueError("seq_len must be at least 2")
        if not 0 <= motif_prob < 1:
            raise ValueError("motif_prob must be in [0, 1)")
        if zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.motif_prob = motif_prob
        self.seed = seed
        ranks = np.arange(1, vocab_size + 1, dtype=float)
        weights = ranks ** -zipf_exponent
        self._unigram = weights / weights.sum()

    def sequence(self, index: int) -> np.ndarray:
        """The ``index``-th sequence (deterministic in (seed, index))."""
        rng = np.random.default_rng((self.seed, index))
        tokens = rng.choice(
            self.vocab_size, size=self.seq_len + 1, p=self._unigram
        )
        # Motifs: with probability motif_prob, a token repeats one from a
        # short look-back window — cheap local structure a model can learn.
        for position in range(2, self.seq_len + 1):
            if rng.random() < self.motif_prob:
                back = rng.integers(1, min(4, position) + 1)
                tokens[position] = tokens[position - back]
        return tokens

    def example(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(input tokens, next-token targets), both (seq_len,)."""
        sequence = self.sequence(index)
        return sequence[:-1], sequence[1:]

    def batch(self, index: int, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """(batch, seq_len) inputs and targets for batch number ``index``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        examples = [
            self.example(index * batch_size + offset)
            for offset in range(batch_size)
        ]
        tokens = np.stack([tokens for tokens, _ in examples])
        targets = np.stack([targets for _, targets in examples])
        return tokens, targets

    def worker_batches(
        self,
        index: int,
        world_size: int,
        batch_size: int,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Disjoint per-worker batches for one distributed step."""
        tokens_list: List[np.ndarray] = []
        targets_list: List[np.ndarray] = []
        for rank in range(world_size):
            tokens, targets = self.batch(
                index * world_size + rank, batch_size
            )
            tokens_list.append(tokens)
            targets_list.append(targets)
        return tokens_list, targets_list

    def iter_steps(
        self,
        world_size: int,
        batch_size: int,
        start: int = 0,
    ) -> Iterator[Tuple[List[np.ndarray], List[np.ndarray]]]:
        """Endless iterator of per-step worker batches (for Trainer.fit)."""
        index = start
        while True:
            yield self.worker_batches(index, world_size, batch_size)
            index += 1
