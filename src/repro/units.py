"""Unit helpers and conversions.

Internally the whole codebase uses **bytes** for sizes, **bytes/second** for
bandwidth and **seconds** for time.  These helpers keep conversions from the
mixed units used in the paper (GB/s for NVLink and PCIe, Gbps for NICs,
milliseconds for iteration times) explicit and auditable.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "US",
    "MS",
    "gbps",
    "gbytes_per_s",
    "to_gb",
    "to_gbps",
    "to_ms",
]

# Decimal sizes (used for traffic volumes, matching the paper's "GB").
KB = 1e3
MB = 1e6
GB = 1e9

# Binary sizes (used for device memory capacities).
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3

# Time.
US = 1e-6
MS = 1e-3


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


def gbytes_per_s(value: float) -> float:
    """Convert gigabytes per second to bytes per second."""
    return value * 1e9


def to_gb(num_bytes: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return num_bytes / GB


def to_gbps(bytes_per_s: float) -> float:
    """Convert bytes per second to gigabits per second."""
    return bytes_per_s * 8.0 / 1e9


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS
