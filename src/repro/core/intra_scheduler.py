"""Intra-Node Scheduler: the per-worker half of the Janus Task Queue.

Each worker has one Intra-Node Scheduler (§4) running a block-ordered pull
pipeline implementing the two-stage strategy of §5.2 (Fig. 6): per MoE
block, stage 1 pulls machine-local experts GPU-to-GPU over NVLink (in
Algorithm 1's staggered order when topology awareness is on), then stage 2
copies the machine-cached external experts from CPU memory into the GPU
(with the PCIe-switch peer schedule when topology awareness is on).  The
cross-machine half of stage 1 — filling the CPU cache over the NICs — runs
in parallel in the Inter-Node Scheduler.

Every pull consumes one credit of the worker's credit-based buffer
(§5.1.1); the worker releases the credit after it finishes computing on the
expert.  The pipeline is strictly block-ordered, so credits are only ever
held by fetched-but-unconsumed experts of the earliest unfinished block:
prefetching ahead can never starve the block the worker is computing, which
makes the credit discipline deadlock-free.
"""

from __future__ import annotations

from typing import List

from ..cluster import Device
from ..simkit import AnyOf
from .context import IterationContext
from .priority import internal_pull_order, pcie_peer_schedule

__all__ = ["IntraNodeScheduler"]


class IntraNodeScheduler:
    """Pull pipeline for one worker."""

    def __init__(self, ctx: IterationContext, rank: int):
        self.ctx = ctx
        self.rank = rank
        self.metrics = ctx.metrics
        self.machine = ctx.layout.machine_of(rank)
        self.local_rank = ctx.layout.local_rank_of(rank)
        self.host = Device.host(self.machine)
        layout = ctx.layout
        peer_local = self.local_rank ^ 1
        self.peer_rank = (
            layout.ranks_of_machine(self.machine)[peer_local]
            if peer_local < layout.workers_per_machine
            else None
        )

    def moe_blocks(self, phase: str) -> List[int]:
        indices = list(self.ctx.dc_block_indices)
        return indices if phase == "fwd" else list(reversed(indices))

    def _account_pull(self, kind: str, block: int, started: float) -> None:
        """Book one completed pull: counter + latency histogram + a trace
        span on the traced worker's ``comm.pull`` lane.  Pure observation —
        never touches the simulation clock."""
        ctx = self.ctx
        now = ctx.env.now
        if self.metrics is not None:
            self.metrics.inc("pull.issued", kind=kind)
            self.metrics.observe("pull.latency_s", now - started, kind=kind)
        if self.rank == ctx.trace_worker:
            ctx.trace.record(
                "comm.pull", started, now,
                worker=self.rank, block=block, detail=kind,
            )

    def pull_pipeline(self, phase: str):
        """The worker's pull queue: per block, stage-1 internal NVLink pulls
        followed by stage-2 copies of cached external experts (Fig. 6)."""
        for block in self.moe_blocks(phase):
            yield self.ctx.fetch_start_event(phase, block, self.rank)
            yield from self._internal_stage(phase, block)
            yield from self._external_stage(phase, block)

    # -- stage 1: internal pulls ------------------------------------------------

    def _internal_stage(self, phase: str, block: int):
        """Pull machine-local experts over NVLink (forward) or re-stage them
        from host memory over PCIe (backward, after the forward offload)."""
        ctx = self.ctx
        for expert in self._internal_order(block):
            yield ctx.credits[self.rank].get(1)
            started = ctx.env.now
            if phase == "fwd":
                owner = ctx.placements[block].owner(expert)
                flow = ctx.fabric.transfer(
                    ctx.gpu_of[owner],
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-internal", block, self.rank, expert),
                )
            else:
                flow = ctx.fabric.transfer(
                    self.host,
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-backward", block, self.rank, expert),
                )
            yield flow.done
            self._account_pull(
                "internal" if phase == "fwd" else "backward", block, started
            )
            ctx.mark_ready(phase, block, self.rank, expert)

    def _internal_order(self, block: int) -> List[int]:
        ctx = self.ctx
        placement = ctx.placements[block]
        experts_per_worker = placement.experts_per_worker
        machine_ranks = ctx.layout.ranks_of_machine(self.machine)
        base = machine_ranks[0] * experts_per_worker
        slots = internal_pull_order(
            self.local_rank,
            ctx.layout.workers_per_machine,
            experts_per_worker,
            staggered=ctx.features.topology_aware,
        )
        needed = set(ctx.needed_internal(block, self.rank))
        return [base + slot for slot in slots if base + slot in needed]

    # -- stage 2: external copies -------------------------------------------------

    def _external_stage(self, phase: str, block: int):
        """Copies of externally cached experts into the GPU."""
        ctx = self.ctx
        needed = ctx.needed_external(block, self.rank)
        if not needed:
            return
        if not ctx.features.hierarchical:
            yield from self._direct_remote_pulls(phase, block, needed)
            return
        yield from self._staged_copies(phase, block, needed)

    def _direct_remote_pulls(self, phase: str, block: int, needed: List[int]):
        """No cache manager: every worker pulls remote experts itself."""
        ctx = self.ctx
        placement = ctx.placements[block]
        for expert in needed:
            yield ctx.credits[self.rank].get(1)
            started = ctx.env.now
            if phase == "fwd":
                owner = placement.owner(expert)
                if ctx.resilience is not None:
                    yield from self._resilient_direct_pull(block, expert, owner)
                    self._account_pull("direct", block, started)
                    ctx.mark_ready(phase, block, self.rank, expert)
                    continue
                flow = ctx.fabric.transfer(
                    ctx.gpu_of[owner],
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-direct", block, self.rank, expert),
                )
            else:
                flow = ctx.fabric.transfer(
                    self.host,
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-backward", block, self.rank, expert),
                )
            yield flow.done
            self._account_pull(
                "direct" if phase == "fwd" else "backward", block, started
            )
            ctx.mark_ready(phase, block, self.rank, expert)

    def _resilient_direct_pull(self, block: int, expert: int, owner: int):
        """Direct pull with timeout/retry; on exhaustion mark the expert
        ready from the worker's stale local copy.  The credit taken by the
        caller stays held either way and is released after compute, so the
        credit discipline is unchanged under faults."""
        ctx = self.ctx
        from ..comm import PullFailedError

        res = ctx.resilience
        env = ctx.env
        delay = res.pull_timeout
        attempts = res.max_retries + 1
        for attempt in range(attempts):
            flow = ctx.fabric.transfer(
                ctx.gpu_of[owner],
                ctx.gpu_of[self.rank],
                ctx.workload.expert_bytes,
                tag=("pull-direct", block, self.rank, expert),
            )
            yield AnyOf(env, [flow.done, env.timeout(delay)])
            if flow.done.triggered:
                return
            if attempt < res.max_retries:
                if ctx.fault_stats is not None:
                    ctx.fault_stats.retries += 1
                now = env.now
                ctx.trace.record(
                    "fault.retry", now, now, worker=self.rank, block=block,
                    detail=f"expert={expert} direct",
                )
                delay *= res.backoff
        if res.on_failure == "raise":
            raise PullFailedError(
                ctx.gpu_of[self.rank], ctx.gpu_of[owner],
                ("direct", block, expert), attempts,
            )
        if ctx.fault_stats is not None:
            ctx.fault_stats.count_fallback(block)
        now = env.now
        ctx.trace.record(
            "fault.fallback", now, now, worker=self.rank, block=block,
            detail=f"expert={expert} stale",
        )
        ctx.trace.mark(
            "fault.fallback", now, worker=self.rank, block=block, expert=expert
        )

    def _staged_copies(self, phase: str, block: int, needed: List[int]):
        ctx = self.ctx
        machine_cached = ctx.machine_external_experts(block, self.machine)
        peer_needed = (
            set(ctx.needed_external(block, self.peer_rank))
            if self.peer_rank is not None
            else set()
        )
        use_peer_scheme = (
            phase == "fwd"
            and ctx.features.topology_aware
            and self.peer_rank is not None
        )
        schedule = pcie_peer_schedule(
            machine_cached, self.local_rank, enabled=use_peer_scheme
        )
        needed_set = set(needed)
        for step in schedule:
            if step.expert not in needed_set:
                continue
            via_peer = (
                step.via == "peer"
                and use_peer_scheme
                and step.expert in peer_needed
            )
            if phase == "fwd":
                self._account_cache_request(block, step.expert)
                yield ctx.cached_event(block, self.machine, step.expert)
            # Backward: the expert already sits in host memory from the
            # forward offload, so there is nothing to wait for.
            yield ctx.credits[self.rank].get(1)
            started = ctx.env.now
            if via_peer:
                yield ctx.ready_event("fwd", block, self.peer_rank, step.expert)
                flow = ctx.fabric.transfer(
                    ctx.gpu_of[self.peer_rank],
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-peer", block, self.rank, step.expert),
                )
            else:
                flow = ctx.fabric.transfer(
                    self.host,
                    ctx.gpu_of[self.rank],
                    ctx.workload.expert_bytes,
                    tag=("pull-pcie", block, self.rank, step.expert),
                )
            yield flow.done
            if phase == "fwd":
                kind = "peer" if via_peer else "pcie"
            else:
                kind = "backward"
            self._account_pull(kind, block, started)
            ctx.mark_ready(phase, block, self.rank, step.expert)

    def _account_cache_request(self, block: int, expert: int) -> None:
        """Cache-manager dedup accounting (§5.1.2): the first worker to
        ask for a (machine, block, expert) key is the miss that triggers
        the one cross-machine fetch; every later request is a hit served
        by the machine cache, saving one expert payload over the NICs."""
        ctx = self.ctx
        if self.metrics is None:
            return
        self.metrics.inc("cache.requests")
        key = (self.machine, block, expert)
        if key in ctx.cache_requested:
            self.metrics.inc("cache.hits")
            self.metrics.inc(
                "cache.dedup_bytes_saved", ctx.workload.expert_bytes
            )
        else:
            ctx.cache_requested.add(key)
            self.metrics.inc("cache.misses")
