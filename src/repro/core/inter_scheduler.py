"""Inter-Node Scheduler: the per-machine half of the Janus Task Queue.

Sits in host (CPU) memory (§4).  In the forward phase it pulls every
external expert the machine's workers need from its home machine over the
RDMA NICs — once per (machine, expert), the hierarchical cache of §5.1.2 —
and announces it through the Cache Manager events.  In the backward phase it
collects the local workers' gradient contributions for each pulled expert,
pre-reduces them, and pushes a single gradient payload back to the expert's
home machine.
"""

from __future__ import annotations

from typing import List

from ..cluster import Device
from ..simkit import AnyOf
from .context import IterationContext

__all__ = ["InterNodeScheduler"]


class InterNodeScheduler:
    """Cross-machine expert fetching and gradient return for one machine."""

    def __init__(self, ctx: IterationContext, machine: int):
        self.ctx = ctx
        self.machine = machine
        self.metrics = ctx.metrics
        self.host = Device.host(machine)
        self.num_nics = ctx.fabric.cluster.spec.num_nics

    def _account_fetch(
        self, nic: int, block: int, expert: int, started: float
    ) -> None:
        """Book one completed cross-machine cache fill (observation only)."""
        ctx = self.ctx
        now = ctx.env.now
        if self.metrics is not None:
            self.metrics.inc("fetch.issued", machine=self.machine)
            self.metrics.observe("fetch.latency_s", now - started)
        ctx.trace.record(
            "comm.fetch", started, now, block=block,
            detail=f"machine={self.machine} nic={nic} expert={expert}",
        )

    def moe_blocks(self, reverse: bool = False) -> List[int]:
        indices = list(self.ctx.dc_block_indices)
        return list(reversed(indices)) if reverse else indices

    # -- forward: hierarchical fetch ------------------------------------------------

    def fetch_pipelines(self):
        """One sequential fetch chain per NIC (fine-grained §5.1 pulls)."""
        assignments: List[List[tuple]] = [[] for _ in range(self.num_nics)]
        position = 0
        for block in self.moe_blocks():
            for expert in self._external_order(block):
                assignments[position % self.num_nics].append((block, expert))
                position += 1
        return [
            self._fetch_chain(nic, tasks)
            for nic, tasks in enumerate(assignments)
            if tasks
        ]

    def _external_order(self, block: int) -> List[int]:
        """Order of cross-machine pulls for one block.

        Topology-aware: stagger source machines the same way Algorithm 1
        staggers source GPUs, so the n machines do not all hammer machine 0's
        NICs first.  Otherwise: plain ascending expert id.
        """
        ctx = self.ctx
        experts = ctx.machine_external_experts(block, self.machine)
        if ctx.replicas:
            # Replicated experts are served from the machine-local replica
            # (announced at iteration start; refreshed by the background
            # sync), so the forward fetch chain skips them.  Gradients are
            # untouched: grad_collectors still push every external expert's
            # gradient home.
            experts = [
                expert
                for expert in experts
                if not ctx.replicated_on(block, expert, self.machine)
            ]
        if not ctx.features.topology_aware:
            return experts
        placement = ctx.placements[block]
        num_machines = ctx.layout.num_machines

        def key(expert: int):
            owner_machine = ctx.layout.machine_of(placement.owner(expert))
            return ((owner_machine - self.machine) % num_machines, expert)

        return sorted(experts, key=key)

    def _fetch_chain(self, nic: int, tasks: List[tuple]):
        ctx = self.ctx
        from ..comm.endpoint import SOCKET_OVERHEAD_S

        if ctx.resilience is not None:
            yield from self._resilient_fetch_chain(nic, tasks)
            return
        for block, expert in tasks:
            yield self._fetch_gate(block)
            started = ctx.env.now
            owner = ctx.placements[block].owner(expert)
            owner_machine = ctx.layout.machine_of(owner)
            # Control plane (§6): the pull request travels to the expert's
            # home machine over the socket first — latency only, the
            # payload rides the RDMA data plane below.
            request = ctx.fabric.transfer(
                self.host,
                Device.host(owner_machine),
                0.0,
                nic_index=nic,
                tag=("pull-request", block, self.machine, expert),
            )
            yield request.done
            yield ctx.env.timeout(SOCKET_OVERHEAD_S)
            flow = ctx.fabric.transfer(
                Device.host(owner_machine),
                self.host,
                ctx.workload.expert_bytes,
                nic_index=nic,
                tag=("fetch-external", block, self.machine, expert),
            )
            yield flow.done
            ctx.cache_fills[self.machine] += 1
            self._account_fetch(nic, block, expert, started)
            cached = ctx.cached_event(block, self.machine, expert)
            if not cached.triggered:
                cached.succeed()

    # -- resilient forward fetch (fault-injected runs) -------------------------------

    def _resilient_fetch_chain(self, nic: int, tasks: List[tuple]):
        """The fetch chain with per-pull timeout/retry/backoff and a
        per-block deadline.  A pull that exhausts its budget (or blows the
        block deadline) falls back to the machine-cached stale expert copy
        for this iteration instead of deadlocking the pipeline."""
        ctx = self.ctx
        from ..comm import PullFailedError
        from ..comm.endpoint import SOCKET_OVERHEAD_S

        res = ctx.resilience
        env = ctx.env
        for block, expert in tasks:
            yield self._fetch_gate(block)
            started = env.now
            began = ctx.block_fetch_began.setdefault(
                (self.machine, block), env.now
            )
            deadline = (
                began + res.block_deadline
                if res.block_deadline is not None
                else float("inf")
            )
            owner = ctx.placements[block].owner(expert)
            owner_machine = ctx.layout.machine_of(owner)
            delay = res.pull_timeout
            fetched = False
            attempts = res.max_retries + 1
            for attempt in range(attempts):
                budget = deadline - env.now
                if budget <= 0:
                    break
                request = ctx.fabric.transfer(
                    self.host,
                    Device.host(owner_machine),
                    0.0,
                    nic_index=nic,
                    tag=("pull-request", block, self.machine, expert),
                )
                yield AnyOf(env, [request.done, env.timeout(min(delay, budget))])
                if not request.done.triggered:
                    # Request lost (or server dark): back off and re-send.
                    if attempt < res.max_retries:
                        self._count_retry(block, expert)
                        delay *= res.backoff
                    continue
                yield env.timeout(SOCKET_OVERHEAD_S)
                flow = ctx.fabric.transfer(
                    Device.host(owner_machine),
                    self.host,
                    ctx.workload.expert_bytes,
                    nic_index=nic,
                    tag=("fetch-external", block, self.machine, expert),
                )
                remaining = deadline - env.now
                if remaining == float("inf"):
                    yield flow.done
                else:
                    yield AnyOf(env, [flow.done, env.timeout(max(remaining, 0.0))])
                # A degraded link may keep the payload in flight past the
                # deadline; the bytes still move (wasted traffic) but the
                # block stops waiting for them.
                fetched = flow.done.triggered
                break
            if fetched:
                ctx.cache_fills[self.machine] += 1
                self._account_fetch(nic, block, expert, started)
            else:
                if res.on_failure == "raise":
                    raise PullFailedError(
                        self.host, Device.host(owner_machine),
                        ("fetch", block, expert), attempts,
                    )
                self._stale_fallback(block, expert)
            cached = ctx.cached_event(block, self.machine, expert)
            if not cached.triggered:
                cached.succeed()

    def _count_retry(self, block: int, expert: int) -> None:
        ctx = self.ctx
        if ctx.fault_stats is not None:
            ctx.fault_stats.retries += 1
        now = ctx.env.now
        ctx.trace.record(
            "fault.retry", now, now, block=block,
            detail=f"machine={self.machine} expert={expert}",
        )
        ctx.trace.mark(
            "fault.retry", now, machine=self.machine, block=block, expert=expert
        )

    def _stale_fallback(self, block: int, expert: int) -> None:
        """Give up on the fresh copy: serve this iteration from the stale
        machine-cached expert (no cache-fill accounted)."""
        ctx = self.ctx
        if ctx.fault_stats is not None:
            ctx.fault_stats.count_fallback(block)
        now = ctx.env.now
        ctx.trace.record(
            "fault.fallback", now, now, block=block,
            detail=f"machine={self.machine} expert={expert} stale",
        )
        ctx.trace.mark(
            "fault.fallback", now, machine=self.machine, block=block,
            expert=expert,
        )

    def _fetch_gate(self, block: int):
        """Fetching may start at iteration start (prefetch) or when the
        first local worker enters the block."""
        ctx = self.ctx
        if ctx.features.prefetch:
            return ctx.iteration_start
        entries = [
            ctx.block_entry[("fwd", block, rank)]
            for rank in ctx.layout.ranks_of_machine(self.machine)
        ]
        return AnyOf(ctx.env, entries)

    # -- backward: gradient pre-reduction -------------------------------------------

    def grad_collectors(self):
        """One collector per (block, external expert): wait for every local
        contribution, pre-reduce, send one payload home."""
        processes = []
        for block in self.moe_blocks(reverse=True):
            for expert in self.ctx.machine_external_experts(block, self.machine):
                contributors = self._contributor_count(block, expert)
                if contributors:
                    processes.append(
                        self._collect_and_push(block, expert, contributors)
                    )
        return processes

    def _contributor_count(self, block: int, expert: int) -> int:
        return sum(
            1
            for rank in self.ctx.layout.ranks_of_machine(self.machine)
            if expert in self.ctx.needed_external(block, rank)
        )

    def _collect_and_push(self, block: int, expert: int, contributors: int):
        ctx = self.ctx
        store = ctx.grad_contrib_store(block, self.machine, expert)
        for _ in range(contributors):
            yield store.get()
        owner = ctx.placements[block].owner(expert)
        owner_machine = ctx.layout.machine_of(owner)
        nic = expert % self.num_nics

        def push():
            return ctx.fabric.transfer(
                self.host,
                Device.host(owner_machine),
                ctx.workload.expert_bytes,
                nic_index=nic,
                tag=("grad-push", block, self.machine, expert),
            )

        res = ctx.resilience
        if res is None:
            yield push().done
            return
        env = ctx.env
        delay = res.push_timeout
        for attempt in range(res.max_retries + 1):
            flow = push()
            yield AnyOf(env, [flow.done, env.timeout(delay)])
            if flow.done.triggered:
                return
            if attempt < res.max_retries:
                self._count_retry(block, expert)
                delay *= res.backoff
        # Gradient lost for this iteration (real systems skip or re-apply
        # next step); record it rather than stalling the barrier.
        if ctx.fault_stats is not None:
            ctx.fault_stats.grad_failures += 1
        now = env.now
        ctx.trace.record(
            "fault.grad_lost", now, now, block=block,
            detail=f"machine={self.machine} expert={expert}",
        )
        ctx.trace.mark(
            "fault.grad_lost", now, machine=self.machine, block=block,
            expert=expert,
        )
