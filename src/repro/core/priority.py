"""Topology-aware priority strategies (§5.2).

Two strategies:

1. **Staggered intra-node pull order** (Algorithm 1, Fig. 7): worker ``r``
   pulls internal experts starting from the next worker's experts and wraps
   around, so at any time each GPU's NVSwitch egress port serves one puller
   instead of all of them stampeding worker 0 first.

2. **PCIe-switch-aware peer scheduling** (Fig. 8/9): the two GPUs under one
   PCIe switch split the externally-cached experts into two groups; each GPU
   copies its own group from CPU memory over PCIe and picks up the other
   group from its peer over NVLink, halving the load on the switch uplink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "internal_pull_priority",
    "internal_pull_order",
    "split_external_groups",
    "PcieCopyStep",
    "pcie_peer_schedule",
]


def internal_pull_priority(
    expert_slot: int, rank: int, workers_per_machine: int, experts_per_worker: int
) -> int:
    """Priority P_i^r of pulling machine-local expert slot ``i`` into worker
    ``rank`` (§5.2); smaller is earlier.  Own experts get priority -1 (they
    are already local)."""
    owner = expert_slot // experts_per_worker
    if owner == rank:
        return -1
    if owner > rank:
        return owner - rank
    return owner + workers_per_machine - rank


def internal_pull_order(
    rank: int, workers_per_machine: int, experts_per_worker: int,
    staggered: bool = True,
) -> List[int]:
    """Machine-local expert slots worker ``rank`` pulls, in pull order.

    ``staggered=True`` is Algorithm 1: slots ``[(r+1)*E, m*E)`` then
    ``[0, r*E)``.  ``staggered=False`` is the naive order every worker
    shares (``[0, m*E)`` minus its own slots), which creates the Fig. 7(a)
    egress hotspots.
    """
    if not 0 <= rank < workers_per_machine:
        raise ValueError(f"rank {rank} out of range")
    total = workers_per_machine * experts_per_worker
    own_start = rank * experts_per_worker
    own_stop = own_start + experts_per_worker
    if staggered:
        return list(range(own_stop, total)) + list(range(0, own_start))
    return [slot for slot in range(total) if not own_start <= slot < own_stop]


def split_external_groups(
    external_experts: Sequence[int], local_rank: int
) -> Tuple[List[int], List[int]]:
    """Split cached external experts between the two GPUs of a PCIe pair.

    Returns ``(mine, peers)``: the even-lane GPU of the pair takes the even
    positions, the odd-lane GPU the odd positions, so the two groups are
    disjoint and together cover everything.
    """
    lane = local_rank % 2
    mine = [expert for pos, expert in enumerate(external_experts) if pos % 2 == lane]
    peers = [expert for pos, expert in enumerate(external_experts) if pos % 2 != lane]
    return mine, peers


@dataclass(frozen=True)
class PcieCopyStep:
    """One stage-2 copy: bring an external expert into a GPU."""

    expert: int
    via: str  # "pcie" (from CPU cache) or "peer" (NVLink from the pair GPU)


def pcie_peer_schedule(
    external_experts: Sequence[int], local_rank: int, enabled: bool = True
) -> List[PcieCopyStep]:
    """Stage-2 copy schedule for one GPU (Fig. 9).

    With the strategy enabled, the GPU interleaves: copy one expert of its
    own group via PCIe, then one of the peer's group via NVLink (the peer
    fetched it in the previous interval).  Disabled, every expert comes
    straight over PCIe — both pair GPUs hammer the switch uplink.
    """
    if not enabled:
        return [PcieCopyStep(expert, "pcie") for expert in external_experts]
    mine, peers = split_external_groups(external_experts, local_rank)
    schedule: List[PcieCopyStep] = []
    for index in range(max(len(mine), len(peers))):
        if index < len(mine):
            schedule.append(PcieCopyStep(mine[index], "pcie"))
        if index < len(peers):
            schedule.append(PcieCopyStep(peers[index], "peer"))
    return schedule
